//! Explore the MinHash + LSH machinery directly: fingerprint a family of
//! drifted clones, watch similarity fall with mutation intensity, and
//! compare measured bucket-collision rates against the analytic
//! probability `1 - (1 - s^r)^b` (Equation 2 of the paper).
//!
//! Run with: `cargo run --release -p f3m --example explore_lsh`

use f3m::fingerprint::encode::encode_function;
use f3m::fingerprint::lsh::collision_probability;
use f3m::prelude::*;

fn main() {
    let mut module = Module::new("explore");
    let externals = f3m::workloads::declare_externals(&mut module);
    let shape = ShapeParams { target_insts: 40, ..Default::default() };

    // One base function plus clones at increasing mutation intensity.
    let profiles: Vec<(&str, MutationProfile)> = vec![
        ("identical", MutationProfile::identical()),
        ("light", MutationProfile::light()),
        ("medium", MutationProfile::medium()),
        ("heavy", MutationProfile::heavy()),
        ("retyped", MutationProfile { retype: true, ..MutationProfile::identical() }),
    ];
    let mut ids = Vec::new();
    for (i, (label, profile)) in profiles.iter().enumerate() {
        let f = f3m::workloads::generate_function(
            &mut module.types,
            &externals,
            &format!("clone_{label}"),
            &shape,
            /* struct_seed */ 2024,
            /* member_seed */ 1000 + i as u64,
            profile,
            Linkage::External,
        );
        ids.push(module.add_function(f));
    }
    f3m::ir::verify::verify_module(&module).unwrap();

    let k = 200;
    let fps: Vec<MinHashFingerprint> = ids
        .iter()
        .map(|&id| {
            MinHashFingerprint::of_encoded(&encode_function(&module.types, module.function(id)), k)
        })
        .collect();
    let opcode_fps: Vec<OpcodeFingerprint> =
        ids.iter().map(|&id| OpcodeFingerprint::of(module.function(id))).collect();

    println!("similarity of each clone to the identical base (k = {k}):");
    println!("{:>10} {:>16} {:>16}", "clone", "minhash Jaccard", "opcode similarity");
    for (i, (label, _)) in profiles.iter().enumerate() {
        println!(
            "{:>10} {:>16.3} {:>16.3}",
            label,
            fps[0].similarity(&fps[i]),
            opcode_fps[0].similarity(&opcode_fps[i]),
        );
    }
    println!(
        "\nNote the retyped clone: opcode similarity stays ~1.0 (same opcodes!)\n\
         while MinHash correctly reports low similarity — the Figure 5 trap."
    );

    // LSH banding: measured collisions vs Equation 2.
    let params = LshParams { rows: 2, bands: 100, bucket_cap: 100 };
    let mut index: LshIndex<usize> = LshIndex::new(params);
    for (i, fp) in fps.iter().enumerate() {
        index.insert(i, fp.hashes());
    }
    println!("\nLSH (r = {}, b = {}): does each clone share a bucket with base?", params.rows, params.bands);
    let (cands, _) = index.candidates(fps[0].hashes(), 0);
    for (i, (label, _)) in profiles.iter().enumerate().skip(1) {
        let s = fps[0].similarity(&fps[i]);
        println!(
            "{:>10}: collided = {:5}, Eq.2 predicts p = {:.3} at s = {:.3}",
            label,
            cands.contains(&i),
            collision_probability(s, params.rows, params.bands),
            s
        );
    }
}
