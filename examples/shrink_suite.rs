//! Shrink a slice of the synthetic Table I suite with all three
//! strategies and compare size reduction and merge-pass time — a
//! miniature of the paper's Figures 11 and 12.
//!
//! Run with: `cargo run --release -p f3m --example shrink_suite`

use std::time::Instant;

use f3m::prelude::*;

fn main() {
    println!(
        "{:>16} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "fns", "hyfm", "t(ms)", "f3m", "t(ms)", "adaptive", "t(ms)"
    );
    for spec in table1().iter().take(8) {
        let spec = spec.scaled(if spec.functions > 1000 { 0.2 } else { 1.0 });
        let base = build_module(&spec);
        let n = base.defined_functions().len();
        let mut cells: Vec<String> = Vec::new();
        for config in [PassConfig::hyfm(), PassConfig::f3m(), PassConfig::f3m_adaptive()] {
            let mut m = base.clone();
            let t = Instant::now();
            let report = run_pass(&mut m, &config);
            let dt = t.elapsed();
            f3m::ir::verify::verify_module(&m).expect("verified");
            cells.push(format!("{:8.2}%", report.stats.size_reduction() * 100.0));
            cells.push(format!("{:9.1}", dt.as_secs_f64() * 1e3));
        }
        println!(
            "{:>16} {:>6} | {} {} | {} {} | {} {}",
            spec.name, n, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    println!(
        "\nThe shapes to look for (paper, Figures 11-12): F3M matches or beats\n\
         HyFM's reduction while its pass time scales far better with size."
    );
}
