//! Quickstart: parse a module, merge similar functions, inspect the result.
//!
//! Run with: `cargo run -p f3m --example quickstart`

use f3m::prelude::*;

const INPUT: &str = r#"
module "quickstart" {
declare @ext_sink_i32(i32) -> void

define @checksum_v1(i32 %0, i32 %1) -> i32 {
bb0:
  %2 = add i32 %0, %1
  %3 = mul i32 %2, 31
  %4 = xor i32 %3, 255
  %5 = shl i32 %4, 3
  %6 = sub i32 %5, %0
  %7 = and i32 %6, 65535
  %8 = or i32 %7, 1
  %9 = mul i32 %8, %2
  call void @ext_sink_i32(i32 %9)
  ret i32 %9
}

define @checksum_v2(i32 %0, i32 %1) -> i32 {
bb0:
  %2 = add i32 %0, %1
  %3 = mul i32 %2, 37
  %4 = xor i32 %3, 255
  %5 = shl i32 %4, 3
  %6 = sub i32 %5, %0
  %7 = and i32 %6, 65535
  %8 = or i32 %7, 1
  %9 = mul i32 %8, %2
  call void @ext_sink_i32(i32 %9)
  ret i32 %9
}

define @unrelated(f64 %0) -> f64 {
bb0:
  %1 = fmul f64 %0, %0
  %2 = fadd f64 %1, 0f3FF0000000000000
  ret f64 %2
}
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut module = f3m::ir::parser::parse_module(INPUT)?;
    let before = f3m::ir::size::module_size(&module);

    // Check what both checksum variants compute before merging.
    let mut interp = Interpreter::new(&module);
    let v1 = interp.call_by_name("checksum_v1", &[Val::Int(10), Val::Int(20)])?;
    let v2 = interp.call_by_name("checksum_v2", &[Val::Int(10), Val::Int(20)])?;
    println!("before merge: v1 -> {:?}, v2 -> {:?}", v1.ret, v2.ret);

    // Run F3M with the paper's static parameters.
    let report = run_pass(&mut module, &PassConfig::f3m());
    f3m::ir::verify::verify_module(&module).expect("merged module verifies");

    println!(
        "merged {} pair(s); module size {} -> {} bytes ({:.1}% smaller)",
        report.stats.merges_committed,
        before,
        f3m::ir::size::module_size(&module),
        report.stats.size_reduction() * 100.0
    );

    // Both symbols still exist (external linkage -> thunks) and still
    // compute the same results through the shared merged body.
    let mut interp = Interpreter::new(&module);
    let m1 = interp.call_by_name("checksum_v1", &[Val::Int(10), Val::Int(20)])?;
    let m2 = interp.call_by_name("checksum_v2", &[Val::Int(10), Val::Int(20)])?;
    assert_eq!(v1.ret, m1.ret);
    assert_eq!(v2.ret, m2.ret);
    println!("after merge:  v1 -> {:?}, v2 -> {:?} (behaviour preserved)", m1.ret, m2.ret);

    println!("\n--- merged module ---\n{}", f3m::ir::printer::print_module(&module));
    Ok(())
}
