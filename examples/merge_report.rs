//! Deep-dive into one merging run: per-stage timings, the attempt log,
//! the best merges by savings, and a differential execution check of the
//! workload driver.
//!
//! Run with: `cargo run --release -p f3m --example merge_report`

use f3m::prelude::*;

fn main() {
    let spec = table1()
        .into_iter()
        .find(|s| s.name == "456.hmmer")
        .expect("known workload");
    let mut module = build_module(&spec);
    println!(
        "workload {} — {} functions, {} instructions",
        spec.name,
        module.defined_functions().len(),
        module.total_insts()
    );

    // Baseline behaviour of the driver.
    let mut interp = Interpreter::new(&module);
    let before = interp.call_by_name("__driver", &[Val::Int(7)]).expect("driver runs");

    let report = run_pass(&mut module, &PassConfig::f3m_adaptive());
    f3m::ir::verify::verify_module(&module).expect("verifies");

    let s = &report.stats;
    println!("\nstage times:");
    println!("  preprocess  {:?}", s.preprocess);
    println!("  rank        {:?} ok / {:?} fail", s.rank.success, s.rank.fail);
    println!("  align       {:?} ok / {:?} fail", s.align.success, s.align.fail);
    println!("  codegen     {:?} ok / {:?} fail", s.codegen.success, s.codegen.fail);
    println!(
        "\n{} attempts, {} committed; {} fingerprint comparisons",
        s.pairs_attempted, s.merges_committed, s.fingerprint_comparisons
    );
    println!(
        "size: {} -> {} bytes ({:.2}% reduction)",
        s.size_before,
        s.size_after,
        s.size_reduction() * 100.0
    );

    // Top merges by savings.
    let mut committed: Vec<_> = report.attempts.iter().filter(|a| a.committed).collect();
    committed.sort_by_key(|a| -a.size_delta);
    println!("\ntop merges by size savings:");
    for a in committed.iter().take(8) {
        println!(
            "  @{} + @{}  sim={:.3} align={:.2} saved {} bytes",
            module.function(a.f1).name,
            module.function(a.f2).name,
            a.similarity,
            a.align_ratio,
            a.size_delta
        );
    }
    let rejected = report.attempts.iter().filter(|a| !a.committed).count();
    println!("  ({rejected} candidate pairs were aligned but rejected)");

    // Differential check: the driver must behave identically.
    let mut interp = Interpreter::new(&module);
    let after = interp.call_by_name("__driver", &[Val::Int(7)]).expect("driver runs");
    assert_eq!(before.ret, after.ret, "return value preserved");
    assert_eq!(before.checksum, after.checksum, "side effects preserved");
    println!(
        "\ndifferential check passed; dynamic instructions {} -> {} ({:+.2}%)",
        before.steps,
        after.steps,
        100.0 * (after.steps as f64 / before.steps as f64 - 1.0)
    );
}
