//! Observability tier-1 suite: golden snapshot of the `--report json`
//! output, wave-counter monotonicity, and Chrome-trace span coverage of
//! every pipeline stage.

use std::path::{Path, PathBuf};

use f3m::prelude::*;
use f3m::trace::EventKind;

/// The fixed module every test here replays: a half-scale 429.mcf, the
/// same workload the CLI demo (`f3m run`) uses.
fn gate_module() -> f3m::ir::module::Module {
    let spec = table1()
        .into_iter()
        .find(|s| s.name == "429.mcf")
        .expect("known workload")
        .scaled(0.5);
    build_module(&spec)
}

// ---------------------------------------------------------------------------
// Satellite 1: golden snapshot of the JSON report.

/// Replaces the digits after every `_ns":` with a single `0`, so the
/// snapshot is stable across machines while still pinning the full key
/// structure and all deterministic values.
fn normalize_ns(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find("_ns\":") {
        let (head, tail) = rest.split_at(i + "_ns\":".len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn snapshot_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/snapshots/report_429_mcf.json")
}

/// The `--report json` payload for the fixed workload must match the
/// checked-in golden snapshot byte-for-byte once wall-clock fields are
/// normalized. Refresh after an intentional report change with:
///
/// ```text
/// F3M_UPDATE_SNAPSHOT=1 cargo test -p f3m --test observability
/// ```
#[test]
fn json_report_matches_golden_snapshot() {
    let mut m = gate_module();
    let report = run_pass(&mut m, &PassConfig::f3m());
    let current = normalize_ns(&report.to_json());
    let path = snapshot_path();

    if std::env::var("F3M_UPDATE_SNAPSHOT").as_deref() == Ok("1") {
        f3m::trace::write_with_dirs(&path, &current).expect("write snapshot");
        eprintln!("snapshot: refreshed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             F3M_UPDATE_SNAPSHOT=1 cargo test -p f3m --test observability",
            path.display()
        )
    });
    assert_eq!(
        current,
        golden,
        "JSON report drifted from the golden snapshot; if intentional, refresh with \
         F3M_UPDATE_SNAPSHOT=1 cargo test -p f3m --test observability"
    );
}

#[test]
fn normalize_ns_only_touches_ns_values() {
    let raw = r#"{"total_ns":123456,"waves":7,"rank":{"success_ns":9,"fail_ns":0}}"#;
    assert_eq!(
        normalize_ns(raw),
        r#"{"total_ns":0,"waves":7,"rank":{"success_ns":0,"fail_ns":0}}"#
    );
}

// ---------------------------------------------------------------------------
// Satellite 3 (part 2): wave/cache counters are monotone over a run.

/// The per-wave `wave_counters` samples emit *cumulative* values, so every
/// series must be non-decreasing in emission order — a counter that ever
/// steps backwards means a wave lost or double-counted work.
#[test]
fn wave_counter_series_are_monotone() {
    let mut m = gate_module();
    let tracer = Tracer::new();
    let report = run_pass_traced(&mut m, &PassConfig::f3m(), Some(&tracer));

    let samples: Vec<_> = tracer
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "wave_counters")
        .collect();
    assert_eq!(
        samples.len() as u64,
        report.stats.waves,
        "one cumulative sample per wave"
    );

    let series: Vec<&str> = samples[0].args.iter().map(|&(k, _)| k).collect();
    for key in &series {
        let mut prev = 0u64;
        for (i, s) in samples.iter().enumerate() {
            let v = s.arg(key).unwrap_or_else(|| panic!("wave {i} missing series `{key}`"));
            assert!(v >= prev, "series `{key}` decreased at wave {i}: {prev} -> {v}");
            prev = v;
        }
    }

    // The final samples agree with the report totals.
    let last = samples.last().unwrap();
    assert_eq!(last.arg("merges_committed"), Some(report.stats.merges_committed as u64));
    assert_eq!(last.arg("aligns_speculative"), Some(report.stats.aligns_speculative));
    assert_eq!(last.arg("wave_conflicts"), Some(report.stats.wave_conflicts));
    assert_eq!(last.arg("cache_hits"), Some(report.stats.block_parts_cache_hits));
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: the Chrome trace covers every pipeline stage.

#[test]
fn chrome_trace_covers_fingerprint_rank_align_commit() {
    let mut m = gate_module();
    let tracer = Tracer::new();
    let report = run_pass_traced(&mut m, &PassConfig::f3m(), Some(&tracer));
    assert!(report.stats.merges_committed > 0, "workload must exercise the pipeline");
    assert_eq!(tracer.dropped_events(), 0);

    let events = tracer.events();
    let spans_named = |name: &str| {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Span { .. }) && e.name == name)
            .count()
    };
    assert_eq!(spans_named("fingerprint"), 1);
    assert_eq!(spans_named("preprocess"), 1);
    // One rank span per wave member, one align span per speculative
    // alignment, one commit span per pair that survives the
    // profitability gate into `try_commit`.
    assert!(spans_named("rank") >= report.stats.pairs_attempted);
    assert_eq!(spans_named("align") as u64, report.stats.aligns_speculative);
    assert!(spans_named("commit") >= report.stats.merges_committed);
    assert!(spans_named("commit") <= report.stats.pairs_attempted);
    assert_eq!(spans_named("commit_walk") as u64, report.stats.waves);
    let committed_spans = events
        .iter()
        .filter(|e| e.name == "commit" && e.arg("committed") == Some(1))
        .count();
    assert_eq!(committed_spans, report.stats.merges_committed);

    // Per-pair spans live on the replay track (tid 1), driver spans on 0.
    assert!(events.iter().filter(|e| e.name == "rank").all(|e| e.tid == 1));
    assert!(events.iter().filter(|e| e.name == "commit").all(|e| e.tid == 0));

    // The export is structurally a Chrome trace: one traceEvents array,
    // no stray control characters, balanced braces (no string in the
    // export contains `{`/`}` — names and categories are identifiers).
    let json = tracer.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in chrome trace export");
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    for needle in ["\"ph\":\"X\"", "\"ph\":\"C\"", "\"pid\":1", "\"cat\":\"preprocess\""] {
        assert!(json.contains(needle), "chrome export missing {needle}");
    }
}

// ---------------------------------------------------------------------------
// Tracing is opt-in: untraced and traced runs produce identical results.

#[test]
fn tracing_does_not_perturb_the_pass() {
    let base = gate_module();
    let mut plain = base.clone();
    let mut traced = base;
    let report_plain = run_pass(&mut plain, &PassConfig::f3m());
    let tracer = Tracer::new();
    let report_traced = run_pass_traced(&mut traced, &PassConfig::f3m(), Some(&tracer));
    assert_eq!(
        f3m::ir::printer::print_module(&plain),
        f3m::ir::printer::print_module(&traced)
    );
    assert_eq!(
        normalize_ns(&report_plain.to_json()),
        normalize_ns(&report_traced.to_json())
    );
    assert!(!tracer.is_empty());
}
