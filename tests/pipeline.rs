//! End-to-end pipeline tests over the synthetic suite: every strategy, on
//! several workloads, must produce a verifying module, consistent
//! statistics, and monotone size behaviour.

use f3m::prelude::*;

fn mini_specs() -> Vec<WorkloadSpec> {
    f3m::workloads::mini_suite()
}

#[test]
fn all_strategies_produce_verifying_modules() {
    for spec in mini_specs() {
        let base = build_module(&spec);
        for config in [PassConfig::hyfm(), PassConfig::f3m(), PassConfig::f3m_adaptive()] {
            let mut m = base.clone();
            let report = run_pass(&mut m, &config);
            f3m::ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("{}: {:?}", spec.name, &e[..e.len().min(3)]));
            assert!(report.stats.size_after <= report.stats.size_before);
            assert!(report.stats.merges_committed <= report.stats.pairs_attempted);
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    let spec = &mini_specs()[1];
    let mut m = build_module(spec);
    let report = run_pass(&mut m, &PassConfig::f3m());
    let s = &report.stats;
    // Attempt log agrees with the aggregate counters.
    let committed = report.attempts.iter().filter(|a| a.committed).count();
    assert_eq!(committed, s.merges_committed);
    // Committed savings sum to the module-level reduction.
    let attempt_savings: i64 =
        report.attempts.iter().filter(|a| a.committed).map(|a| a.size_delta).sum();
    assert_eq!(attempt_savings, s.size_before as i64 - s.size_after as i64);
    // Recorded similarities are valid probabilities.
    for a in &report.attempts {
        assert!((0.0..=1.0).contains(&a.similarity), "{}", a.similarity);
        assert!((0.0..=1.0 + 1e-9).contains(&a.align_ratio), "{}", a.align_ratio);
    }
    assert_eq!(s.size_after, f3m::ir::size::module_size(&m));
}

#[test]
fn module_size_reduction_is_real() {
    // The suite has clone families by construction: F3M must find them.
    let spec = &mini_specs()[1];
    let mut m = build_module(spec);
    let report = run_pass(&mut m, &PassConfig::f3m());
    assert!(
        report.stats.merges_committed >= 3,
        "families should merge: {:?}",
        report.stats
    );
    assert!(report.stats.size_reduction() > 0.02, "{}", report.stats.size_reduction());
}

#[test]
fn second_pass_is_safe_and_converging() {
    let spec = &mini_specs()[0];
    let mut m = build_module(spec);
    let first = run_pass(&mut m, &PassConfig::f3m());
    let size_after_first = f3m::ir::size::module_size(&m);
    let second = run_pass(&mut m, &PassConfig::f3m());
    f3m::ir::verify::verify_module(&m).unwrap();
    assert!(second.stats.size_after <= size_after_first);
    assert!(
        second.stats.merges_committed <= first.stats.merges_committed,
        "second pass should find at most as much"
    );
}

#[test]
fn thunks_keep_external_symbols_alive() {
    let spec = &mini_specs()[1];
    let base = build_module(spec);
    let external_defs: Vec<String> = base
        .functions()
        .filter(|(_, f)| !f.is_declaration && f.linkage == Linkage::External)
        .map(|(_, f)| f.name.clone())
        .collect();
    let mut m = base.clone();
    run_pass(&mut m, &PassConfig::f3m());
    for name in external_defs {
        let id = m.lookup_function(&name).expect("external symbol survives");
        assert!(
            !m.function(id).is_declaration,
            "@{name} must keep a body (possibly a thunk)"
        );
    }
}

#[test]
fn adaptive_strategy_uses_size_scaled_parameters() {
    // Indirect check via behaviour: on a module below the 5000-function
    // knee the adaptive strategy must behave like a full-width search with
    // a conservative threshold, i.e. be no less effective than static F3M
    // by more than a small margin.
    let spec = &mini_specs()[1];
    let base = build_module(spec);
    let mut m1 = base.clone();
    let static_report = run_pass(&mut m1, &PassConfig::f3m());
    let mut m2 = base.clone();
    let adaptive_report = run_pass(&mut m2, &PassConfig::f3m_adaptive());
    let diff = static_report.stats.size_reduction() - adaptive_report.stats.size_reduction();
    assert!(
        diff < 0.02,
        "adaptive lost too much vs static on a small program: {:.4} vs {:.4}",
        adaptive_report.stats.size_reduction(),
        static_report.stats.size_reduction()
    );
}

#[test]
fn merged_functions_never_collide_with_existing_names() {
    let spec = &mini_specs()[0];
    let mut m = build_module(spec);
    run_pass(&mut m, &PassConfig::f3m());
    let mut names = std::collections::HashSet::new();
    for (_, f) in m.functions() {
        assert!(names.insert(f.name.clone()), "duplicate symbol {}", f.name);
    }
}
