//! Perf-regression gate (tier-1).
//!
//! Replays a fixed workload mix through the merging pass, collects the
//! *deterministic* metrics (work counts, never wall time) and compares
//! them against the checked-in `results/BASELINE_metrics.json` with
//! per-metric tolerance bands. A change that silently blows up the number
//! of fingerprint comparisons, DP cells or LSH evictions fails here even
//! though the output module is still correct.
//!
//! Refreshing after an intentional change:
//!
//! ```text
//! F3M_UPDATE_BASELINE=1 cargo test -p f3m --test regression_gate
//! ```
//!
//! Wall-clock metrics are written to the baseline with value 0 and are
//! ignored by [`compare`], so the checked-in file is machine-independent.

use std::path::{Path, PathBuf};

use f3m::prelude::*;
use f3m::trace::{compare, parse_metrics, render_metrics, MetricSnapshot, Tolerance};

/// The gate's fixed workload mix: two Table I programs of different
/// classes, half scale, merged with the default F3M strategy. Prefixes
/// keep the two metric sets apart in one flat registry.
const GATE_WORKLOADS: &[(&str, &str)] = &[("mcf", "429.mcf"), ("libquantum", "462.libquantum")];

fn collect_metrics() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for &(prefix, name) in GATE_WORKLOADS {
        let spec = table1()
            .into_iter()
            .find(|s| s.name == name)
            .expect("gate workload exists in table1")
            .scaled(0.5);
        let mut m = build_module(&spec);
        let report = run_pass(&mut m, &PassConfig::f3m());
        f3m::ir::verify::verify_module(&m).expect("merged module verifies");
        report.export_metrics(&mut reg, prefix);
    }
    collect_incremental_metrics(&mut reg);
    collect_serve_metrics(&mut reg);
    collect_global_metrics(&mut reg);
    collect_residency_metrics(&mut reg);
    reg
}

/// Deterministic residency scenario: one module snapshotted to disk,
/// restored through the mmap-resident store under a budget smaller than
/// the pool, then swept with a fixed single-threaded query sequence.
/// The residency counters record *logical* fault/spill decisions — the
/// same numbers whichever pager backend `Auto` picks — so they gate like
/// work counts: a shard-sizing or LRU change that doubles the thrash for
/// this access pattern trips the band.
fn collect_residency_metrics(reg: &mut MetricsRegistry) {
    use f3m::core::corpus::{Corpus, CorpusConfig};
    use f3m::fingerprint::pager::PagerKind;
    use f3m::fingerprint::resident::TARGET_SHARD_BYTES;

    let cfg = CorpusConfig { jobs: 1, shards: 2, ..CorpusConfig::default() };
    let corpus = Corpus::new(cfg.clone());
    // ~400 rows at ~2 kB/row spans several 256 kB shards, so a one-shard
    // budget makes the sweep below genuinely fault and spill.
    let mut spec = f3m::workloads::mini_suite()[0].clone();
    spec.functions = 400;
    spec.seed = 500;
    let mut m = build_module(&spec);
    m.name = "res_gate".to_string();
    corpus.ingest(m).expect("gate corpus ingest");

    let dir = std::env::temp_dir().join(format!("f3m_gate_res_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("gate temp dir");
    let path = dir.join("res_gate.f3msnap");
    corpus.save_snapshot(&path).expect("gate snapshot save");

    // Budget of one shard forces real spill traffic on the sweep below.
    let budget = TARGET_SHARD_BYTES as u64;
    let restored = Corpus::load_snapshot_resident(&path, cfg, PagerKind::Auto, budget)
        .expect("gate resident restore");
    for _ in 0..2 {
        restored.query_module("res_gate", 5).expect("gate resident query");
    }
    let (_, counters) =
        restored.residency().expect("resident restore reports residency counters");
    drop(restored);
    let _ = std::fs::remove_dir_all(&dir);

    for (name, unit, v) in [
        ("residency.resident_bytes", "bytes", counters.resident_bytes),
        ("residency.shard_faults", "count", counters.shard_faults),
        ("residency.shard_spills", "count", counters.shard_spills),
    ] {
        let c = reg.counter(name, unit, true);
        reg.set(c, v);
    }
}

/// Deterministic global-merge scenario: three small resident modules,
/// two seed-twinned (cross-module clone families) and one fresh, planned
/// by the two-phase engine. Every [`GlobalStats`] counter is a pure
/// function of this corpus and the plan config — no wall clock, no
/// job-count dependence — so the candidate-pair, rollback and
/// differential-probe counts gate exactly like the pass metrics: a
/// planner change that silently doubles the probe fan-out trips the band.
fn collect_global_metrics(reg: &mut MetricsRegistry) {
    use f3m::core::corpus::{Corpus, CorpusConfig};
    use f3m::core::{GlobalMergePlanner, GlobalPlanConfig};

    let corpus = Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..CorpusConfig::default() });
    for (name, seed) in [("glob_a", 500u64), ("glob_b", 500), ("glob_c", 777)] {
        let mut spec = f3m::workloads::mini_suite()[0].clone();
        spec.functions = 16;
        spec.seed = seed;
        let mut m = build_module(&spec);
        m.name = name.to_string();
        corpus.ingest(m).expect("gate corpus ingest");
    }
    let planner = GlobalMergePlanner::new(&corpus, GlobalPlanConfig::default().with_jobs(2));
    let (report, merged, _epoch) = planner.run().expect("gate global plan");
    f3m::ir::verify::verify_module(&merged).expect("gate global module verifies");
    assert!(report.stats.cross_module_pairs > 0, "gate scenario offers cross-module pairs");
    report.export_metrics(reg, "global");
}

/// Deterministic serving scenario: one daemon, one synchronous client,
/// a fixed request sequence. The connection and frame counters the
/// daemon reports for this sequence are pure work counts (exactly one
/// connection, exactly these frames), so they gate like everything
/// else — an event-loop change that starts double-counting frames or
/// leaking connections trips the band. The admission controller is
/// additionally scripted directly (no sockets) to pin shed behaviour.
fn collect_serve_metrics(reg: &mut MetricsRegistry) {
    use f3m::serve::{protocol::Request, Client, ServeConfig, Server};

    let server =
        Server::bind(ServeConfig { jobs: 1, shards: 4, ..ServeConfig::default() }).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(std::time::Duration::from_secs(60))).unwrap();

    let mut spec = f3m::workloads::mini_suite()[0].clone();
    spec.functions = 24;
    spec.seed = 400;
    let mut m = build_module(&spec);
    m.name = "gate_serve".to_string();
    c.call_expect(Request::Ping, "pong").unwrap();
    c.call_expect(
        Request::Ingest { name: None, ir: f3m::ir::printer::print_module(&m) },
        "ingested",
    )
    .unwrap();
    c.call_expect(
        Request::Query { module: "gate_serve".into(), func: None, k: 4, if_epoch: None },
        "candidates",
    )
    .unwrap();
    let stats = c.call_expect(Request::Stats, "stats").unwrap();
    let server_counter = |key: &str| -> u64 {
        stats
            .get("server")
            .and_then(|s| s.get(key))
            .and_then(f3m::trace::Json::as_u64)
            .unwrap_or_else(|| panic!("stats response carries `{key}`"))
    };
    for (name, v) in [
        ("serve.conns_open", server_counter("conns_open")),
        ("serve.conns_total", server_counter("conns_total")),
        ("serve.frames_reassembled", server_counter("frames_reassembled")),
        ("serve.sheds", server_counter("sheds")),
    ] {
        let counter = reg.counter(name, "count", true);
        reg.set(counter, v);
    }
    c.call_expect(Request::Shutdown, "bye").unwrap();
    handle.join().unwrap().expect("clean shutdown");

    // Scripted admission: a fixed load trajectory through the pure
    // controller. The decision sequence (and therefore the shed count)
    // is deterministic; a threshold-semantics change moves it.
    use f3m::serve::{Admission, AdmissionConfig, LoadSnapshot};
    let mut admission = Admission::new(AdmissionConfig {
        queue_shed_depth: 8,
        max_inflight_global: 12,
        max_inflight_per_conn: 4,
        retry_after_ms: 25,
    });
    let mut admitted = 0u64;
    for step in 0..32u64 {
        let load = LoadSnapshot {
            queue_depth: (step % 11) as usize,
            global_inflight: (step % 14) as usize,
            conn_inflight: (step % 5) as usize,
        };
        if admission.admit(load).is_none() {
            admitted += 1;
        }
    }
    for (name, v) in [
        ("serve.admission.admitted", admitted),
        ("serve.admission.sheds", admission.shed_seq()),
    ] {
        let counter = reg.counter(name, "count", true);
        reg.set(counter, v);
    }
}

/// Deterministic incremental-recompute scenario: two resident modules,
/// a cold query sweep, a warm sweep, one body-swap `update_function`,
/// and a post-update sweep. The corpus memo counters are pure work
/// counts for this fixed synchronous sequence, so they gate exactly
/// like the pass metrics: an invalidation-granularity regression (e.g.
/// an update suddenly dirtying the whole corpus) trips the band.
fn collect_incremental_metrics(reg: &mut MetricsRegistry) {
    use f3m::core::corpus::{Corpus, CorpusConfig};

    let corpus = Corpus::new(CorpusConfig { jobs: 1, ..CorpusConfig::default() });
    for (i, name) in ["inc_a", "inc_b"].into_iter().enumerate() {
        let mut spec = f3m::workloads::mini_suite()[0].clone();
        spec.functions = 48;
        spec.seed = 300 + i as u64;
        let mut m = build_module(&spec);
        m.name = name.to_string();
        corpus.ingest(m).expect("gate corpus ingest");
    }
    let sweep = |corpus: &Corpus| {
        for name in ["inc_a", "inc_b"] {
            corpus.query_module(name, 5).expect("gate corpus query");
        }
    };
    sweep(&corpus); // cold: all misses
    sweep(&corpus); // warm: all hits

    // One in-place edit: swap the bodies of a signature-identical
    // family pair of `inc_a`, then sweep again.
    let m = f3m::ir::parser::parse_module(&corpus.module_source("inc_a").unwrap()).unwrap();
    let eligible: Vec<String> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .map(|f| m.function(f).name.clone())
        .collect();
    let sig = |name: &str| {
        let f = m.function(m.lookup_function(name).unwrap());
        (f.params.clone(), f.ret_ty)
    };
    let (dst, src) = eligible
        .iter()
        .find_map(|a| {
            let (fam, member) = a.rsplit_once('_')?;
            if member != "0" {
                return None;
            }
            let b = format!("{fam}_1");
            (eligible.contains(&b) && sig(a) == sig(&b)).then(|| (a.clone(), b))
        })
        .expect("gate workload has a swappable family pair");
    let mut patched = m.clone();
    let d = patched.lookup_function(&dst).unwrap();
    let s = patched.lookup_function(&src).unwrap();
    patched.rename_function(d, format!("{dst}__old"));
    patched.rename_function(s, dst.clone());
    let patch = f3m::ir::printer::print_module(&patched);
    corpus.update_function("inc_a", &dst, Some(&patch)).expect("gate corpus update");
    sweep(&corpus); // post-update: misses == dirty neighborhood

    let stats = corpus.stats();
    for (name, v) in [
        ("incremental.memo_hits", stats.memo_hits),
        ("incremental.memo_misses", stats.memo_misses),
        ("incremental.funcs_invalidated", stats.funcs_invalidated),
        ("incremental.queries_superseded", stats.queries_superseded),
    ] {
        let c = reg.counter(name, "count", true);
        reg.set(c, v);
    }
}

/// Snapshots with nondeterministic (wall-clock) values scrubbed to zero,
/// so baseline refreshes only diff when deterministic metrics move.
fn scrubbed_snapshots(reg: &MetricsRegistry) -> Vec<MetricSnapshot> {
    let mut snaps = reg.snapshots();
    for s in &mut snaps {
        if !s.deterministic {
            s.value = 0.0;
        }
    }
    snaps
}

/// Per-metric tolerance policy, keyed on the metric-name suffix.
///
/// Structural facts of the input are exact; sizes are tight; work counts
/// (the quantities this gate exists to watch) get a band wide enough to
/// absorb benign tweaks but narrow enough to catch an accidental
/// complexity regression.
fn tolerance_for(name: &str) -> Tolerance {
    let suffix = name.rsplit('.').next().unwrap_or(name);
    match suffix {
        // The generated input module is a pure function of the spec; the
        // packed-store row footprint is a pure function of the search
        // parameters (8k + 4b bytes).
        "functions" | "size_before" | "soa_bytes_per_fn" => Tolerance::exact(),
        // Output size should barely move without an intentional change.
        "size_after" => Tolerance { rel: 0.05, abs: 8.0 },
        "size_reduction" => Tolerance { rel: 0.25, abs: 0.02 },
        // Work counts: ±15 % or a small absolute slack.
        "fingerprint_comparisons" | "candidates_examined" | "candidates_returned"
        | "align_cells" | "bucket_evictions" | "lsh_buckets" | "lsh_max_bucket"
        | "lsh_bucket_occupancy" | "probe_collisions" | "lsh_allocs_saved" => {
            Tolerance { rel: 0.15, abs: 16.0 }
        }
        // Global-merge work counts: candidate draw and verification
        // fan-out for the fixed three-module scenario. Banded like the
        // other work counts — a planner change that doubles the probe
        // count is a complexity regression, not noise.
        "pairs_considered" | "cross_module_pairs" | "differential_probes"
        | "differential_skips" => Tolerance { rel: 0.15, abs: 16.0 },
        // Incremental-recompute work counts: how much one update dirties
        // is a banded quantity (a granularity regression blows well past
        // 15 %); hit/miss totals for the fixed sweep sequence likewise.
        "memo_hits" | "memo_misses" | "funcs_invalidated" => Tolerance { rel: 0.15, abs: 8.0 },
        // Residency thrash for the fixed single-budget sweep: fault and
        // spill totals are logical decisions (pager-independent); a
        // shard-sizing or LRU-policy change that doubles them is a
        // regression. Resident bytes track shard geometry, so a benign
        // row-layout tweak moves them a little, not a lot.
        "shard_faults" | "shard_spills" => Tolerance { rel: 0.15, abs: 16.0 },
        "resident_bytes" => Tolerance { rel: 0.15, abs: 4096.0 },
        // Serving counters for the fixed one-client scenario and the
        // scripted admission trajectory are exact work counts: one
        // connection, a known frame sequence, a deterministic decision
        // sequence. Any drift is a semantic change, not noise.
        "conns_open" | "conns_total" | "frames_reassembled" | "sheds" | "admitted" => {
            Tolerance::exact()
        }
        // Everything else (pairs, merges, waves, cache counters, rejects).
        _ => Tolerance { rel: 0.10, abs: 4.0 },
    }
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("results/BASELINE_metrics.json")
}

#[test]
fn perf_regression_gate() {
    let reg = collect_metrics();
    let snaps = scrubbed_snapshots(&reg);
    let path = baseline_path();

    if std::env::var("F3M_UPDATE_BASELINE").as_deref() == Ok("1") {
        f3m::trace::write_with_dirs(&path, &render_metrics(&snaps)).expect("write baseline");
        eprintln!("regression gate: refreshed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             F3M_UPDATE_BASELINE=1 cargo test -p f3m --test regression_gate",
            path.display()
        )
    });
    let baseline = parse_metrics(&text).expect("baseline parses");
    let violations = compare(&snaps, &baseline, tolerance_for);
    assert!(
        violations.is_empty(),
        "perf-regression gate failed ({} violation(s)):\n  {}\n\
         If the drift is intentional, refresh with \
         F3M_UPDATE_BASELINE=1 cargo test -p f3m --test regression_gate",
        violations.len(),
        violations.join("\n  ")
    );
}

/// The gate must actually bite: an injected drift beyond the band is
/// flagged, naming the drifted metric, while the unperturbed snapshot
/// passes against itself.
#[test]
fn gate_flags_injected_drift_and_passes_on_identity() {
    let reg = collect_metrics();
    let snaps = scrubbed_snapshots(&reg);
    assert!(
        compare(&snaps, &snaps, tolerance_for).is_empty(),
        "identical snapshots must always pass the gate"
    );

    let mut drifted = snaps.clone();
    let idx = drifted
        .iter()
        .position(|s| s.deterministic && s.name.ends_with(".align_cells") && s.value > 0.0)
        .expect("gate workload computes some DP cells");
    drifted[idx].value *= 2.0;
    let violations = compare(&drifted, &snaps, tolerance_for);
    assert!(
        violations.iter().any(|v| v.contains("align_cells")),
        "doubled align_cells must trip the gate, got: {violations:?}"
    );

    // A wall-clock metric drifting arbitrarily must NOT trip it.
    let mut timed = snaps.clone();
    if let Some(t) = timed.iter_mut().find(|s| !s.deterministic) {
        t.value = 1e12;
        assert!(
            compare(&timed, &snaps, tolerance_for).is_empty(),
            "nondeterministic metrics are outside the gate"
        );
    }
}

/// Two in-process runs of the collection produce byte-identical
/// deterministic dumps — the property that makes a checked-in baseline
/// meaningful at all.
#[test]
fn gate_metrics_are_reproducible() {
    let a = render_metrics(&scrubbed_snapshots(&collect_metrics()));
    let b = render_metrics(&scrubbed_snapshots(&collect_metrics()));
    assert_eq!(a, b);
}
