//! Randomized differential testing of the whole stack.
//!
//! For randomly drawn workload parameters, the merged module must be
//! observationally equivalent to the original: same driver return values,
//! same `ext_sink` checksums, for every strategy and repair mode. Also
//! checks the printer/parser round-trip. Driven by `f3m-prng` seeded
//! sweeps (the workspace builds offline, so no proptest). The MinHash
//! estimation-bound property lives with the fingerprint crate now
//! (`crates/fingerprint/tests/minhash_bound.rs`).

use f3m::prelude::*;
use f3m_prng::SmallRng;

fn spec(seed: u64, functions: usize, mean_insts: usize) -> WorkloadSpec {
    let mut s = table1()[0].clone();
    s.functions = functions;
    s.mean_insts = mean_insts;
    s.seed = seed;
    s
}

fn driver_outcome(m: &Module, arg: i64) -> (Option<Val>, u64) {
    let mut i = Interpreter::with_limits(
        m,
        Limits { fuel: 50_000_000, memory: 1 << 24, max_depth: 256 },
    );
    let out = i.call_by_name("__driver", &[Val::Int(arg)]).expect("driver runs");
    (out.ret, out.checksum)
}

#[test]
fn merging_preserves_driver_behaviour() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0001);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        let functions = rng.gen_range(12..60usize);
        let mean_insts = rng.gen_range(12..40usize);
        let strategy = rng.gen_range(0..3usize);
        let s = spec(seed, functions, mean_insts);
        let base = build_module(&s);
        let before: Vec<_> =
            [1i64, -9, 4242].iter().map(|&a| driver_outcome(&base, a)).collect();
        let config = match strategy {
            0 => PassConfig::hyfm(),
            1 => PassConfig::f3m(),
            _ => PassConfig::f3m_adaptive(),
        };
        let mut m = base.clone();
        run_pass(&mut m, &config);
        f3m::ir::verify::verify_module(&m).unwrap();
        let after: Vec<_> =
            [1i64, -9, 4242].iter().map(|&a| driver_outcome(&m, a)).collect();
        assert_eq!(before, after, "seed {seed} functions {functions} strategy {strategy}");
    }
}

#[test]
fn stack_repair_mode_also_preserves_behaviour() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0002);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        let functions = rng.gen_range(12..40usize);
        let s = spec(seed, functions, 24);
        let base = build_module(&s);
        let before = driver_outcome(&base, 17);
        let mut config = PassConfig::f3m();
        config.merge = MergeConfig { repair: RepairMode::Stack };
        let mut m = base.clone();
        run_pass(&mut m, &config);
        f3m::ir::verify::verify_module(&m).unwrap();
        assert_eq!(driver_outcome(&m, 17), before, "seed {seed} functions {functions}");
    }
}

#[test]
fn printer_parser_round_trip_on_generated_modules() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0003);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        let functions = rng.gen_range(8..30usize);
        let s = spec(seed, functions, 20);
        let m1 = build_module(&s);
        let p1 = f3m::ir::printer::print_module(&m1);
        let m2 = f3m::ir::parser::parse_module(&p1).expect("reparses");
        let p2 = f3m::ir::printer::print_module(&m2);
        assert_eq!(p1, p2, "printer must be a fixpoint under reparsing (seed {seed})");
    }
}

#[test]
fn interpreter_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0005);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        let arg = rng.gen_range(-1000..1000i64);
        let s = spec(seed, 16, 20);
        let m = build_module(&s);
        assert_eq!(driver_outcome(&m, arg), driver_outcome(&m, arg));
    }
}
