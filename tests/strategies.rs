//! Cross-strategy behavioural contracts: the scaling and filtering claims
//! the paper's evaluation rests on, checked as assertions.

use f3m::fingerprint::adaptive::MergeParams;
use f3m::prelude::*;

fn spec_with(functions: usize, seed: u64) -> WorkloadSpec {
    let mut s = table1()[0].clone();
    s.functions = functions;
    s.seed = seed;
    s
}

/// HyFM's ranking comparisons grow quadratically; F3M's just above
/// linearly. Doubling the function count should roughly quadruple HyFM's
/// comparisons while F3M's grow far slower — the paper's core claim.
#[test]
fn ranking_cost_scaling_hyfm_quadratic_f3m_subquadratic() {
    let counts = [100usize, 400];
    let mut hyfm_cmps = Vec::new();
    let mut f3m_cmps = Vec::new();
    for &n in &counts {
        let mut m = build_module(&spec_with(n, 11));
        let r = run_pass(&mut m, &PassConfig::hyfm());
        hyfm_cmps.push(r.stats.fingerprint_comparisons as f64);
        let mut m = build_module(&spec_with(n, 11));
        let r = run_pass(&mut m, &PassConfig::f3m());
        f3m_cmps.push(r.stats.fingerprint_comparisons as f64);
    }
    let hyfm_growth = hyfm_cmps[1] / hyfm_cmps[0];
    // 4x the functions: HyFM ~16x (quadratic, minus committed-pair
    // attrition).
    assert!(hyfm_growth > 8.0, "hyfm growth {hyfm_growth}");
    // F3M compares several-fold fewer fingerprints at every size (LSH
    // filters most pairs), and its advantage must not shrink as the
    // program grows. (True linearity only appears once the bucket caps
    // saturate, beyond what a unit test can afford to build.)
    let ratio_small = hyfm_cmps[0] / f3m_cmps[0];
    let ratio_large = hyfm_cmps[1] / f3m_cmps[1];
    assert!(ratio_small > 2.0, "F3M should filter at n=100: {ratio_small:.2}");
    assert!(ratio_large > 2.0, "F3M should filter at n=400: {ratio_large:.2}");
    assert!(
        ratio_large >= ratio_small * 0.9,
        "F3M's advantage must not degrade with size: {ratio_small:.2} -> {ratio_large:.2}"
    );
}

/// Higher similarity thresholds can only reduce the pairs attempted.
#[test]
fn threshold_monotonically_filters_attempts() {
    let base = build_module(&spec_with(150, 5));
    let mut prev = usize::MAX;
    for t in [0.0, 0.2, 0.4, 0.6] {
        let mut params = MergeParams::static_default();
        params.threshold = t;
        let mut m = base.clone();
        let r = run_pass(
            &mut m,
            &PassConfig { strategy: Strategy::F3m(params), ..Default::default() },
        );
        assert!(
            r.stats.pairs_attempted <= prev,
            "t={t}: {} > {}",
            r.stats.pairs_attempted,
            prev
        );
        prev = r.stats.pairs_attempted;
    }
}

/// Tighter bucket caps can only reduce fingerprint comparisons, and (per
/// Figure 16) should barely affect the achieved reduction.
#[test]
fn bucket_cap_cuts_comparisons_not_quality() {
    let base = build_module(&spec_with(300, 9));
    let mut results = Vec::new();
    for cap in [2usize, 100, usize::MAX] {
        let mut params = MergeParams::static_default();
        params.lsh.bucket_cap = cap;
        let mut m = base.clone();
        let r = run_pass(
            &mut m,
            &PassConfig { strategy: Strategy::F3m(params), ..Default::default() },
        );
        results.push((cap, r.stats.fingerprint_comparisons, r.stats.size_reduction()));
    }
    assert!(results[0].1 <= results[1].1);
    assert!(results[1].1 <= results[2].1);
    let (uncapped_red, capped_red) = (results[2].2, results[1].2);
    assert!(
        (uncapped_red - capped_red).abs() < 0.02,
        "cap=100 must not change reduction materially: {capped_red} vs {uncapped_red}"
    );
}

/// Fewer bands must discover at most as many candidate pairs.
#[test]
fn fewer_bands_find_fewer_candidates() {
    let base = build_module(&spec_with(200, 3));
    let mut prev_cmps = 0;
    for bands in [10usize, 50, 100] {
        let params = MergeParams::custom(bands * 2, 2, 0.0, 100);
        let mut m = base.clone();
        let r = run_pass(
            &mut m,
            &PassConfig { strategy: Strategy::F3m(params), ..Default::default() },
        );
        assert!(
            r.stats.fingerprint_comparisons >= prev_cmps,
            "bands={bands}: comparisons should grow with bands"
        );
        prev_cmps = r.stats.fingerprint_comparisons;
    }
}

/// The legacy (buggy) repair mode must never produce an invalid module —
/// the paper stresses the bug was a silent miscompile, caught only by
/// running the programs.
#[test]
fn legacy_mode_still_verifies() {
    let mut m = build_module(&spec_with(80, 21));
    let mut config = PassConfig::f3m();
    config.merge = MergeConfig { repair: RepairMode::LegacyBuggy };
    run_pass(&mut m, &config);
    f3m::ir::verify::verify_module(&m).unwrap();
}

/// Repair-mode ablation: phi reconstruction should give at least as much
/// size reduction as stack demotion (loads/stores cost bytes; phis are
/// nearly free after register allocation).
#[test]
fn phi_repair_beats_stack_repair_on_size() {
    let base = build_module(&spec_with(200, 13));
    let run_mode = |repair| {
        let mut m = base.clone();
        let mut config = PassConfig::f3m();
        config.merge = MergeConfig { repair };
        run_pass(&mut m, &config).stats.size_reduction()
    };
    let phi = run_mode(RepairMode::Phi);
    let stack = run_mode(RepairMode::Stack);
    assert!(
        phi >= stack - 1e-9,
        "phi repair {phi:.4} must not lose to stack repair {stack:.4}"
    );
}
