//! MinHash estimation-error bound on generated (not hand-picked)
//! functions, promoted from the top-level differential suite so the
//! fingerprint crate carries its own accuracy contract.
//!
//! # Tolerance
//!
//! For a size-`k` MinHash signature the estimator is a mean of `k`
//! Bernoulli trials with success probability J (the true Jaccard
//! similarity), so its standard error is `sqrt(J(1-J)/k) <= 0.5/sqrt(k)`.
//! We assert `|est - exact| < 4/sqrt(k)`: eight standard errors at the
//! worst-case variance. That is deliberately generous — the shared-xor
//! permutation family trades a little independence for speed, which
//! inflates the constant but not the `O(1/sqrt(k))` rate — while still
//! tight enough to catch a broken hash family (errors would then be
//! O(1), e.g. 0.3+, and fail immediately at k = 400).

use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::minhash::{exact_jaccard, MinHashFingerprint};
use f3m_ir::function::Linkage;
use f3m_ir::module::Module;
use f3m_prng::SmallRng;
use f3m_workloads::{declare_externals, generate_function, MutationProfile, ShapeParams};

#[test]
fn minhash_estimates_jaccard_within_bound() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0004);
    let profiles = [
        ("identical", MutationProfile::identical()),
        ("medium", MutationProfile::medium()),
    ];
    for round in 0..40 {
        let seed = rng.gen_range(0..100_000u64);
        let member = rng.gen_range(1..5u64);
        let target_insts = rng.gen_range(20..120usize);
        let (pname, profile) = &profiles[round % profiles.len()];
        let mut m = Module::new("prop");
        let ext = declare_externals(&mut m);
        let shape = ShapeParams { target_insts, ..Default::default() };
        let f1 = generate_function(
            &mut m.types, &ext, "a", &shape, seed, 0,
            &MutationProfile::identical(), Linkage::External,
        );
        let f2 = generate_function(
            &mut m.types, &ext, "b", &shape, seed, member, profile, Linkage::External,
        );
        let e1 = encode_function(&m.types, &f1);
        let e2 = encode_function(&m.types, &f2);
        let exact = exact_jaccard(&e1, &e2);
        for k in [100usize, 200, 400] {
            let fp1 = MinHashFingerprint::of_encoded(&e1, k);
            let fp2 = MinHashFingerprint::of_encoded(&e2, k);
            let est = fp1.similarity(&fp2);
            let bound = 4.0 / (k as f64).sqrt();
            assert!(
                (est - exact).abs() < bound,
                "k={k}: estimate {est} vs exact {exact} off by more than {bound} \
                 (seed {seed} member {member} insts {target_insts} profile {pname})"
            );
        }
    }
}

#[test]
fn minhash_similarity_is_exact_at_the_extremes() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0006);
    for _ in 0..10 {
        let seed = rng.gen_range(0..100_000u64);
        let mut m = Module::new("prop");
        let ext = declare_externals(&mut m);
        let shape = ShapeParams { target_insts: 60, ..Default::default() };
        let f1 = generate_function(
            &mut m.types, &ext, "a", &shape, seed, 0,
            &MutationProfile::identical(), Linkage::External,
        );
        let e1 = encode_function(&m.types, &f1);
        let fp = MinHashFingerprint::of_encoded(&e1, 200);
        // A fingerprint always estimates itself at exactly 1.0.
        assert_eq!(fp.similarity(&fp), 1.0, "seed {seed}");
    }
}
