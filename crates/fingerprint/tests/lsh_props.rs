//! Statistical validation of the LSH banding scheme against Equation 2 of
//! the paper, plus property tests of the MinHash estimator on synthetic
//! fingerprints with controlled similarity.

use f3m_fingerprint::lsh::{collision_probability, LshIndex, LshParams};
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_prng::SmallRng;

/// Deterministic pseudo-random stream (decoupled from `rand` so the test
/// is stable forever).
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Builds two encoded streams whose shingle sets overlap by roughly `s`.
fn correlated_streams(rng: &mut Mix, s: f64, len: usize) -> (Vec<u32>, Vec<u32>) {
    // Shared prefix of proportion s; disjoint distinctive tails. Because
    // shingles straddle the boundary only once, the sets' Jaccard index is
    // close to s for long streams.
    let shared = ((len as f64) * s) as usize;
    let mut a = Vec::with_capacity(len);
    let mut b = Vec::with_capacity(len);
    for _ in 0..shared {
        let v = rng.next() as u32;
        a.push(v);
        b.push(v);
    }
    // Re-sync shared part as a *prefix* on both, then diverge.
    for _ in shared..len {
        a.push(rng.next() as u32 | 0x8000_0000);
        b.push(rng.next() as u32 & 0x7FFF_FFFF);
    }
    (a, b)
}

#[test]
fn equation_2_predicts_measured_collision_rates() {
    // For several similarity levels, measure how often two fingerprints
    // share at least one band, and compare with 1 - (1 - s^r)^b using the
    // *measured* fingerprint similarity (the quantity Equation 2 is about).
    let params = LshParams { rows: 2, bands: 20, bucket_cap: usize::MAX };
    let k = params.fingerprint_size();
    let mut rng = Mix(42);
    for target_s in [0.2f64, 0.5, 0.8] {
        let trials = 300;
        let mut collided = 0usize;
        let mut sim_sum = 0.0;
        for _ in 0..trials {
            let (a, b) = correlated_streams(&mut rng, target_s, 120);
            let fa = MinHashFingerprint::of_encoded(&a, k);
            let fb = MinHashFingerprint::of_encoded(&b, k);
            sim_sum += fa.similarity(&fb);
            let mut idx: LshIndex<u32> = LshIndex::new(params);
            idx.insert(1, fa.hashes());
            let (cands, _) = idx.candidates(fb.hashes(), 0);
            if !cands.is_empty() {
                collided += 1;
            }
        }
        let measured_rate = collided as f64 / trials as f64;
        let mean_sim = sim_sum / trials as f64;
        let predicted = collision_probability(mean_sim, params.rows, params.bands);
        assert!(
            (measured_rate - predicted).abs() < 0.12,
            "s≈{target_s}: measured {measured_rate:.3} vs Eq.2 {predicted:.3} (mean sim {mean_sim:.3})"
        );
    }
}

#[test]
fn higher_similarity_means_higher_collision_rate() {
    let params = LshParams { rows: 2, bands: 10, bucket_cap: usize::MAX };
    let k = params.fingerprint_size();
    let mut rng = Mix(7);
    let mut rates = Vec::new();
    for s in [0.1f64, 0.4, 0.7, 0.95] {
        let trials = 200;
        let mut collided = 0;
        for _ in 0..trials {
            let (a, b) = correlated_streams(&mut rng, s, 100);
            let fa = MinHashFingerprint::of_encoded(&a, k);
            let fb = MinHashFingerprint::of_encoded(&b, k);
            let mut idx: LshIndex<u32> = LshIndex::new(params);
            idx.insert(1, fa.hashes());
            if !idx.candidates(fb.hashes(), 0).0.is_empty() {
                collided += 1;
            }
        }
        rates.push(collided as f64 / trials as f64);
    }
    for w in rates.windows(2) {
        assert!(w[1] >= w[0] - 0.05, "collision rate should rise with similarity: {rates:?}");
    }
    assert!(rates[3] > 0.95, "near-identical items almost always collide: {rates:?}");
}

fn random_stream(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<u32> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.next_u32()).collect()
}

#[test]
fn minhash_similarity_is_reflexive_and_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for _ in 0..24 {
        let stream = random_stream(&mut rng, 1, 80);
        let other = random_stream(&mut rng, 1, 80);
        let a = MinHashFingerprint::of_encoded(&stream, 64);
        let b = MinHashFingerprint::of_encoded(&other, 64);
        assert_eq!(a.similarity(&a), 1.0);
        assert_eq!(a.similarity(&b), b.similarity(&a));
        let s = a.similarity(&b);
        assert!((0.0..=1.0).contains(&s));
    }
}

#[test]
fn permutation_does_not_change_minhash_much() {
    // MinHash is a set construction over shingles; a rotation keeps
    // most shingles intact, so similarity stays high (but an opcode
    // histogram would be *identical* — the F3M advantage is that
    // MinHash still notices the seam).
    let mut rng = SmallRng::seed_from_u64(0xB0B);
    for _ in 0..24 {
        let mut stream = random_stream(&mut rng, 12, 60);
        let a = MinHashFingerprint::of_encoded(&stream, 256);
        stream.rotate_left(1);
        let b = MinHashFingerprint::of_encoded(&stream, 256);
        let s = a.similarity(&b);
        assert!(s > 0.55, "rotation keeps most shingles: {s}");
    }
}

#[test]
fn collision_probability_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _ in 0..200 {
        let s1 = rng.gen_f64();
        let s2 = rng.gen_f64();
        let r = rng.gen_range(1..8usize);
        let b = rng.gen_range(1..128usize);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        assert!(collision_probability(lo, r, b) <= collision_probability(hi, r, b) + 1e-12);
        // More bands never hurt discovery.
        assert!(
            collision_probability(s1, r, b) <= collision_probability(s1, r, b + 1) + 1e-12
        );
    }
}

#[test]
fn lsh_insert_then_remove_is_identity() {
    let mut rng = SmallRng::seed_from_u64(0xD00D);
    for _ in 0..24 {
        let params = LshParams { rows: 2, bands: 8, bucket_cap: 100 };
        let n = rng.gen_range(1..10usize);
        let fps: Vec<_> = (0..n)
            .map(|_| {
                let s = random_stream(&mut rng, 2, 30);
                MinHashFingerprint::of_encoded(&s, params.fingerprint_size())
            })
            .collect();
        let mut idx: LshIndex<usize> = LshIndex::new(params);
        for (i, fp) in fps.iter().enumerate() {
            idx.insert(i, fp.hashes());
        }
        for (i, fp) in fps.iter().enumerate() {
            idx.remove(i, fp.hashes());
        }
        assert_eq!(idx.num_buckets(), 0);
    }
}
