//! Property tests for the adaptive parameter equations (Section III-D,
//! Equations 3 and 4). A seeded sweep over random module sizes checks the
//! invariants the pass relies on: monotonicity, clamping, the derived
//! parameter relations, and bit-level determinism.

use f3m_fingerprint::adaptive::{adaptive_bands, adaptive_threshold, MergeParams};
use f3m_fingerprint::lsh::collision_probability;
use f3m_prng::SmallRng;

/// Random module sizes spanning the interesting regimes: tiny, around the
/// 10^3.5 and 5000 knees, the log-linear middle, and beyond the 10^7 cap.
fn size_sweep(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sizes: Vec<usize> = (0..n)
        .map(|_| {
            // log-uniform in [1, 10^8)
            let exp = rng.gen_range(0.0..8.0f64);
            10f64.powf(exp) as usize + 1
        })
        .collect();
    // Pin the knees and endpoints so the sweep always crosses them.
    sizes.extend([1, 2, 3161, 3163, 4999, 5000, 5001, 9_999_999, 10_000_001, 100_000_000]);
    sizes.sort_unstable();
    sizes
}

#[test]
fn threshold_is_monotone_and_clamped() {
    let sizes = size_sweep(0xADA7_0001, 400);
    let mut prev = 0.0f64;
    for &n in &sizes {
        let t = adaptive_threshold(n);
        assert!((0.05..=0.4).contains(&t), "n={n}: threshold {t} outside [0.05, 0.4]");
        assert!(t.is_finite());
        assert!(t >= prev, "threshold decreased at n={n}: {prev} -> {t}");
        prev = t;
    }
    // The clamps engage exactly at the paper's knees.
    assert_eq!(adaptive_threshold(1), 0.05);
    assert_eq!(adaptive_threshold(3161), 0.05); // just under 10^3.5
    assert_eq!(adaptive_threshold(100_000_000), 0.4); // above 10^7
}

#[test]
fn bands_are_monotone_in_threshold_and_bounded() {
    let sizes = size_sweep(0xADA7_0002, 400);
    let mut prev_bands = usize::MAX;
    for &n in &sizes {
        let t = adaptive_threshold(n);
        let b = adaptive_bands(t);
        // Raw Equation 4 can ask for slightly more than 100 bands at the
        // 0.05 threshold floor (102 with r = 2); `MergeParams::adaptive`
        // never uses it there, so only a loose upper bound applies here.
        assert!((1..=102).contains(&b), "n={n}: bands {b} outside [1, 102]");
        // Higher thresholds mean likelier per-band collisions, so fewer
        // bands suffice for the 90% discovery guarantee.
        assert!(b <= prev_bands, "bands increased at n={n} (t={t}): {prev_bands} -> {b}");
        prev_bands = b;
        // The guarantee itself (Equation 4's derivation): a pair at
        // similarity t + 0.1 collides with >= 90% probability.
        let prob = collision_probability(t + 0.1, 2, b);
        assert!(prob >= 0.9, "n={n}: discovery probability {prob} < 0.9");
    }
}

#[test]
fn adaptive_params_hold_their_invariants() {
    let sizes = size_sweep(0xADA7_0003, 400);
    for &n in &sizes {
        let p = MergeParams::adaptive(n);
        assert_eq!(p.lsh.rows, 2, "n={n}: the paper fixes r = 2");
        assert_eq!(p.k, 2 * p.lsh.bands, "n={n}: k must equal r x b");
        assert_eq!(p.lsh.bucket_cap, 100, "n={n}");
        assert!((1..=100).contains(&p.lsh.bands), "n={n}: bands {}", p.lsh.bands);
        if n < 5000 {
            // Small programs keep the full static banding.
            assert_eq!(p.lsh.bands, 100, "n={n}");
            assert_eq!(p.k, 200, "n={n}");
        }
        assert_eq!(p.threshold.to_bits(), adaptive_threshold(n).to_bits(), "n={n}");
    }
}

#[test]
fn equations_are_bit_stable() {
    // The pass compares and serializes these values, so they must be
    // byte-identical across repeated evaluation, not merely approximately
    // equal.
    let sizes = size_sweep(0xADA7_0004, 200);
    for &n in &sizes {
        let a = adaptive_threshold(n);
        let b = adaptive_threshold(n);
        assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
        assert_eq!(adaptive_bands(a), adaptive_bands(b), "n={n}");
        let p1 = MergeParams::adaptive(n);
        let p2 = MergeParams::adaptive(n);
        assert_eq!(p1.threshold.to_bits(), p2.threshold.to_bits(), "n={n}");
        assert_eq!((p1.k, p1.lsh.rows, p1.lsh.bands), (p2.k, p2.lsh.rows, p2.lsh.bands));
    }
}
