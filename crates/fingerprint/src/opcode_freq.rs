//! HyFM-style opcode-frequency fingerprints.
//!
//! The baseline fingerprint (Section II-A): "a vector representing the
//! frequencies of all the instruction opcodes in its function body".
//! Similarity between two fingerprints is the Manhattan distance,
//! normalized into `[0, 1]` for reporting (Figures 4 and 6 of the paper
//! plot this normalized similarity).

use f3m_ir::inst::Opcode;
use f3m_ir::function::Function;

/// Frequency-vector fingerprint over the opcode alphabet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpcodeFingerprint {
    counts: [u32; Opcode::COUNT],
    total: u32,
}

impl OpcodeFingerprint {
    /// Builds the fingerprint of a function body.
    pub fn of(f: &Function) -> OpcodeFingerprint {
        let mut counts = [0u32; Opcode::COUNT];
        let mut total = 0;
        for (_, inst) in f.linked_insts() {
            counts[(inst.op.code() as usize - 1) % Opcode::COUNT] += 1;
            total += 1;
        }
        OpcodeFingerprint { counts, total }
    }

    /// Number of instructions fingerprinted.
    pub fn magnitude(&self) -> u32 {
        self.total
    }

    /// Manhattan (L1) distance between two fingerprints. Zero means the two
    /// functions have identical opcode frequencies (but possibly completely
    /// different structure — the paper's core criticism).
    pub fn distance(&self, other: &OpcodeFingerprint) -> u32 {
        self.counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// Normalized similarity in `[0, 1]`:
    /// `1 - distance / (|self| + |other|)`.
    pub fn similarity(&self, other: &OpcodeFingerprint) -> f64 {
        let denom = self.total + other.total;
        if denom == 0 {
            return 1.0;
        }
        1.0 - self.distance(other) as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::builder::FunctionBuilder;
    use f3m_ir::module::Module;
    use f3m_ir::function::Function;

    fn fp_of(n_adds: usize, n_muls: usize) -> OpcodeFingerprint {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut f = Function::new("f", vec![i32t, i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let e = b.create_block("entry");
            b.position_at_end(e);
            let mut acc = b.func().arg(0);
            for _ in 0..n_adds {
                acc = b.add(acc, b.func().arg(1));
            }
            for _ in 0..n_muls {
                acc = b.mul(acc, b.func().arg(1));
            }
            b.ret(Some(acc));
        }
        OpcodeFingerprint::of(&f)
    }

    #[test]
    fn identical_functions_have_distance_zero() {
        let a = fp_of(3, 2);
        let b = fp_of(3, 2);
        assert_eq!(a.distance(&b), 0);
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn distance_counts_opcode_differences() {
        let a = fp_of(3, 2);
        let b = fp_of(2, 3);
        // one add fewer, one mul more -> distance 2.
        assert_eq!(a.distance(&b), 2);
        assert_eq!(b.distance(&a), 2, "symmetric");
    }

    #[test]
    fn similarity_decreases_with_distance() {
        let a = fp_of(5, 0);
        let close = fp_of(4, 1);
        let far = fp_of(0, 5);
        assert!(a.similarity(&close) > a.similarity(&far));
        assert!(a.similarity(&far) >= 0.0);
    }

    #[test]
    fn structure_blindness_demonstrated() {
        // Same opcode histogram, different order: fingerprints identical.
        // (This is exactly the weakness Figure 5 of the paper shows.)
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mk = |m: &mut Module, name: &str, add_first: bool| {
            let mut f = Function::new(name, vec![i32t, i32t], i32t);
            {
                let mut b = FunctionBuilder::new(&mut m.types, &mut f);
                let e = b.create_block("entry");
                b.position_at_end(e);
                let (x, y) = (b.func().arg(0), b.func().arg(1));
                let r = if add_first {
                    let t = b.add(x, y);
                    b.mul(t, y)
                } else {
                    let t = b.mul(x, y);
                    b.add(t, y)
                };
                b.ret(Some(r));
            }
            f
        };
        let f1 = mk(&mut m, "a", true);
        let f2 = mk(&mut m, "b", false);
        assert_eq!(OpcodeFingerprint::of(&f1).distance(&OpcodeFingerprint::of(&f2)), 0);
    }

    #[test]
    fn magnitude_counts_instructions() {
        assert_eq!(fp_of(3, 2).magnitude(), 6); // 5 ops + ret
    }
}
