//! Locality Sensitive Hashing over fingerprint signatures.
//!
//! Section III-C of the paper: a fingerprint of `k` hashes is split into
//! `b` non-overlapping bands of `r` rows (`k = b × r`); each band is hashed
//! into a bucket. Two functions are compared only if at least one band
//! matches. The probability of comparison at Jaccard similarity `s` is
//! `1 - (1 - s^r)^b` ([`collision_probability`]).
//!
//! Band keys are 32-bit ([`BandKey`]): the 64-bit FNV band hash is folded
//! to 32 bits so the packed key arrays in
//! [`PackedFingerprintStore`](crate::store::PackedFingerprintStore) and the
//! on-disk [snapshot](crate::snapshot) stay half the size. At 100 bands
//! over a million functions (~10⁸ keys) the fold adds only benign extra
//! bucket collisions — the per-bucket comparison cap already bounds their
//! cost.
//!
//! The index is signature-agnostic: any [fingerprint
//! backend](crate::backend) that produces a `k`-slot `u64` signature bands
//! through the same [`band_keys_for`] path (MinHash slots, SimHash
//! projection bytes, TLSH-style quartile codes).
//!
//! Over-populated buckets (caused by very common instruction subsequences)
//! are tamed by capping the number of comparisons per bucket
//! (Section III-C / Figure 16); the cap is applied in
//! [`LshIndex::candidates`].

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::fnv::fnv1a_u64s;

/// A banded bucket key. 32-bit by design — see the module docs.
pub type BandKey = u32;

/// Banding parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LshParams {
    /// Rows per band (`r`). The paper's adaptive policy always uses 2.
    pub rows: usize,
    /// Number of bands (`b`).
    pub bands: usize,
    /// Maximum candidates taken from any single bucket (paper: 100).
    /// `usize::MAX` disables the cap.
    pub bucket_cap: usize,
}

impl LshParams {
    /// The fingerprint size `k = b × r` implied by these parameters.
    pub fn fingerprint_size(&self) -> usize {
        self.rows * self.bands
    }
}

/// Probability that two items with Jaccard similarity `s` share at least
/// one band (Equation 2 of the paper).
///
/// # Examples
///
/// ```
/// use f3m_fingerprint::lsh::collision_probability;
/// // Highly similar pairs are almost always discovered with the static
/// // configuration (r = 2, b = 100).
/// assert!(collision_probability(0.8, 2, 100) > 0.999);
/// // Dissimilar pairs rarely collide.
/// assert!(collision_probability(0.05, 2, 100) < 0.3);
/// ```
pub fn collision_probability(s: f64, rows: usize, bands: usize) -> f64 {
    1.0 - (1.0 - s.powi(rows as i32)).powi(bands as i32)
}

/// Folds a 64-bit band hash into a [`BandKey`], mixing both halves so the
/// truncation keeps the full hash's entropy.
#[inline]
fn fold_key(h: u64) -> BandKey {
    (h ^ (h >> 32)) as BandKey
}

/// Band bucket keys of a signature under `params`, as a standalone
/// function so they can be computed off-index (e.g. on worker threads
/// during a parallel bulk build) and fed to [`LshIndex::insert_with_keys`].
/// `sig` is the `k`-slot signature words of any fingerprint backend (for
/// MinHash, [`MinHashFingerprint::hashes`](crate::minhash::MinHashFingerprint::hashes)).
///
/// # Panics
///
/// Panics if the signature is smaller than `k = rows × bands`.
pub fn band_keys_for(params: LshParams, sig: &[u64]) -> Vec<BandKey> {
    let r = params.rows;
    assert!(sig.len() >= params.fingerprint_size(), "fingerprint too small for banding");
    (0..params.bands)
        .map(|j| {
            let band = &sig[j * r..(j + 1) * r];
            // Mix the band index in so identical sub-vectors in different
            // bands do not alias.
            fold_key(
                fnv1a_u64s(band).wrapping_add((j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        })
        .collect()
}

/// Band keys plus a multi-probe sequence of `probes` perturbed keys.
///
/// Multi-probe LSH: instead of growing recall by adding bands (which
/// grows the *index*), perturb the query's bands and look into the
/// neighboring buckets a near-duplicate would most plausibly have landed
/// in — paying query-time work for recall, tunable per query.
///
/// The probe sequence is deterministic and *prefix-stable*: the result
/// for `probes = n` is exactly the first `bands + n` keys of the result
/// for `probes = n + 1`. Fed through `probe_keys_into` (which dedups),
/// that makes the candidate set monotonically non-decreasing in
/// `probes` — recall can only go up.
///
/// Perturbation `d` flips one low bit of one slot of band `d % bands`:
/// variant `v = d / bands` selects slot `v % rows` and bit
/// `(v / rows) % 8`. The low 8 bits are the right target for every
/// backend: SimHash and the embedding backend pack their 8 per-slot
/// projection signs there ([`SIMHASH_BITS_PER_SLOT`]
/// (crate::backend::SIMHASH_BITS_PER_SLOT)), so a single-bit flip is
/// precisely the adjacent Hamming bucket; for MinHash/TLSH slot values
/// it is simply the smallest perturbation of the banded value.
///
/// # Panics
///
/// Panics if the signature is smaller than `k = rows × bands`.
pub fn probe_keys_for(params: LshParams, sig: &[u64], probes: usize) -> Vec<BandKey> {
    let r = params.rows;
    let mut keys = band_keys_for(params, sig);
    keys.reserve(probes);
    let mut band = vec![0u64; r];
    for d in 0..probes {
        let j = d % params.bands;
        let v = d / params.bands;
        let slot = v % r;
        let bit = (v / r) % 8;
        band.copy_from_slice(&sig[j * r..(j + 1) * r]);
        band[slot] ^= 1u64 << bit;
        keys.push(fold_key(
            fnv1a_u64s(&band).wrapping_add((j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ));
    }
    keys
}

/// An LSH index mapping band hashes to buckets of items.
#[derive(Clone, Debug)]
pub struct LshIndex<T> {
    params: LshParams,
    buckets: HashMap<BandKey, Vec<T>>,
}

/// Per-query work counts reported by [`LshIndex::candidates_counted`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LshQueryStats {
    /// Bucket entries examined (the paper's "fingerprint comparisons").
    pub examined: usize,
    /// Entries skipped because their bucket overflowed `bucket_cap`
    /// (summed over all queried bands).
    pub evicted: usize,
    /// Examined entries that were already collected from an earlier band
    /// of the same query — cross-band duplicate hits. `examined` minus
    /// `collisions` is the number of distinct candidates returned.
    pub collisions: usize,
}

/// Reusable per-query buffers for [`LshIndex::probe_keys_into`] /
/// [`ShardedLshIndex::probe_keys_into`](crate::sharded::ShardedLshIndex::probe_keys_into):
/// the dedup set and the candidate list survive across queries (cleared,
/// capacity kept), so a warm scratch answers every probe without a fresh
/// allocation.
#[derive(Debug, Default)]
pub struct QueryScratch<T> {
    pub(crate) seen: HashSet<T>,
    /// Distinct candidates of the last probe, in discovery (band) order.
    pub out: Vec<T>,
}

impl<T: Copy + Ord + Hash> QueryScratch<T> {
    /// Creates an empty scratch.
    pub fn new() -> QueryScratch<T> {
        QueryScratch { seen: HashSet::new(), out: Vec::new() }
    }

    /// Clears the buffers, keeping their capacity.
    pub fn reset(&mut self) {
        self.seen.clear();
        self.out.clear();
    }
}

impl<T: Copy + Ord + Hash> LshIndex<T> {
    /// Creates an empty index.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `bands` is zero.
    pub fn new(params: LshParams) -> LshIndex<T> {
        assert!(params.rows > 0 && params.bands > 0, "rows/bands must be positive");
        LshIndex { params, buckets: HashMap::new() }
    }

    /// The banding parameters.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Band bucket keys of a signature.
    ///
    /// # Panics
    ///
    /// Panics if the signature is smaller than `k = rows × bands`.
    pub fn band_keys<'a>(&'a self, sig: &'a [u64]) -> impl Iterator<Item = BandKey> + 'a {
        band_keys_for(self.params, sig).into_iter()
    }

    /// Inserts an item under all its bands.
    pub fn insert(&mut self, id: T, sig: &[u64]) {
        let keys: Vec<BandKey> = self.band_keys(sig).collect();
        self.insert_with_keys(id, &keys);
    }

    /// Inserts an item under pre-computed band keys (as produced by
    /// [`band_keys_for`] with the same parameters). This is the
    /// parallel-friendly half of a bulk build: worker threads hash bands,
    /// then a single sequential loop populates the buckets in item order
    /// so the bucket contents are identical to one-by-one insertion.
    ///
    /// Buckets are kept sorted by item id, so the set of entries surviving
    /// the `bucket_cap` truncation in [`Self::candidates`] — and therefore
    /// the candidate list and every derived counter — is independent of
    /// insertion order. (The pass build inserts ids in ascending order
    /// anyway; sorting makes the guarantee hold for arbitrary callers.)
    pub fn insert_with_keys(&mut self, id: T, keys: &[BandKey]) {
        for &key in keys {
            let bucket = self.buckets.entry(key).or_default();
            let pos = bucket.binary_search(&id).unwrap_or_else(|p| p);
            bucket.insert(pos, id);
        }
    }

    /// Removes an item from all its bands (no-op for absent entries).
    pub fn remove(&mut self, id: T, sig: &[u64]) {
        let keys: Vec<BandKey> = self.band_keys(sig).collect();
        self.remove_with_keys(id, &keys);
    }

    /// Removes an item under pre-computed band keys — the eviction
    /// counterpart of [`Self::insert_with_keys`]. Cost is proportional to
    /// the item's own band count, never to index size, which is what makes
    /// rebuild-free eviction possible for a resident index.
    pub fn remove_with_keys(&mut self, id: T, keys: &[BandKey]) {
        for key in keys {
            if let Some(v) = self.buckets.get_mut(key) {
                v.retain(|&x| x != id);
                if v.is_empty() {
                    self.buckets.remove(key);
                }
            }
        }
    }

    /// The sorted contents of the bucket under one band key (`None` when
    /// empty). This is the probing primitive a sharded wrapper uses to
    /// reproduce [`Self::candidates_counted`] across shard boundaries.
    pub fn probe_key(&self, key: BandKey) -> Option<&[T]> {
        self.buckets.get(&key).map(Vec::as_slice)
    }

    /// Installs one whole bucket as restored from a snapshot. `items`
    /// must be sorted ascending and non-empty — snapshot loaders validate
    /// before calling. Replaces any existing bucket under `key`.
    pub fn restore_bucket(&mut self, key: BandKey, items: Vec<T>) {
        debug_assert!(!items.is_empty(), "snapshot buckets are non-empty");
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "snapshot buckets are sorted");
        self.buckets.insert(key, items);
    }

    /// All buckets as `(key, sorted items)`, ordered by key — the
    /// deterministic serialization order the snapshot writer uses.
    pub fn export_buckets(&self) -> Vec<(BandKey, Vec<T>)> {
        let mut out: Vec<(BandKey, Vec<T>)> =
            self.buckets.iter().map(|(&k, v)| (k, v.clone())).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Total entries across all buckets (an item counts once per band it
    /// occupies).
    pub fn num_entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Collects the distinct candidates sharing at least one band with
    /// `sig`, skipping `exclude` (the query item itself). At most
    /// `bucket_cap` entries are taken from each bucket; the total number of
    /// *entries examined* (the paper's "fingerprint comparisons") is
    /// returned alongside the candidates.
    pub fn candidates(&self, sig: &[u64], exclude: T) -> (Vec<T>, usize) {
        let (out, stats) = self.candidates_counted(sig, exclude);
        (out, stats.examined)
    }

    /// Like [`Self::candidates`], but also reports how many bucket entries
    /// were *evicted* — skipped because their bucket overflowed
    /// `bucket_cap`. Eviction counts are deterministic for a given index
    /// content regardless of insertion order, because buckets are sorted
    /// (see [`Self::insert_with_keys`]).
    pub fn candidates_counted(&self, sig: &[u64], exclude: T) -> (Vec<T>, LshQueryStats) {
        let keys: Vec<BandKey> = self.band_keys(sig).collect();
        let mut scratch = QueryScratch::new();
        let stats = self.probe_keys_into(&keys, exclude, &mut scratch);
        (scratch.out, stats)
    }

    /// The allocation-free query path: probes pre-computed band keys,
    /// reusing `scratch`'s dedup set and candidate buffer (cleared, not
    /// reallocated). Candidates are left in `scratch.out`, in the same
    /// order [`Self::candidates_counted`] returns them. A warm scratch
    /// services every query of a pass without a fresh `HashSet`/`Vec`
    /// pair — the per-probe allocation the old query path paid.
    pub fn probe_keys_into(
        &self,
        keys: &[BandKey],
        exclude: T,
        scratch: &mut QueryScratch<T>,
    ) -> LshQueryStats {
        scratch.reset();
        let mut stats = LshQueryStats::default();
        for &key in keys {
            if let Some(bucket) = self.buckets.get(&key) {
                stats.evicted += bucket.len().saturating_sub(self.params.bucket_cap);
                for &item in bucket.iter().take(self.params.bucket_cap) {
                    if item == exclude {
                        continue;
                    }
                    stats.examined += 1;
                    if scratch.seen.insert(item) {
                        scratch.out.push(item);
                    } else {
                        stats.collisions += 1;
                    }
                }
            }
        }
        stats
    }

    /// Sizes of all non-empty buckets (for the Figure 16 style analysis of
    /// over-populated buckets).
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.values().map(|v| v.len()).collect()
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Size of the fullest bucket (0 for an empty index). Over-populated
    /// buckets are where the `bucket_cap` truncation bites.
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.values().map(|v| v.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHashFingerprint;

    fn sig(stream: &[u32], k: usize) -> Vec<u64> {
        MinHashFingerprint::of_encoded(stream, k).hashes().to_vec()
    }

    fn params() -> LshParams {
        LshParams { rows: 2, bands: 16, bucket_cap: 100 }
    }

    #[test]
    fn probe_sequence_is_prefix_stable() {
        let p = params();
        let s: Vec<u32> = (3..40).collect();
        let f = sig(&s, 32);
        assert_eq!(probe_keys_for(p, &f, 0), band_keys_for(p, &f));
        for n in 0..64usize {
            let shorter = probe_keys_for(p, &f, n);
            let longer = probe_keys_for(p, &f, n + 1);
            assert_eq!(&longer[..shorter.len()], &shorter[..], "probes={n}");
            assert_eq!(longer.len(), p.bands + n + 1);
        }
    }

    #[test]
    fn probes_reach_neighboring_buckets() {
        // A single low-bit flip in one slot is exactly what a probe
        // perturbs, so the probed key set of the clean signature must hit
        // the flipped signature's base bucket for that band.
        let p = params();
        let s: Vec<u32> = (0..30).collect();
        let clean = sig(&s, 32);
        let mut flipped = clean.clone();
        flipped[0] ^= 1; // band 0, slot 0, bit 0 = first perturbation
        let base_flipped = band_keys_for(p, &flipped);
        let probed = probe_keys_for(p, &clean, 1);
        assert_eq!(probed[p.bands], base_flipped[0], "probe 0 lands in the neighbor bucket");
        // And the probe keys are not already in the base set.
        assert!(!band_keys_for(p, &clean).contains(&probed[p.bands]));
    }

    #[test]
    fn probed_query_is_a_superset_of_the_base_query() {
        let p = params();
        let mut idx = LshIndex::new(p);
        for i in 0..200u32 {
            let s: Vec<u32> = (i % 11..i % 11 + 25).collect();
            idx.insert(i, &sig(&s, 32));
        }
        let q = sig(&(2..27).collect::<Vec<u32>>(), 32);
        let mut scratch = QueryScratch::new();
        let mut prev: Option<Vec<u32>> = None;
        for probes in [0usize, 8, 32, 128] {
            let keys = probe_keys_for(p, &q, probes);
            idx.probe_keys_into(&keys, u32::MAX, &mut scratch);
            let mut got = scratch.out.clone();
            got.sort_unstable();
            if let Some(prev) = &prev {
                assert!(
                    prev.iter().all(|c| got.binary_search(c).is_ok()),
                    "candidates must be monotone in probes (probes={probes})"
                );
            }
            prev = Some(got);
        }
    }

    #[test]
    fn identical_items_share_all_bands() {
        let mut idx = LshIndex::new(params());
        let s: Vec<u32> = (0..20).collect();
        let f1 = sig(&s, 32);
        idx.insert(1u32, &f1);
        let (cands, _) = idx.candidates(&f1, 0);
        assert_eq!(cands, vec![1]);
    }

    #[test]
    fn query_excludes_self() {
        let mut idx = LshIndex::new(params());
        let s: Vec<u32> = (0..20).collect();
        let f1 = sig(&s, 32);
        idx.insert(7u32, &f1);
        let (cands, _) = idx.candidates(&f1, 7);
        assert!(cands.is_empty());
    }

    #[test]
    fn similar_items_likely_share_a_band() {
        let mut idx = LshIndex::new(params());
        let a: Vec<u32> = (0..40).collect();
        let mut b = a.clone();
        b[39] = 999; // tiny difference
        let fa = sig(&a, 32);
        let fb = sig(&b, 32);
        idx.insert(1u32, &fa);
        let (cands, _) = idx.candidates(&fb, 2);
        assert_eq!(cands, vec![1], "near-identical functions must collide");
    }

    #[test]
    fn dissimilar_items_rarely_collide() {
        let mut idx = LshIndex::new(params());
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (1000..1040).collect();
        idx.insert(1u32, &sig(&a, 32));
        let (cands, _) = idx.candidates(&sig(&b, 32), 2);
        assert!(cands.is_empty(), "disjoint shingle sets must not collide");
    }

    #[test]
    fn remove_makes_item_unfindable() {
        let mut idx = LshIndex::new(params());
        let s: Vec<u32> = (0..20).collect();
        let f1 = sig(&s, 32);
        idx.insert(1u32, &f1);
        idx.remove(1u32, &f1);
        let (cands, _) = idx.candidates(&f1, 0);
        assert!(cands.is_empty());
        assert_eq!(idx.num_buckets(), 0, "empty buckets are reclaimed");
    }

    #[test]
    fn bucket_cap_limits_examined_entries() {
        let mut idx = LshIndex::new(LshParams { rows: 2, bands: 1, bucket_cap: 5 });
        let s: Vec<u32> = (0..10).collect();
        let f1 = sig(&s, 2);
        for id in 0..50u32 {
            idx.insert(id, &f1);
        }
        let (cands, examined) = idx.candidates(&f1, u32::MAX);
        assert!(cands.len() <= 5);
        assert!(examined <= 5);
    }

    #[test]
    fn candidates_are_deduplicated_across_bands() {
        let mut idx = LshIndex::new(params());
        let s: Vec<u32> = (0..20).collect();
        let f1 = sig(&s, 32);
        idx.insert(1u32, &f1);
        let (cands, stats) = idx.candidates_counted(&f1, 0);
        assert_eq!(cands, vec![1]);
        assert!(stats.examined >= 16, "entry examined once per matching band");
        // One distinct candidate: every further hit is a cross-band
        // collision, and the counter accounts for each of them.
        assert_eq!(stats.collisions, stats.examined - cands.len());
    }

    #[test]
    fn collision_probability_matches_montecarlo_shape() {
        // p is monotone in s, and steeper with more bands.
        let p1 = collision_probability(0.3, 2, 10);
        let p2 = collision_probability(0.6, 2, 10);
        assert!(p2 > p1);
        let few = collision_probability(0.3, 2, 5);
        let many = collision_probability(0.3, 2, 50);
        assert!(many > few);
        // Equation check: r=1, b=1 -> p = s.
        assert!((collision_probability(0.42, 1, 1) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn precomputed_key_insertion_matches_direct_insertion() {
        let s: Vec<u32> = (0..30).collect();
        let f1 = sig(&s, 32);
        let mut direct = LshIndex::new(params());
        direct.insert(4u32, &f1);
        let mut bulk = LshIndex::new(params());
        let keys = band_keys_for(params(), &f1);
        bulk.insert_with_keys(4u32, &keys);
        assert_eq!(direct.num_buckets(), bulk.num_buckets());
        assert_eq!(direct.candidates(&f1, 0), bulk.candidates(&f1, 0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let p = params();
        let mut idx = LshIndex::new(p);
        let streams: Vec<Vec<u32>> = (0..8u32).map(|i| (i..i + 24).collect()).collect();
        let sigs: Vec<Vec<u64>> = streams.iter().map(|s| sig(s, 32)).collect();
        for (i, f) in sigs.iter().enumerate() {
            idx.insert(i as u32, f);
        }
        let mut scratch = QueryScratch::new();
        for (i, f) in sigs.iter().enumerate() {
            let keys = band_keys_for(p, f);
            let stats = idx.probe_keys_into(&keys, i as u32, &mut scratch);
            let (fresh, fresh_stats) = idx.candidates_counted(f, i as u32);
            assert_eq!(scratch.out, fresh, "query {i}");
            assert_eq!(stats, fresh_stats, "query {i}");
        }
    }

    #[test]
    fn restore_bucket_reproduces_exported_index() {
        let p = params();
        let mut idx = LshIndex::new(p);
        let streams: Vec<Vec<u32>> = (0..6u32).map(|i| (i % 3..i % 3 + 20).collect()).collect();
        let sigs: Vec<Vec<u64>> = streams.iter().map(|s| sig(s, 32)).collect();
        for (i, f) in sigs.iter().enumerate() {
            idx.insert(i as u32, f);
        }
        let mut restored = LshIndex::new(p);
        for (key, items) in idx.export_buckets() {
            restored.restore_bucket(key, items);
        }
        assert_eq!(restored.num_buckets(), idx.num_buckets());
        assert_eq!(restored.num_entries(), idx.num_entries());
        for (i, f) in sigs.iter().enumerate() {
            assert_eq!(
                restored.candidates_counted(f, i as u32),
                idx.candidates_counted(f, i as u32)
            );
        }
    }

    #[test]
    fn bucket_cap_overflow_is_deterministic_across_insertion_orders() {
        let p = LshParams { rows: 2, bands: 1, bucket_cap: 3 };
        let s: Vec<u32> = (0..10).collect();
        let f1 = sig(&s, 2);
        let mut ascending = LshIndex::new(p);
        for id in 0..8u32 {
            ascending.insert(id, &f1);
        }
        let mut shuffled = LshIndex::new(p);
        for id in [5u32, 0, 7, 2, 6, 1, 4, 3] {
            shuffled.insert(id, &f1);
        }
        let (ca, sa) = ascending.candidates_counted(&f1, u32::MAX);
        let (cs, ss) = shuffled.candidates_counted(&f1, u32::MAX);
        assert_eq!(ca, cs, "surviving candidates must not depend on insertion order");
        assert_eq!(ca, vec![0, 1, 2], "sorted buckets keep the lowest ids under the cap");
        assert_eq!(sa, ss);
    }

    #[test]
    fn eviction_counter_matches_observed_drops() {
        let p = LshParams { rows: 2, bands: 1, bucket_cap: 3 };
        let s: Vec<u32> = (0..10).collect();
        let f1 = sig(&s, 2);
        let mut idx = LshIndex::new(p);
        for id in 0..8u32 {
            idx.insert(id, &f1);
        }
        let (cands, stats) = idx.candidates_counted(&f1, u32::MAX);
        // 8 in the bucket, cap 3: exactly 5 entries dropped, and the drop
        // count equals bucket population minus returned candidates.
        assert_eq!(stats.evicted, 5);
        assert_eq!(stats.evicted, idx.max_bucket_size() - cands.len());
        assert_eq!(stats.examined, 3);
        // Uncapped index over the same content evicts nothing.
        let mut uncapped = LshIndex::new(LshParams { bucket_cap: usize::MAX, ..p });
        for id in 0..8u32 {
            uncapped.insert(id, &f1);
        }
        let (all, stats) = uncapped.candidates_counted(&f1, u32::MAX);
        assert_eq!(stats.evicted, 0);
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn eviction_counts_exclude_self_and_sum_over_bands() {
        // Two bands over the same fingerprint double the per-bucket drops.
        let p = LshParams { rows: 1, bands: 2, bucket_cap: 2 };
        let s: Vec<u32> = (0..10).collect();
        let f1 = sig(&s, 2);
        let mut idx = LshIndex::new(p);
        for id in 0..5u32 {
            idx.insert(id, &f1);
        }
        let (_, stats) = idx.candidates_counted(&f1, 0);
        // Each band bucket holds 5 entries, cap 2 -> 3 evicted per band.
        assert_eq!(stats.evicted, 6);
        // id 0 survives the cap then is excluded as self: 1 examined/band.
        assert_eq!(stats.examined, 2);
        // Band two re-finds band one's survivor: one cross-band collision.
        assert_eq!(stats.collisions, 1);
    }

    #[test]
    fn remove_keeps_buckets_sorted() {
        let p = LshParams { rows: 2, bands: 1, bucket_cap: 2 };
        let s: Vec<u32> = (0..10).collect();
        let f1 = sig(&s, 2);
        let mut idx = LshIndex::new(p);
        for id in [3u32, 1, 4, 0, 2] {
            idx.insert(id, &f1);
        }
        idx.remove(1, &f1);
        let (cands, _) = idx.candidates_counted(&f1, u32::MAX);
        assert_eq!(cands, vec![0, 2], "cap keeps the lowest surviving ids");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn banding_requires_large_enough_fingerprint() {
        let idx: LshIndex<u32> = LshIndex::new(LshParams { rows: 4, bands: 10, bucket_cap: 100 });
        let f = sig(&[1, 2, 3], 8); // needs 40 slots
        let _ = idx.band_keys(&f).count();
    }
}
