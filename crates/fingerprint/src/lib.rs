//! # f3m-fingerprint — function fingerprints and LSH candidate search
//!
//! Implements both fingerprints compared by the paper:
//!
//! - [`opcode_freq::OpcodeFingerprint`] — the HyFM baseline: a vector of
//!   instruction opcode frequencies compared by Manhattan distance;
//! - [`minhash::MinHashFingerprint`] — F3M's contribution: MinHash over
//!   shingles of [encoded instructions](encode), whose slot-equality ratio
//!   estimates the Jaccard index of the functions' instruction
//!   subsequences.
//!
//! [`lsh::LshIndex`] provides the banded approximate nearest-neighbour
//! search with the per-bucket comparison cap, and [`adaptive`] implements
//! the paper's Equations 3 and 4 for scaling the similarity threshold and
//! band count with program size.

pub mod adaptive;
pub mod backend;
pub mod encode;
pub mod fnv;
pub mod lsh;
pub mod minhash;
pub mod opcode_freq;
pub mod pager;
pub mod par;
pub mod resident;
pub mod sharded;
pub mod snapshot;
pub mod store;

pub use adaptive::MergeParams;
pub use backend::{backend_for, signature_similarity, BackendKind, FingerprintBackend};
pub use lsh::{probe_keys_for, BandKey, LshIndex, LshParams, QueryScratch};
pub use pager::{new_pager, Pager, PagerKind};
pub use resident::{ResidencyCounters, ResidentStore, RowRef};
pub use sharded::{ShardStats, ShardedLshIndex};
pub use minhash::MinHashFingerprint;
pub use opcode_freq::OpcodeFingerprint;
pub use snapshot::{SnapshotError, SnapshotFile, SnapshotHeader, SnapshotLayout, SnapshotMeta};
pub use store::PackedFingerprintStore;
