//! Pluggable fingerprint backends.
//!
//! The paper's candidate search is MinHash + banded LSH, but the LSH
//! machinery itself is family-agnostic: anything that maps a function to a
//! fixed-width signature whose *slot-equality fraction* approximates a
//! similarity measure can reuse the banding, bucketing, sharding and
//! snapshot layers unchanged. This module is that seam.
//!
//! Every backend emits a `k`-slot `u64` signature:
//!
//! - [`BackendKind::MinHash`] — the default. Slot `i` is the minimum of
//!   the `i`-th derived hash over all instruction shingles
//!   ([`MinHashFingerprint`]); slot equality estimates the Jaccard index.
//! - [`BackendKind::SimHash`] — random-hyperplane projection of the
//!   opcode-frequency vector. Each slot packs 8 projection sign bits, so
//!   slot equality is byte-granular Hamming similarity of the 8·k-bit
//!   SimHash, and an `r = 2` band carries 16 bits of entropy (a one-bit
//!   slot would collapse every band bucket to ≤ 4 distinct keys).
//! - [`BackendKind::Tlsh`] — a TLSH-style locality hash: shingle hashes
//!   are scattered into `4k` counting buckets, the count distribution's
//!   quartiles turn each bucket into a 2-bit code, and each slot packs 4
//!   codes. Quartile coding makes the digest depend on the *shape* of the
//!   body distribution rather than raw counts, so it tolerates function
//!   length differences better than raw frequency vectors.
//! - [`BackendKind::Embed`] — a KEENHash-style function-aware embedding:
//!   a namespaced feature vector (opcode unigrams, opcode bigrams,
//!   instruction shape, length bucket) is projected through the SimHash
//!   hyperplane machinery into uniform slots, 8 sign bits per slot.
//!   Bigrams see instruction *order* and shape features see structure,
//!   which plain opcode histograms are blind to.
//!
//! Uniform signatures mean uniform plumbing: band keys always come from
//! [`band_keys_for`](crate::lsh::band_keys_for), similarity from
//! [`signature_similarity`], and storage from
//! [`PackedFingerprintStore`](crate::store::PackedFingerprintStore) —
//! per backend, only the signature function differs.

use crate::fnv::{fnv1a_u64s, xor_constants};
use crate::minhash::{shingle_hashes, MinHashFingerprint};

/// Selector for a fingerprint family, as chosen by `--backend`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// MinHash over instruction shingles (the paper's family).
    #[default]
    MinHash,
    /// SimHash over opcode frequencies, 8 projection bits per slot.
    SimHash,
    /// TLSH-style quartile-coded bucket counts, 4 codes per slot.
    Tlsh,
    /// Function-aware feature embedding (unigrams/bigrams/shape/length)
    /// with SimHash projection, 8 sign bits per slot.
    Embed,
}

impl BackendKind {
    /// All backends, in CLI/bench presentation order.
    pub const ALL: [BackendKind; 4] =
        [BackendKind::MinHash, BackendKind::SimHash, BackendKind::Tlsh, BackendKind::Embed];

    /// The CLI name (`--backend <name>`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::MinHash => "minhash",
            BackendKind::SimHash => "simhash",
            BackendKind::Tlsh => "tlsh",
            BackendKind::Embed => "embed",
        }
    }

    /// Parses a CLI name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// A stable one-byte tag for the snapshot header.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::MinHash => 0,
            BackendKind::SimHash => 1,
            BackendKind::Tlsh => 2,
            BackendKind::Embed => 3,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// A fingerprint family: encoded instruction stream → `k`-slot signature.
///
/// Implementations are stateless apart from derived constants, so one
/// boxed backend is shared across worker threads during a parallel bulk
/// build (`Send + Sync`).
pub trait FingerprintBackend: Send + Sync {
    /// Which family this is.
    fn kind(&self) -> BackendKind;

    /// Signature width `k` (slots). Always equals the `k` the backend was
    /// built with, so signatures band under `LshParams` of the same `k`.
    fn k(&self) -> usize;

    /// The `k`-slot signature of an encoded instruction stream.
    fn signature(&self, encoded: &[u32]) -> Vec<u64>;
}

/// Constructs the backend for `kind` with signature width `k`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn backend_for(kind: BackendKind, k: usize) -> Box<dyn FingerprintBackend> {
    assert!(k > 0, "signature width must be positive");
    match kind {
        BackendKind::MinHash => Box::new(MinHashBackend::new(k)),
        BackendKind::SimHash => Box::new(SimHashBackend::new(k)),
        BackendKind::Tlsh => Box::new(TlshBackend::new(k)),
        BackendKind::Embed => Box::new(EmbedBackend::new(k)),
    }
}

/// Similarity of two equal-width signatures: the fraction of equal slots.
/// For MinHash this is exactly [`MinHashFingerprint::similarity`]; for the
/// packed backends it is a byte-granular Hamming similarity.
///
/// # Panics
///
/// Panics if the signatures have different sizes.
pub fn signature_similarity(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "fingerprint size mismatch");
    let equal = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    equal as f64 / a.len() as f64
}

/// The default backend: MinHash with shared xor constants (derived once,
/// reused by every signature).
pub struct MinHashBackend {
    consts: Vec<u64>,
}

impl MinHashBackend {
    pub fn new(k: usize) -> MinHashBackend {
        MinHashBackend { consts: xor_constants(k) }
    }
}

impl FingerprintBackend for MinHashBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MinHash
    }

    fn k(&self) -> usize {
        self.consts.len()
    }

    fn signature(&self, encoded: &[u32]) -> Vec<u64> {
        MinHashFingerprint::of_encoded_with(&self.consts, encoded).into_hashes()
    }
}

/// SimHash mixing: one 64-bit chunk of a feature's pseudo-random
/// projection row, derived deterministically from (feature, chunk).
fn projection_bits(feature: u64, chunk: u64) -> u64 {
    // SplitMix64-style finalizer over an FNV combination: cheap, stateless,
    // and uncorrelated across chunks.
    let mut z = fnv1a_u64s(&[feature, chunk]);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SimHash over the opcode-frequency vector. The feature set is the
/// distinct opcodes of the stream (the high byte of each [encoded
/// word](crate::encode)), weighted by occurrence count; the projection has
/// `8k` sign bits, packed 8 per slot.
pub struct SimHashBackend {
    k: usize,
}

/// Projection sign bits per SimHash signature slot.
pub const SIMHASH_BITS_PER_SLOT: usize = 8;

impl SimHashBackend {
    pub fn new(k: usize) -> SimHashBackend {
        SimHashBackend { k }
    }
}

impl FingerprintBackend for SimHashBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimHash
    }

    fn k(&self) -> usize {
        self.k
    }

    fn signature(&self, encoded: &[u32]) -> Vec<u64> {
        let bits = self.k * SIMHASH_BITS_PER_SLOT;
        // Opcode histogram: feature = high byte of the encoded word.
        let mut counts = [0i64; 256];
        for &w in encoded {
            counts[(w >> 24) as usize] += 1;
        }
        // Signed accumulation: each present opcode pushes every projection
        // bit up or down by its count.
        let mut acc = vec![0i64; bits];
        for (op, &w) in counts.iter().enumerate() {
            if w == 0 {
                continue;
            }
            for chunk in 0..bits.div_ceil(64) {
                let row = projection_bits(op as u64, chunk as u64);
                let lo = chunk * 64;
                for (i, a) in acc[lo..(lo + 64).min(bits)].iter_mut().enumerate() {
                    if row >> i & 1 == 1 {
                        *a += w;
                    } else {
                        *a -= w;
                    }
                }
            }
        }
        // Pack sign bits, 8 per slot.
        (0..self.k)
            .map(|s| {
                let mut slot = 0u64;
                for b in 0..SIMHASH_BITS_PER_SLOT {
                    if acc[s * SIMHASH_BITS_PER_SLOT + b] >= 0 {
                        slot |= 1 << b;
                    }
                }
                slot
            })
            .collect()
    }
}

/// TLSH-style locality hash: shingle hashes scatter into `4k` counting
/// buckets; quartiles of the non-trivial count distribution code each
/// bucket in 2 bits; 4 codes pack into each signature slot.
pub struct TlshBackend {
    k: usize,
}

/// Quartile codes per TLSH signature slot.
pub const TLSH_CODES_PER_SLOT: usize = 4;

impl TlshBackend {
    pub fn new(k: usize) -> TlshBackend {
        TlshBackend { k }
    }
}

impl FingerprintBackend for TlshBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Tlsh
    }

    fn k(&self) -> usize {
        self.k
    }

    fn signature(&self, encoded: &[u32]) -> Vec<u64> {
        let nbuckets = self.k * TLSH_CODES_PER_SLOT;
        let mut counts = vec![0u32; nbuckets];
        for h in shingle_hashes(encoded) {
            counts[(h % nbuckets as u64) as usize] += 1;
        }
        // Quartiles of the count distribution (zeros included: sparse
        // functions legitimately leave most buckets empty, and the
        // quartile cut then separates occupied from empty buckets).
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let q1 = sorted[nbuckets / 4];
        let q2 = sorted[nbuckets / 2];
        let q3 = sorted[3 * nbuckets / 4];
        (0..self.k)
            .map(|s| {
                let mut slot = 0u64;
                for c in 0..TLSH_CODES_PER_SLOT {
                    let count = counts[s * TLSH_CODES_PER_SLOT + c];
                    let code: u64 = if count <= q1 {
                        0
                    } else if count <= q2 {
                        1
                    } else if count <= q3 {
                        2
                    } else {
                        3
                    };
                    slot |= code << (2 * c);
                }
                slot
            })
            .collect()
    }
}

/// KEENHash-style function embedding. The function is summarized as a
/// sparse feature vector in four namespaces over the [encoded
/// word](crate::encode) (opcode 31–24, operand count 23–20, result type
/// 19–14):
///
/// - `0x01`: opcode unigrams, weighted by occurrence count;
/// - `0x02`: consecutive-opcode bigrams — a cheap stand-in for local
///   control/data-flow structure that frequency vectors cannot see;
/// - `0x03`: instruction shape `(operand count, result type)`;
/// - `0x04`: one log2 length-bucket feature, so very different-sized
///   functions separate even when their opcode mix agrees.
///
/// The vector is then projected exactly like SimHash
/// ([`projection_bits`]), packing [`SIMHASH_BITS_PER_SLOT`] sign bits
/// per slot — so banding, similarity, storage and multi-probe key
/// perturbation all work unchanged. Accumulation over a hash map is
/// order-independent because signed addition commutes.
pub struct EmbedBackend {
    k: usize,
}

/// Weight of the singleton length-bucket feature: strong enough to
/// separate size classes, weak enough not to drown the content features
/// of small functions.
const EMBED_LEN_WEIGHT: i64 = 4;

impl EmbedBackend {
    pub fn new(k: usize) -> EmbedBackend {
        EmbedBackend { k }
    }
}

impl FingerprintBackend for EmbedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Embed
    }

    fn k(&self) -> usize {
        self.k
    }

    fn signature(&self, encoded: &[u32]) -> Vec<u64> {
        let bits = self.k * SIMHASH_BITS_PER_SLOT;
        let mut features: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        let mut prev_op: Option<u64> = None;
        for &w in encoded {
            let op = (w >> 24) as u64;
            let nops = ((w >> 20) & 0xF) as u64;
            let rty = ((w >> 14) & 0x3F) as u64;
            *features.entry(0x01 << 56 | op).or_insert(0) += 1;
            if let Some(p) = prev_op {
                *features.entry(0x02 << 56 | p << 8 | op).or_insert(0) += 1;
            }
            prev_op = Some(op);
            *features.entry(0x03 << 56 | nops << 6 | rty).or_insert(0) += 1;
        }
        let len_bucket = (usize::BITS - encoded.len().leading_zeros()) as u64;
        *features.entry(0x04 << 56 | len_bucket).or_insert(0) += EMBED_LEN_WEIGHT;

        let mut acc = vec![0i64; bits];
        for (&feat, &w) in &features {
            for chunk in 0..bits.div_ceil(64) {
                let row = projection_bits(feat, chunk as u64);
                let lo = chunk * 64;
                for (i, a) in acc[lo..(lo + 64).min(bits)].iter_mut().enumerate() {
                    if row >> i & 1 == 1 {
                        *a += w;
                    } else {
                        *a -= w;
                    }
                }
            }
        }
        (0..self.k)
            .map(|s| {
                let mut slot = 0u64;
                for b in 0..SIMHASH_BITS_PER_SLOT {
                    if acc[s * SIMHASH_BITS_PER_SLOT + b] >= 0 {
                        slot |= 1 << b;
                    }
                }
                slot
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::{band_keys_for, LshParams};

    fn stream(n: u32, salt: u32) -> Vec<u32> {
        // Plausible encoded words: opcode in the high byte, operands below.
        (0..n).map(|i| ((i % 23 + salt % 5) << 24) | (i.wrapping_mul(2654435761) & 0xFF_FFFF)).collect()
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::from_tag(200), None);
        assert_eq!(BackendKind::default(), BackendKind::MinHash);
    }

    #[test]
    fn minhash_backend_matches_legacy_fingerprint() {
        let s = stream(64, 1);
        let backend = backend_for(BackendKind::MinHash, 32);
        let legacy = MinHashFingerprint::of_encoded(&s, 32);
        assert_eq!(backend.signature(&s), legacy.hashes());
        // Shared similarity path is bit-identical to the legacy one.
        let t = stream(64, 2);
        let other = MinHashFingerprint::of_encoded(&t, 32);
        assert_eq!(
            signature_similarity(&backend.signature(&s), &backend.signature(&t)),
            legacy.similarity(&other)
        );
    }

    #[test]
    fn all_backends_emit_k_slots_and_are_deterministic() {
        let s = stream(80, 3);
        for kind in BackendKind::ALL {
            let backend = backend_for(kind, 40);
            assert_eq!(backend.kind(), kind);
            assert_eq!(backend.k(), 40);
            let a = backend.signature(&s);
            assert_eq!(a.len(), 40, "{}", kind.name());
            assert_eq!(a, backend.signature(&s), "{} deterministic", kind.name());
        }
    }

    #[test]
    fn identical_streams_have_similarity_one_under_every_backend() {
        let s = stream(60, 7);
        for kind in BackendKind::ALL {
            let backend = backend_for(kind, 32);
            let sim = signature_similarity(&backend.signature(&s), &backend.signature(&s));
            assert_eq!(sim, 1.0, "{}", kind.name());
        }
    }

    #[test]
    fn small_edits_keep_high_similarity() {
        let a = stream(120, 1);
        let mut b = a.clone();
        b[60] ^= 0x0000_00FF; // operand tweak, same opcode
        for kind in BackendKind::ALL {
            let backend = backend_for(kind, 64);
            let sim = signature_similarity(&backend.signature(&a), &backend.signature(&b));
            assert!(sim > 0.6, "{}: one-word edit dropped similarity to {sim}", kind.name());
        }
    }

    #[test]
    fn unrelated_streams_separate_from_near_duplicates() {
        // Each backend must rank a near-duplicate above an unrelated
        // function — the property candidate search depends on.
        let a = stream(150, 1);
        let mut near = a.clone();
        near[10] ^= 0xFF; // operand tweak
        near.truncate(145);
        let far: Vec<u32> = (0..150u32)
            .map(|i| ((200 - i % 30) << 24) | (i.wrapping_mul(40503) & 0xFF_FFFF))
            .collect();
        for kind in BackendKind::ALL {
            let backend = backend_for(kind, 64);
            let sa = backend.signature(&a);
            let sim_near = signature_similarity(&sa, &backend.signature(&near));
            let sim_far = signature_similarity(&sa, &backend.signature(&far));
            assert!(
                sim_near > sim_far,
                "{}: near {sim_near} !> far {sim_far}",
                kind.name()
            );
        }
    }

    #[test]
    fn packed_slots_give_bands_entropy() {
        // A band of two packed slots must produce many distinct keys over
        // a varied corpus — the reason SimHash packs 8 bits per slot
        // instead of one sign bit per slot.
        let p = LshParams { rows: 2, bands: 16, bucket_cap: 100 };
        for kind in [BackendKind::SimHash, BackendKind::Tlsh, BackendKind::Embed] {
            let backend = backend_for(kind, 32);
            let mut keys = std::collections::HashSet::new();
            for f in 0..40u32 {
                let sig = backend.signature(&stream(60 + f, f));
                keys.extend(band_keys_for(p, &sig));
            }
            assert!(
                keys.len() > 100,
                "{}: only {} distinct band keys over 40 functions",
                kind.name(),
                keys.len()
            );
        }
    }

    #[test]
    fn embed_sees_instruction_order() {
        // Same multiset of instructions, different order: the opcode
        // histogram backends cannot tell these apart, the bigram
        // features can.
        let a = stream(100, 1);
        let mut b = a.clone();
        b.reverse();
        let embed = backend_for(BackendKind::Embed, 64);
        let sim = signature_similarity(&embed.signature(&a), &embed.signature(&b));
        assert!(sim < 1.0, "reversal must perturb the embedding (got {sim})");
        let simhash = backend_for(BackendKind::SimHash, 64);
        assert_eq!(
            signature_similarity(&simhash.signature(&a), &simhash.signature(&b)),
            1.0,
            "frequency-only backend is order-blind by construction"
        );
    }

    #[test]
    fn empty_streams_are_fingerprintable() {
        for kind in BackendKind::ALL {
            let backend = backend_for(kind, 16);
            let sig = backend.signature(&[]);
            assert_eq!(sig.len(), 16);
            assert_eq!(signature_similarity(&sig, &backend.signature(&[])), 1.0);
        }
    }
}
