//! Deterministic data parallelism on scoped threads.
//!
//! The preprocess stage (instruction encoding, fingerprint construction,
//! reference-index scanning) is embarrassingly parallel: every function is
//! independent. [`par_map_indexed`] splits the index range into one
//! contiguous chunk per worker and concatenates the per-chunk results *in
//! chunk order*, so the output is byte-for-byte identical to the
//! sequential map regardless of the worker count — parallelism changes
//! wall-clock time only, never results.

/// Maps `f` over `0..n`, using up to `jobs` scoped worker threads.
///
/// `jobs <= 1` (and tiny inputs) run inline with no thread setup at all,
/// which keeps the default configuration free of any scheduler influence.
/// The result is always `[f(0), f(1), ..., f(n-1)]` in order.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed<R, F>(n: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(n, jobs, || (), |(), i| f(i))
}

/// [`par_map_indexed`] with per-worker mutable state: `init` runs once on
/// each worker thread and the resulting state is threaded through every
/// call that worker makes. The state is scratch only — it must not
/// influence results, or the job-count independence contract breaks.
/// Used to give each alignment worker a reusable DP buffer without any
/// cross-thread synchronization.
///
/// # Panics
///
/// Propagates a panic from any invocation of `init` or `f`.
pub fn par_map_indexed_with<R, S, F, G>(n: usize, jobs: usize, init: G, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
    G: Fn() -> S + Sync,
{
    let workers = jobs.clamp(1, n.max(1));
    if workers <= 1 || n < 2 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let f = &f;
                let init = &init;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel map worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_any_job_count() {
        let expect: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [0, 1, 2, 3, 7, 16, 200] {
            let got = par_map_indexed(97, jobs, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i * 2), vec![0]);
    }

    #[test]
    fn uneven_chunks_cover_every_index() {
        // 10 items over 4 workers: chunks of 3,3,3,1.
        let got = par_map_indexed(10, 4, |i| i);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn with_state_matches_sequential_and_reuses_per_worker_state() {
        let expect: Vec<usize> = (0..53).map(|i| i * 3).collect();
        for jobs in [1, 2, 5, 64] {
            // The state is a scratch Vec; results must not depend on it.
            let got = par_map_indexed_with(
                53,
                jobs,
                Vec::<usize>::new,
                |scratch, i| {
                    scratch.push(i); // grows within a worker, never shared
                    i * 3
                },
            );
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_indexed(8, 4, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
