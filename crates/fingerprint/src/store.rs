//! Packed struct-of-arrays fingerprint storage.
//!
//! The pass and the resident corpus used to keep one `Vec<u64>` signature
//! plus one `Vec<u64>` key list *per function* — two heap allocations and
//! two pointer chases per entry, scattered across the heap. At a million
//! functions that is millions of small allocations and a cache miss per
//! probe. This store packs everything into two contiguous pools indexed
//! by function id:
//!
//! ```text
//! sigs: [ fn0 slot0..k | fn1 slot0..k | ... ]   n × k  u64 words
//! keys: [ fn0 band0..b | fn1 band0..b | ... ]   n × b  u32 band keys
//! ```
//!
//! Index build walks `keys` linearly; a probe reads one `k`-slot row and
//! one `b`-key row, both contiguous. The layout is also exactly what the
//! [snapshot](crate::snapshot) writes — serialization is two bulk copies,
//! and loading reconstitutes the store without touching individual
//! entries.

use crate::lsh::{band_keys_for, BandKey, LshParams};

/// Contiguous signature + band-key pools, indexed by function id.
///
/// Rows are append-only: id `i` is the `i`-th pushed function. Callers
/// that interleave ids with other tables (e.g. the corpus) own the id
/// mapping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedFingerprintStore {
    k: usize,
    bands: usize,
    sigs: Vec<u64>,
    keys: Vec<BandKey>,
}

impl PackedFingerprintStore {
    /// An empty store for signatures of width `k` banded into `bands`
    /// keys, with room for `capacity` functions.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `bands` is zero.
    pub fn with_capacity(k: usize, bands: usize, capacity: usize) -> PackedFingerprintStore {
        assert!(k > 0 && bands > 0, "degenerate row widths");
        PackedFingerprintStore {
            k,
            bands,
            sigs: Vec::with_capacity(capacity * k),
            keys: Vec::with_capacity(capacity * bands),
        }
    }

    /// Appends a function's signature, computing its band keys under
    /// `params`, and returns its row id.
    ///
    /// # Panics
    ///
    /// Panics if the signature width or `params.bands` does not match the
    /// store's row widths.
    pub fn push(&mut self, params: LshParams, sig: &[u64]) -> usize {
        let keys = band_keys_for(params, sig);
        self.push_with_keys(sig, &keys)
    }

    /// Appends a pre-computed row (signature + band keys), as produced on
    /// a worker thread or decoded from a snapshot. Returns the row id.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn push_with_keys(&mut self, sig: &[u64], keys: &[BandKey]) -> usize {
        assert_eq!(sig.len(), self.k, "signature width mismatch");
        assert_eq!(keys.len(), self.bands, "band count mismatch");
        self.sigs.extend_from_slice(sig);
        self.keys.extend_from_slice(keys);
        self.len() - 1
    }

    /// Number of functions stored.
    pub fn len(&self) -> usize {
        self.keys.len() / self.bands
    }

    /// Whether the store holds no functions.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Signature width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Band keys per function.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Function `i`'s signature slots.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sig(&self, i: usize) -> &[u64] {
        &self.sigs[i * self.k..(i + 1) * self.k]
    }

    /// Function `i`'s band keys.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn keys(&self, i: usize) -> &[BandKey] {
        &self.keys[i * self.bands..(i + 1) * self.bands]
    }

    /// The whole signature pool (snapshot serialization order).
    pub fn sig_pool(&self) -> &[u64] {
        &self.sigs
    }

    /// The whole band-key pool (snapshot serialization order).
    pub fn key_pool(&self) -> &[BandKey] {
        &self.keys
    }

    /// Reconstructs a store directly from its pools (the snapshot load
    /// path). Returns `None` if the pool lengths are inconsistent with
    /// the row widths.
    pub fn from_pools(
        k: usize,
        bands: usize,
        sigs: Vec<u64>,
        keys: Vec<BandKey>,
    ) -> Option<PackedFingerprintStore> {
        if k == 0 || bands == 0 || !sigs.len().is_multiple_of(k) || !keys.len().is_multiple_of(bands)
        {
            return None;
        }
        if sigs.len() / k != keys.len() / bands {
            return None;
        }
        Some(PackedFingerprintStore { k, bands, sigs, keys })
    }

    /// Fixed per-function footprint of the packed layout in bytes:
    /// `8k + 4b`, independent of corpus size (no per-entry headers).
    pub fn bytes_per_fn(&self) -> usize {
        self.k * std::mem::size_of::<u64>() + self.bands * std::mem::size_of::<BandKey>()
    }

    /// Total pool footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        std::mem::size_of_val(self.sigs.as_slice()) + std::mem::size_of_val(self.keys.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHashFingerprint;

    fn params() -> LshParams {
        LshParams { rows: 2, bands: 16, bucket_cap: 100 }
    }

    fn sig(seed: u32) -> Vec<u64> {
        let stream: Vec<u32> = (seed..seed + 30).collect();
        MinHashFingerprint::of_encoded(&stream, 32).into_hashes()
    }

    #[test]
    fn rows_round_trip_per_function_data() {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, 8);
        let sigs: Vec<Vec<u64>> = (0..8).map(sig).collect();
        for (i, s) in sigs.iter().enumerate() {
            assert_eq!(store.push(p, s), i);
        }
        assert_eq!(store.len(), 8);
        for (i, s) in sigs.iter().enumerate() {
            assert_eq!(store.sig(i), s.as_slice(), "signature row {i}");
            assert_eq!(store.keys(i), band_keys_for(p, s).as_slice(), "key row {i}");
        }
    }

    #[test]
    fn pool_reconstruction_is_lossless() {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, 4);
        for i in 0..4 {
            store.push(p, &sig(i));
        }
        let rebuilt = PackedFingerprintStore::from_pools(
            store.k(),
            store.bands(),
            store.sig_pool().to_vec(),
            store.key_pool().to_vec(),
        )
        .expect("consistent pools");
        assert_eq!(rebuilt, store);
    }

    #[test]
    fn from_pools_rejects_inconsistent_lengths() {
        assert!(PackedFingerprintStore::from_pools(4, 2, vec![0; 7], vec![0; 4]).is_none());
        assert!(PackedFingerprintStore::from_pools(4, 2, vec![0; 8], vec![0; 3]).is_none());
        // Row counts must agree between the two pools.
        assert!(PackedFingerprintStore::from_pools(4, 2, vec![0; 8], vec![0; 6]).is_none());
        assert!(PackedFingerprintStore::from_pools(0, 2, vec![], vec![]).is_none());
    }

    #[test]
    fn footprint_is_exact_and_size_independent() {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, 2);
        assert_eq!(store.bytes_per_fn(), 32 * 8 + 16 * 4);
        store.push(p, &sig(0));
        let one = store.total_bytes();
        store.push(p, &sig(1));
        assert_eq!(store.total_bytes(), 2 * one, "no per-entry overhead");
        assert_eq!(one, store.bytes_per_fn());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_signature_width_panics() {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(16, p.bands, 1);
        store.push_with_keys(&sig(0), &[0; 16]); // sig has 32 slots
    }
}
