//! Versioned on-disk index snapshots.
//!
//! A resident daemon that dies loses nothing but time — yet at a million
//! functions, "time" is minutes of re-fingerprinting and re-bucketing.
//! The snapshot captures the whole candidate-search state in one
//! contiguous, mmap-friendly file, so a restart is a bulk load instead of
//! a rebuild.
//!
//! ## Wire layout (all integers little-endian)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic        "F3MSNAP1"                              8 bytes │
//! │ version      u32 (= 1)                                       │
//! │ backend      u8 tag (BackendKind::tag)                       │
//! │ k            u32   signature slots per function              │
//! │ rows         u32   LSH rows per band                         │
//! │ bands        u32   LSH bands (= band keys per function)      │
//! │ bucket_cap   u64   (usize::MAX stored as u64::MAX)           │
//! │ threshold    f64   (IEEE-754 bits)                           │
//! │ shards       u32   shard count at save time                  │
//! │ epoch        u64   index epoch at save time                  │
//! │ entries      u64   n = number of function rows               │
//! │ payload_len  u64   opaque caller section length              │
//! ├──────────────────────────────────────────────────────────────┤
//! │ sig pool     n × k u64        (SoA, row-major by fn id)      │
//! │ key pool     n × bands u32    (SoA, row-major by fn id)      │
//! ├──────────────────────────────────────────────────────────────┤
//! │ bucket directory:  num_buckets u64, then per bucket          │
//! │   key u32 · len u32 · members len × u32   (keys ascending,   │
//! │   members ascending fn ids)                                  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload      payload_len bytes (opaque to this layer; the    │
//! │   corpus stores module sources + per-entry metadata here)    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ checksum     u64 FNV-1a over every preceding byte            │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The pools are verbatim copies of a
//! [`PackedFingerprintStore`](crate::store::PackedFingerprintStore)'s
//! arrays, so saving is two bulk writes and loading reconstitutes the
//! store without per-entry work. The bucket directory spans *all* shards
//! (keys are globally unique across shards); the loader re-routes each
//! bucket to its owning shard, so reader and writer may use different
//! shard counts.
//!
//! Every decode failure is a typed [`SnapshotError`] — a truncated or
//! garbled file must degrade to a rebuild, never a panic.

use std::fmt;
use std::path::Path;

use crate::backend::BackendKind;
use crate::fnv::fnv1a;
use crate::lsh::{BandKey, LshParams};
use crate::store::PackedFingerprintStore;

/// File magic: "F3MSNAP1".
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"F3MSNAP1";
/// Current format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The file ends before the structure it promises.
    Truncated,
    /// The trailing FNV-1a checksum does not match the contents.
    ChecksumMismatch,
    /// Structurally invalid contents (the message names the field).
    Corrupt(&'static str),
    /// The snapshot is internally valid but incompatible with the
    /// configuration trying to load it (e.g. different merge params).
    Mismatch(String),
    /// The snapshot's epoch predates state it claims to contain — the
    /// caller should fall back to a rebuild.
    StaleEpoch {
        /// Epoch recorded in the snapshot header.
        snapshot: u64,
        /// Newest epoch stamp found in the snapshot's own entries.
        newest_entry: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an F3M snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Mismatch(what) => write!(f, "snapshot incompatible: {what}"),
            SnapshotError::StaleEpoch { snapshot, newest_entry } => write!(
                f,
                "snapshot stale: header epoch {snapshot} < newest entry epoch {newest_entry}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// The fixed-size head of a snapshot: everything needed to decide
/// compatibility before touching the pools.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotHeader {
    /// Fingerprint family the signatures were produced by.
    pub backend: BackendKind,
    /// Signature slots per function.
    pub k: usize,
    /// Banding parameters.
    pub lsh: LshParams,
    /// Similarity threshold the index was built for.
    pub threshold: f64,
    /// Shard count at save time (informational; loaders may re-shard).
    pub shards: usize,
    /// Index epoch at save time.
    pub epoch: u64,
    /// Number of function rows.
    pub entries: usize,
}

/// A fully decoded snapshot.
#[derive(Debug)]
pub struct SnapshotFile {
    pub header: SnapshotHeader,
    /// The packed signature + band-key pools.
    pub store: PackedFingerprintStore,
    /// Bucket directory across all shards: `(key, ascending fn ids)`,
    /// ascending by key.
    pub buckets: Vec<(BandKey, Vec<u32>)>,
    /// The caller's opaque section (corpus metadata).
    pub payload: Vec<u8>,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serializes a snapshot to bytes (header, pools, directory, payload,
/// checksum).
///
/// # Panics
///
/// Panics if the store's row widths disagree with the header, or if a
/// bucket member id does not fit the entry count — these are programming
/// errors on the save path, not recoverable conditions.
pub fn encode_snapshot(
    header: &SnapshotHeader,
    store: &PackedFingerprintStore,
    buckets: &[(BandKey, Vec<u32>)],
    payload: &[u8],
) -> Vec<u8> {
    assert_eq!(store.k(), header.k, "store width disagrees with header");
    assert_eq!(store.bands(), header.lsh.bands, "store bands disagree with header");
    assert_eq!(store.len(), header.entries, "store rows disagree with header");
    let mut w = Writer { buf: Vec::with_capacity(64 + store.total_bytes() + payload.len()) };
    w.buf.extend_from_slice(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u8(header.backend.tag());
    w.u32(header.k as u32);
    w.u32(header.lsh.rows as u32);
    w.u32(header.lsh.bands as u32);
    w.u64(header.lsh.bucket_cap as u64);
    w.u64(header.threshold.to_bits());
    w.u32(header.shards as u32);
    w.u64(header.epoch);
    w.u64(header.entries as u64);
    w.u64(payload.len() as u64);
    for &s in store.sig_pool() {
        w.u64(s);
    }
    for &k in store.key_pool() {
        w.u32(k);
    }
    w.u64(buckets.len() as u64);
    for (key, members) in buckets {
        w.u32(*key);
        w.u32(members.len() as u32);
        for &m in members {
            w.u32(m);
        }
    }
    w.buf.extend_from_slice(payload);
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.buf
}

/// Decodes and validates snapshot bytes. Inverse of [`encode_snapshot`];
/// every malformation maps to a typed [`SnapshotError`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotFile, SnapshotError> {
    // Checksum first: it covers everything, so any later structural check
    // only fires on files that were *written* malformed.
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if !body.starts_with(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut r = Reader { buf: body, pos: SNAPSHOT_MAGIC.len() };
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let backend =
        BackendKind::from_tag(r.u8()?).ok_or(SnapshotError::Corrupt("unknown backend tag"))?;
    let k = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let bands = r.u32()? as usize;
    let bucket_cap = usize::try_from(r.u64()?).unwrap_or(usize::MAX);
    let threshold = f64::from_bits(r.u64()?);
    let shards = r.u32()? as usize;
    let epoch = r.u64()?;
    let entries = usize::try_from(r.u64()?).map_err(|_| SnapshotError::Corrupt("entry count"))?;
    let payload_len =
        usize::try_from(r.u64()?).map_err(|_| SnapshotError::Corrupt("payload length"))?;
    if k == 0 || rows == 0 || bands == 0 {
        return Err(SnapshotError::Corrupt("zero row width"));
    }
    if k < rows * bands {
        return Err(SnapshotError::Corrupt("k smaller than rows × bands"));
    }
    if shards == 0 {
        return Err(SnapshotError::Corrupt("zero shards"));
    }
    if !threshold.is_finite() {
        return Err(SnapshotError::Corrupt("non-finite threshold"));
    }

    let n_sig = entries.checked_mul(k).ok_or(SnapshotError::Corrupt("sig pool size"))?;
    let n_key = entries.checked_mul(bands).ok_or(SnapshotError::Corrupt("key pool size"))?;
    let sigs: Vec<u64> = r
        .take(n_sig.checked_mul(8).ok_or(SnapshotError::Corrupt("sig pool size"))?)?
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let keys: Vec<BandKey> = r
        .take(n_key.checked_mul(4).ok_or(SnapshotError::Corrupt("key pool size"))?)?
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let store = PackedFingerprintStore::from_pools(k, bands, sigs, keys)
        .ok_or(SnapshotError::Corrupt("inconsistent pools"))?;

    let num_buckets =
        usize::try_from(r.u64()?).map_err(|_| SnapshotError::Corrupt("bucket count"))?;
    let mut buckets: Vec<(BandKey, Vec<u32>)> = Vec::with_capacity(num_buckets.min(1 << 20));
    let mut last_key: Option<BandKey> = None;
    for _ in 0..num_buckets {
        let key = r.u32()?;
        if let Some(prev) = last_key {
            if key <= prev {
                return Err(SnapshotError::Corrupt("bucket keys not ascending"));
            }
        }
        last_key = Some(key);
        let len = r.u32()? as usize;
        if len == 0 {
            return Err(SnapshotError::Corrupt("empty bucket"));
        }
        let members: Vec<u32> = r
            .take(len.checked_mul(4).ok_or(SnapshotError::Corrupt("bucket size"))?)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt("bucket members not ascending"));
        }
        if members.iter().any(|&m| m as usize >= entries) {
            return Err(SnapshotError::Corrupt("bucket member out of range"));
        }
        buckets.push((key, members));
    }

    let payload = r.take(payload_len)?.to_vec();
    if r.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }

    Ok(SnapshotFile {
        header: SnapshotHeader {
            backend,
            k,
            lsh: LshParams { rows, bands, bucket_cap },
            threshold,
            shards,
            epoch,
            entries,
        },
        store,
        buckets,
        payload,
    })
}

/// Writes a snapshot file atomically (temp file + rename), so a crash
/// mid-save never leaves a half-written snapshot where a loader expects a
/// valid one.
pub fn save_snapshot(
    path: &Path,
    header: &SnapshotHeader,
    store: &PackedFingerprintStore,
    buckets: &[(BandKey, Vec<u32>)],
    payload: &[u8],
) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(header, store, buckets, payload);
    let tmp = path.with_extension("tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a snapshot file — the whole file in one bulk read
/// (the layout is contiguous precisely so this is a single sequential
/// I/O), then a zero-rebuild decode.
pub fn open_snapshot(path: &Path) -> Result<SnapshotFile, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::{band_keys_for, LshIndex};
    use crate::minhash::MinHashFingerprint;

    fn params() -> LshParams {
        LshParams { rows: 2, bands: 16, bucket_cap: 100 }
    }

    fn build_fixture(n: u32) -> (SnapshotHeader, PackedFingerprintStore, Vec<(BandKey, Vec<u32>)>) {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, n as usize);
        let mut index: LshIndex<u32> = LshIndex::new(p);
        for i in 0..n {
            let stream: Vec<u32> = (i % 5..i % 5 + 30).collect();
            let sig = MinHashFingerprint::of_encoded(&stream, 32).into_hashes();
            let keys = band_keys_for(p, &sig);
            store.push_with_keys(&sig, &keys);
            index.insert_with_keys(i, &keys);
        }
        let header = SnapshotHeader {
            backend: BackendKind::MinHash,
            k: 32,
            lsh: p,
            threshold: 0.25,
            shards: 4,
            epoch: 9,
            entries: n as usize,
        };
        (header, store, index.export_buckets())
    }

    #[test]
    fn encode_decode_is_a_fixpoint() {
        let (header, store, buckets) = build_fixture(12);
        let payload = b"opaque corpus bytes".to_vec();
        let bytes = encode_snapshot(&header, &store, &buckets, &payload);
        let snap = decode_snapshot(&bytes).expect("valid snapshot decodes");
        assert_eq!(snap.header, header);
        assert_eq!(snap.store, store);
        assert_eq!(snap.buckets, buckets);
        assert_eq!(snap.payload, payload);
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(
            encode_snapshot(&snap.header, &snap.store, &snap.buckets, &snap.payload),
            bytes
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let p = params();
        let header = SnapshotHeader {
            backend: BackendKind::Tlsh,
            k: 32,
            lsh: p,
            threshold: 0.0,
            shards: 1,
            epoch: 0,
            entries: 0,
        };
        let store = PackedFingerprintStore::with_capacity(32, p.bands, 0);
        let bytes = encode_snapshot(&header, &store, &[], &[]);
        let snap = decode_snapshot(&bytes).expect("empty snapshot decodes");
        assert_eq!(snap.header.entries, 0);
        assert_eq!(snap.header.backend, BackendKind::Tlsh);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn save_open_round_trips_via_file() {
        let (header, store, buckets) = build_fixture(8);
        let dir = std::env::temp_dir().join("f3m-snapshot-test");
        let path = dir.join("roundtrip.f3msnap");
        save_snapshot(&path, &header, &store, &buckets, b"p").expect("save");
        let snap = open_snapshot(&path).expect("open");
        assert_eq!(snap.header, header);
        assert_eq!(snap.store, store);
        assert_eq!(snap.buckets, buckets);
        assert_eq!(snap.payload, b"p");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let (header, store, buckets) = build_fixture(6);
        let bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::ChecksumMismatch
                        | SnapshotError::BadMagic
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn garbled_bytes_are_rejected() {
        let (header, store, buckets) = build_fixture(6);
        let clean = encode_snapshot(&header, &store, &buckets, b"payload");
        // Flip one byte at a sample of positions: always an error.
        for pos in (0..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x5A;
            assert!(decode_snapshot(&bad).is_err(), "flip at {pos} must be rejected");
        }
        // Wrong magic is reported as such.
        let mut wrong_magic = clean.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode_snapshot(&wrong_magic), Err(SnapshotError::BadMagic)));
        // A checksum-valid file with an unsupported version is BadVersion.
        let mut future = clean.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = future.len();
        let sum = fnv1a(&future[..len - 8]);
        future[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_snapshot(&future), Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn structural_corruption_is_detected_behind_a_valid_checksum() {
        // Craft a file whose checksum is right but whose bucket directory
        // lies — decode must still reject it with Corrupt.
        let (header, store, mut buckets) = build_fixture(6);
        buckets[0].1.push(100); // member id out of range (entries = 6)
        let bytes = encode_snapshot(&header, &store, &buckets, &[]);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt("bucket member out of range"))
        ));

        let (header, store, mut buckets) = build_fixture(6);
        buckets[0].1.reverse();
        if buckets[0].1.len() > 1 {
            let bytes = encode_snapshot(&header, &store, &buckets, &[]);
            assert!(matches!(
                decode_snapshot(&bytes),
                Err(SnapshotError::Corrupt("bucket members not ascending"))
            ));
        }
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = open_snapshot(Path::new("/nonexistent/f3m.snap")).expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }
}
