//! Versioned on-disk index snapshots.
//!
//! A resident daemon that dies loses nothing but time — yet at a million
//! functions, "time" is minutes of re-fingerprinting and re-bucketing.
//! The snapshot captures the whole candidate-search state in one
//! contiguous, mmap-friendly file, so a restart is a bulk load instead of
//! a rebuild — or, via [`open_snapshot_meta`] + the
//! [`resident`](crate::resident) layer, no pool read at all: the SoA
//! pools are mapped lazily and faulted in per shard as queries touch
//! them.
//!
//! ## Wire layout, version 2 (all integers little-endian)
//!
//! ```text
//! off  size
//! ┌──────────────────────────────────────────────────────────────────┐
//! │   0   8  magic        "F3MSNAP1"                                 │
//! │   8   4  version      u32 (= 2)                                  │
//! │  12   1  backend      u8 tag (BackendKind::tag)                  │
//! │  13   4  k            u32  signature slots per function          │
//! │  17   4  rows         u32  LSH rows per band                     │
//! │  21   4  bands        u32  LSH bands (= band keys per function)  │
//! │  25   8  bucket_cap   u64  (usize::MAX stored as u64::MAX)       │
//! │  33   8  threshold    f64  (IEEE-754 bits)                       │
//! │  41   4  shards       u32  shard count at save time              │
//! │  45   8  epoch        u64  index epoch at save time              │
//! │  53   8  entries      u64  n = number of function rows           │
//! │  61   8  payload_len  u64  opaque caller section length          │
//! │  69   8  dir_len      u64  bucket directory length in bytes      │
//! │  77   8  meta_fnv     u64  FNV-1a over [0,77) ++ [85,meta_end)   │
//! │  85   8  pool_fnv     u64  FNV-1a over [meta_end,file_len)       │
//! ├──────────────────────────────────────────────────────────────────┤
//! │  93      bucket directory:  num_buckets u64, then per bucket     │
//! │            key u32 · len u32 · members len × u32  (keys          │
//! │            ascending, members ascending fn ids)                  │
//! ├──────────────────────────────────────────────────────────────────┤
//! │          payload  payload_len bytes (opaque to this layer; the   │
//! │            corpus stores module sources + entry metadata here)   │
//! │          …zero padding to pool_start = align8(meta_end)…         │
//! ├──────────────────────────────────────────────────────────────────┤
//! │          sig pool   n × k u64      (SoA, row-major by fn id)     │
//! │          key pool   n × bands u32  (SoA, row-major by fn id)     │
//! └──────────────────────────────────────────────────────────────────┘
//! meta_end = 93 + dir_len + payload_len
//! ```
//!
//! Version 2 moves the pools to the *end* of the file, 8-byte aligned,
//! and splits the v1 whole-file checksum in two. `meta_fnv` seals the
//! header, directory and payload (everything except its own field) and
//! is verified on every open; `pool_fnv` seals the padding + pools and
//! is only verified by the bulk [`decode_snapshot`] path. That split is
//! what makes lazy residency possible: a pager can map the pools
//! without reading a single pool byte, because validating the prefix no
//! longer requires streaming the (multi-GiB at chrome scale) pools
//! through a hash. Since an `mmap` base address is page-aligned, the
//! 8-aligned `pool_start` file offset also gives correctly aligned
//! in-memory `&[u64]` views of the signature pool.
//!
//! The pools are verbatim copies of a
//! [`PackedFingerprintStore`](crate::store::PackedFingerprintStore)'s
//! arrays, so saving is two bulk writes and loading reconstitutes the
//! store without per-entry work. The bucket directory spans *all* shards
//! (keys are globally unique across shards); the loader re-routes each
//! bucket to its owning shard, so reader and writer may use different
//! shard counts.
//!
//! Every decode failure is a typed [`SnapshotError`] — a truncated or
//! garbled file must degrade to a rebuild, never a panic. Headers are
//! untrusted: every pre-allocation is capped by the bytes actually
//! present, so a hostile `entries`/bucket count cannot force a huge
//! allocation.

use std::fmt;
use std::path::Path;

use crate::backend::BackendKind;
use crate::fnv::{fnv1a, fnv1a_seeded};
use crate::lsh::{BandKey, LshParams};
use crate::store::PackedFingerprintStore;

/// File magic: "F3MSNAP1" (the trailing `1` is part of the magic, not
/// the format version — that lives in the `version` field).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"F3MSNAP1";
/// Current format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Fixed-size header length in bytes (magic through `pool_fnv`).
pub const SNAPSHOT_HEADER_LEN: usize = 93;
/// Offset of the `meta_fnv` field.
const META_FNV_OFF: usize = 77;
/// Offset of the `pool_fnv` field.
const POOL_FNV_OFF: usize = 85;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The file ends before the structure it promises.
    Truncated,
    /// An FNV-1a checksum (meta or pool) does not match the contents.
    ChecksumMismatch,
    /// Structurally invalid contents (the message names the field).
    Corrupt(&'static str),
    /// The snapshot is internally valid but incompatible with the
    /// configuration trying to load it (e.g. different merge params).
    Mismatch(String),
    /// The snapshot's epoch predates state it claims to contain — the
    /// caller should fall back to a rebuild.
    StaleEpoch {
        /// Epoch recorded in the snapshot header.
        snapshot: u64,
        /// Newest epoch stamp found in the snapshot's own entries.
        newest_entry: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an F3M snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Mismatch(what) => write!(f, "snapshot incompatible: {what}"),
            SnapshotError::StaleEpoch { snapshot, newest_entry } => write!(
                f,
                "snapshot stale: header epoch {snapshot} < newest entry epoch {newest_entry}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// The fixed-size head of a snapshot: everything needed to decide
/// compatibility before touching the pools.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotHeader {
    /// Fingerprint family the signatures were produced by.
    pub backend: BackendKind,
    /// Signature slots per function.
    pub k: usize,
    /// Banding parameters.
    pub lsh: LshParams,
    /// Similarity threshold the index was built for.
    pub threshold: f64,
    /// Shard count at save time (informational; loaders may re-shard).
    pub shards: usize,
    /// Index epoch at save time.
    pub epoch: u64,
    /// Number of function rows.
    pub entries: usize,
}

/// Byte geometry of a snapshot file: where each region lives. Derived
/// entirely from the (checksummed) header, so a prefix read suffices to
/// compute it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotLayout {
    /// Bucket directory length in bytes (starts at [`SNAPSHOT_HEADER_LEN`]).
    pub dir_len: usize,
    /// Opaque payload length in bytes (follows the directory).
    pub payload_len: usize,
    /// End of the meta region: header + directory + payload.
    pub meta_end: usize,
    /// Start of the signature pool: `meta_end` rounded up to 8 bytes.
    pub pool_start: usize,
    /// Signature pool size in bytes (`entries × k × 8`).
    pub sig_pool_bytes: usize,
    /// Band-key pool size in bytes (`entries × bands × 4`).
    pub key_pool_bytes: usize,
    /// Total file size implied by the header.
    pub file_len: usize,
}

impl SnapshotLayout {
    /// Bytes the pools occupy (padding + sig pool + key pool) — the part
    /// of the file a resident open does *not* read eagerly.
    pub fn pool_bytes(&self) -> usize {
        self.file_len - self.meta_end
    }
}

/// Everything except the pools: the validated meta prefix of a snapshot.
/// This is what a lazy/resident open materializes — the pools stay on
/// disk behind the [`SnapshotLayout`] geometry.
#[derive(Debug)]
pub struct SnapshotMeta {
    pub header: SnapshotHeader,
    /// Byte geometry of the whole file.
    pub layout: SnapshotLayout,
    /// Bucket directory across all shards: `(key, ascending fn ids)`,
    /// ascending by key.
    pub buckets: Vec<(BandKey, Vec<u32>)>,
    /// The caller's opaque section (corpus metadata).
    pub payload: Vec<u8>,
    /// Stored pool checksum (verified only by the bulk decode path).
    pub pool_fnv: u64,
}

/// A fully decoded snapshot.
#[derive(Debug)]
pub struct SnapshotFile {
    pub header: SnapshotHeader,
    /// The packed signature + band-key pools.
    pub store: PackedFingerprintStore,
    /// Bucket directory across all shards: `(key, ascending fn ids)`,
    /// ascending by key.
    pub buckets: Vec<(BandKey, Vec<u32>)>,
    /// The caller's opaque section (corpus metadata).
    pub payload: Vec<u8>,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Serializes a snapshot to bytes (header, directory, payload, padding,
/// pools) with both checksums sealed.
///
/// # Panics
///
/// Panics if the store's row widths disagree with the header, or if a
/// bucket member id does not fit the entry count — these are programming
/// errors on the save path, not recoverable conditions.
pub fn encode_snapshot(
    header: &SnapshotHeader,
    store: &PackedFingerprintStore,
    buckets: &[(BandKey, Vec<u32>)],
    payload: &[u8],
) -> Vec<u8> {
    assert_eq!(store.k(), header.k, "store width disagrees with header");
    assert_eq!(store.bands(), header.lsh.bands, "store bands disagree with header");
    assert_eq!(store.len(), header.entries, "store rows disagree with header");

    let mut dir = Writer { buf: Vec::new() };
    dir.u64(buckets.len() as u64);
    for (key, members) in buckets {
        dir.u32(*key);
        dir.u32(members.len() as u32);
        for &m in members {
            dir.u32(m);
        }
    }
    let dir_len = dir.buf.len();

    let mut w = Writer {
        buf: Vec::with_capacity(
            SNAPSHOT_HEADER_LEN + dir_len + payload.len() + store.total_bytes() + 8,
        ),
    };
    w.buf.extend_from_slice(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u8(header.backend.tag());
    w.u32(header.k as u32);
    w.u32(header.lsh.rows as u32);
    w.u32(header.lsh.bands as u32);
    w.u64(header.lsh.bucket_cap as u64);
    w.u64(header.threshold.to_bits());
    w.u32(header.shards as u32);
    w.u64(header.epoch);
    w.u64(header.entries as u64);
    w.u64(payload.len() as u64);
    w.u64(dir_len as u64);
    w.u64(0); // meta_fnv, patched below
    w.u64(0); // pool_fnv, patched below
    assert_eq!(w.buf.len(), SNAPSHOT_HEADER_LEN, "header layout drifted");

    w.buf.extend_from_slice(&dir.buf);
    w.buf.extend_from_slice(payload);
    let meta_end = w.buf.len();
    w.buf.resize(align8(meta_end), 0);
    for &s in store.sig_pool() {
        w.u64(s);
    }
    for &k in store.key_pool() {
        w.u32(k);
    }

    // pool_fnv first: meta_fnv covers the sealed pool_fnv field bytes.
    let pool_fnv = fnv1a(&w.buf[meta_end..]);
    w.buf[POOL_FNV_OFF..POOL_FNV_OFF + 8].copy_from_slice(&pool_fnv.to_le_bytes());
    let meta_fnv = fnv1a_seeded(fnv1a(&w.buf[..META_FNV_OFF]), &w.buf[POOL_FNV_OFF..meta_end]);
    w.buf[META_FNV_OFF..META_FNV_OFF + 8].copy_from_slice(&meta_fnv.to_le_bytes());
    w.buf
}

fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Parses and validates the meta region of a snapshot from `buf`, which
/// must hold at least the first `meta_end` bytes of the file;
/// `file_len` is the true on-disk length (used to validate the implied
/// pool geometry without reading the pools).
///
/// Validation order matters for error typing: magic → version →
/// meta-region bounds → meta checksum → structural checks. Structural
/// `Corrupt` errors therefore only fire on files that were *written*
/// malformed, never on bit rot (that's a `ChecksumMismatch`) or short
/// files (`Truncated`).
pub fn decode_snapshot_meta(buf: &[u8], file_len: u64) -> Result<SnapshotMeta, SnapshotError> {
    if buf.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    if !buf.starts_with(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    // Version before checksum: a future format may checksum differently,
    // so hashing its bytes under v2 rules would mislabel it as corrupt.
    let version = read_u32(buf, 8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    if buf.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }

    let payload_len64 = read_u64(buf, 61);
    let dir_len64 = read_u64(buf, 69);
    let meta_fnv = read_u64(buf, META_FNV_OFF);
    let pool_fnv = read_u64(buf, POOL_FNV_OFF);
    let meta_end64 = (SNAPSHOT_HEADER_LEN as u64)
        .checked_add(dir_len64)
        .and_then(|v| v.checked_add(payload_len64))
        .ok_or(SnapshotError::Truncated)?;
    if meta_end64 > file_len || meta_end64 > buf.len() as u64 {
        return Err(SnapshotError::Truncated);
    }
    let meta_end = meta_end64 as usize;
    let got = fnv1a_seeded(fnv1a(&buf[..META_FNV_OFF]), &buf[POOL_FNV_OFF..meta_end]);
    if got != meta_fnv {
        return Err(SnapshotError::ChecksumMismatch);
    }

    // From here on the meta region is exactly what was written; any
    // structural failure means the writer lied.
    let backend =
        BackendKind::from_tag(buf[12]).ok_or(SnapshotError::Corrupt("unknown backend tag"))?;
    let k = read_u32(buf, 13) as usize;
    let rows = read_u32(buf, 17) as usize;
    let bands = read_u32(buf, 21) as usize;
    let bucket_cap = usize::try_from(read_u64(buf, 25)).unwrap_or(usize::MAX);
    let threshold = f64::from_bits(read_u64(buf, 33));
    let shards = read_u32(buf, 41) as usize;
    let epoch = read_u64(buf, 45);
    let entries =
        usize::try_from(read_u64(buf, 53)).map_err(|_| SnapshotError::Corrupt("entry count"))?;
    if k == 0 || rows == 0 || bands == 0 {
        return Err(SnapshotError::Corrupt("zero row width"));
    }
    if k < rows * bands {
        return Err(SnapshotError::Corrupt("k smaller than rows × bands"));
    }
    if shards == 0 {
        return Err(SnapshotError::Corrupt("zero shards"));
    }
    if !threshold.is_finite() {
        return Err(SnapshotError::Corrupt("non-finite threshold"));
    }

    // Pool geometry implied by the header; validated against the true
    // file length so a hostile `entries` cannot force an allocation —
    // the check fails before any pool byte is touched.
    let sig_pool_bytes = entries
        .checked_mul(k)
        .and_then(|v| v.checked_mul(8))
        .ok_or(SnapshotError::Corrupt("sig pool size"))?;
    let key_pool_bytes = entries
        .checked_mul(bands)
        .and_then(|v| v.checked_mul(4))
        .ok_or(SnapshotError::Corrupt("key pool size"))?;
    let pool_start = align8(meta_end);
    let expected_len = (pool_start as u64)
        .checked_add(sig_pool_bytes as u64)
        .and_then(|v| v.checked_add(key_pool_bytes as u64))
        .ok_or(SnapshotError::Corrupt("file size overflow"))?;
    if file_len < expected_len {
        return Err(SnapshotError::Truncated);
    }
    if file_len > expected_len {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }

    let dir_len = dir_len64 as usize;
    let mut r = Reader { buf: &buf[SNAPSHOT_HEADER_LEN..SNAPSHOT_HEADER_LEN + dir_len], pos: 0 };
    let buckets = parse_directory(&mut r, entries)?;
    if r.pos != dir_len {
        return Err(SnapshotError::Corrupt("bucket directory trailing bytes"));
    }
    let payload = buf[SNAPSHOT_HEADER_LEN + dir_len..meta_end].to_vec();

    Ok(SnapshotMeta {
        header: SnapshotHeader {
            backend,
            k,
            lsh: LshParams { rows, bands, bucket_cap },
            threshold,
            shards,
            epoch,
            entries,
        },
        layout: SnapshotLayout {
            dir_len,
            payload_len: payload_len64 as usize,
            meta_end,
            pool_start,
            sig_pool_bytes,
            key_pool_bytes,
            file_len: expected_len as usize,
        },
        buckets,
        payload,
        pool_fnv,
    })
}

/// Parses the bucket directory. The region is checksum-verified before
/// this runs, so running off its end means the directory lies about
/// itself — `Corrupt`, not `Truncated`.
fn parse_directory(
    r: &mut Reader<'_>,
    entries: usize,
) -> Result<Vec<(BandKey, Vec<u32>)>, SnapshotError> {
    let truncated = |e| match e {
        SnapshotError::Truncated => SnapshotError::Corrupt("bucket directory truncated"),
        other => other,
    };
    let num_buckets = usize::try_from(r.u64().map_err(truncated)?)
        .map_err(|_| SnapshotError::Corrupt("bucket count"))?;
    // Untrusted count: each bucket needs ≥ 12 bytes (key + len + one
    // member), so cap the pre-allocation by what is physically present.
    let mut buckets: Vec<(BandKey, Vec<u32>)> =
        Vec::with_capacity(num_buckets.min(r.remaining() / 12));
    let mut last_key: Option<BandKey> = None;
    for _ in 0..num_buckets {
        let key = r.u32().map_err(truncated)?;
        if let Some(prev) = last_key {
            if key <= prev {
                return Err(SnapshotError::Corrupt("bucket keys not ascending"));
            }
        }
        last_key = Some(key);
        let len = r.u32().map_err(truncated)? as usize;
        if len == 0 {
            return Err(SnapshotError::Corrupt("empty bucket"));
        }
        let members: Vec<u32> = r
            .take(len.checked_mul(4).ok_or(SnapshotError::Corrupt("bucket size"))?)
            .map_err(truncated)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt("bucket members not ascending"));
        }
        if members.iter().any(|&m| m as usize >= entries) {
            return Err(SnapshotError::Corrupt("bucket member out of range"));
        }
        buckets.push((key, members));
    }
    Ok(buckets)
}

/// Decodes and validates snapshot bytes, pools included. Inverse of
/// [`encode_snapshot`]; every malformation maps to a typed
/// [`SnapshotError`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotFile, SnapshotError> {
    let meta = decode_snapshot_meta(bytes, bytes.len() as u64)?;
    let l = meta.layout;
    if fnv1a(&bytes[l.meta_end..]) != meta.pool_fnv {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let sigs: Vec<u64> = bytes[l.pool_start..l.pool_start + l.sig_pool_bytes]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let keys: Vec<BandKey> = bytes[l.pool_start + l.sig_pool_bytes..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let store = PackedFingerprintStore::from_pools(meta.header.k, meta.header.lsh.bands, sigs, keys)
        .ok_or(SnapshotError::Corrupt("inconsistent pools"))?;
    Ok(SnapshotFile { header: meta.header, store, buckets: meta.buckets, payload: meta.payload })
}

/// Writes a snapshot file atomically (temp file + rename), so a crash
/// mid-save never leaves a half-written snapshot where a loader expects a
/// valid one.
pub fn save_snapshot(
    path: &Path,
    header: &SnapshotHeader,
    store: &PackedFingerprintStore,
    buckets: &[(BandKey, Vec<u32>)],
    payload: &[u8],
) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(header, store, buckets, payload);
    let tmp = path.with_extension("tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a snapshot file — the whole file in one bulk read
/// (the layout is contiguous precisely so this is a single sequential
/// I/O), then a zero-rebuild decode. Verifies both checksums.
pub fn open_snapshot(path: &Path) -> Result<SnapshotFile, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Reads and validates only the meta prefix of a snapshot file — header,
/// bucket directory and payload — leaving the pools untouched on disk.
/// This is the O(meta) entry point for resident opens: at chrome scale
/// the meta region is a few MiB while the pools are GiBs.
///
/// The pool checksum is *not* verified here (that would require reading
/// the pools); the returned [`SnapshotMeta::pool_fnv`] lets a caller do
/// so later if it wants the full-integrity path.
pub fn open_snapshot_meta(path: &Path) -> Result<SnapshotMeta, SnapshotError> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let file_len = f.metadata()?.len();
    let mut buf = Vec::new();
    (&mut f).take(SNAPSHOT_HEADER_LEN as u64).read_to_end(&mut buf)?;
    if buf.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    if !buf.starts_with(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(&buf, 8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    if buf.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    let meta_end = (SNAPSHOT_HEADER_LEN as u64)
        .checked_add(read_u64(&buf, 69))
        .and_then(|v| v.checked_add(read_u64(&buf, 61)))
        .ok_or(SnapshotError::Truncated)?;
    if meta_end > file_len {
        return Err(SnapshotError::Truncated);
    }
    (&mut f).take(meta_end - SNAPSHOT_HEADER_LEN as u64).read_to_end(&mut buf)?;
    if (buf.len() as u64) < meta_end {
        return Err(SnapshotError::Truncated);
    }
    decode_snapshot_meta(&buf, file_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::{band_keys_for, LshIndex};
    use crate::minhash::MinHashFingerprint;

    fn params() -> LshParams {
        LshParams { rows: 2, bands: 16, bucket_cap: 100 }
    }

    fn build_fixture(n: u32) -> (SnapshotHeader, PackedFingerprintStore, Vec<(BandKey, Vec<u32>)>) {
        let p = params();
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, n as usize);
        let mut index: LshIndex<u32> = LshIndex::new(p);
        for i in 0..n {
            let stream: Vec<u32> = (i % 5..i % 5 + 30).collect();
            let sig = MinHashFingerprint::of_encoded(&stream, 32).into_hashes();
            let keys = band_keys_for(p, &sig);
            store.push_with_keys(&sig, &keys);
            index.insert_with_keys(i, &keys);
        }
        let header = SnapshotHeader {
            backend: BackendKind::MinHash,
            k: 32,
            lsh: p,
            threshold: 0.25,
            shards: 4,
            epoch: 9,
            entries: n as usize,
        };
        (header, store, index.export_buckets())
    }

    /// Re-seals the meta checksum after a test mutates the meta region,
    /// so structural/version checks can be exercised behind a valid
    /// checksum.
    fn reseal_meta(bytes: &mut [u8]) {
        let payload_len = read_u64(bytes, 61) as usize;
        let dir_len = read_u64(bytes, 69) as usize;
        let meta_end = SNAPSHOT_HEADER_LEN + dir_len + payload_len;
        let sum = fnv1a_seeded(fnv1a(&bytes[..META_FNV_OFF]), &bytes[POOL_FNV_OFF..meta_end]);
        bytes[META_FNV_OFF..META_FNV_OFF + 8].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn encode_decode_is_a_fixpoint() {
        let (header, store, buckets) = build_fixture(12);
        let payload = b"opaque corpus bytes".to_vec();
        let bytes = encode_snapshot(&header, &store, &buckets, &payload);
        let snap = decode_snapshot(&bytes).expect("valid snapshot decodes");
        assert_eq!(snap.header, header);
        assert_eq!(snap.store, store);
        assert_eq!(snap.buckets, buckets);
        assert_eq!(snap.payload, payload);
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(
            encode_snapshot(&snap.header, &snap.store, &snap.buckets, &snap.payload),
            bytes
        );
    }

    #[test]
    fn sig_pool_is_eight_byte_aligned() {
        // The whole point of the v2 layout: a page-aligned mapping of the
        // file yields a correctly aligned &[u64] view of the sig pool.
        for n in [0u32, 1, 6, 12] {
            for payload in [&b""[..], b"x", b"seven b", b"unaligned payload!"] {
                let (mut header, store, buckets) = build_fixture(n);
                header.entries = store.len();
                let bytes = encode_snapshot(&header, &store, &buckets, payload);
                let meta = decode_snapshot_meta(&bytes, bytes.len() as u64).expect("meta decodes");
                assert_eq!(meta.layout.pool_start % 8, 0, "n={n} payload={payload:?}");
                assert_eq!(meta.layout.file_len, bytes.len());
                // Padding is zeroed.
                assert!(bytes[meta.layout.meta_end..meta.layout.pool_start]
                    .iter()
                    .all(|&b| b == 0));
            }
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let p = params();
        let header = SnapshotHeader {
            backend: BackendKind::Tlsh,
            k: 32,
            lsh: p,
            threshold: 0.0,
            shards: 1,
            epoch: 0,
            entries: 0,
        };
        let store = PackedFingerprintStore::with_capacity(32, p.bands, 0);
        let bytes = encode_snapshot(&header, &store, &[], &[]);
        let snap = decode_snapshot(&bytes).expect("empty snapshot decodes");
        assert_eq!(snap.header.entries, 0);
        assert_eq!(snap.header.backend, BackendKind::Tlsh);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn save_open_round_trips_via_file() {
        let (header, store, buckets) = build_fixture(8);
        let dir = std::env::temp_dir().join("f3m-snapshot-test");
        let path = dir.join("roundtrip.f3msnap");
        save_snapshot(&path, &header, &store, &buckets, b"p").expect("save");
        let snap = open_snapshot(&path).expect("open");
        assert_eq!(snap.header, header);
        assert_eq!(snap.store, store);
        assert_eq!(snap.buckets, buckets);
        assert_eq!(snap.payload, b"p");
        // The meta-only open agrees with the bulk open without reading
        // the pools.
        let meta = open_snapshot_meta(&path).expect("open meta");
        assert_eq!(meta.header, header);
        assert_eq!(meta.buckets, snap.buckets);
        assert_eq!(meta.payload, snap.payload);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let (header, store, buckets) = build_fixture(6);
        let bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::ChecksumMismatch
                        | SnapshotError::BadMagic
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn truncated_pools_are_truncated_not_corrupt() {
        // Cuts that land inside the pool region specifically must read as
        // Truncated: the meta prefix is intact, so the header's implied
        // file length is the only thing that can catch it.
        let (header, store, buckets) = build_fixture(6);
        let bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        let meta = decode_snapshot_meta(&bytes, bytes.len() as u64).expect("meta");
        for cut in [meta.layout.meta_end, meta.layout.pool_start + 1, bytes.len() - 1] {
            assert!(
                matches!(decode_snapshot(&bytes[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut} inside pools must be Truncated"
            );
        }
    }

    #[test]
    fn mid_pool_corruption_is_a_checksum_mismatch() {
        // A bit flip inside the pools leaves the meta prefix valid — the
        // meta-only open accepts it (by design: it never reads pools),
        // but the full decode must flag the pool checksum.
        let (header, store, buckets) = build_fixture(6);
        let clean = encode_snapshot(&header, &store, &buckets, b"payload");
        let meta = decode_snapshot_meta(&clean, clean.len() as u64).expect("meta");
        let l = meta.layout;
        for pos in [l.meta_end, l.pool_start, (l.pool_start + l.file_len) / 2, l.file_len - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x5A;
            assert!(
                matches!(decode_snapshot(&bad), Err(SnapshotError::ChecksumMismatch)),
                "pool flip at {pos} must be ChecksumMismatch"
            );
            assert!(
                decode_snapshot_meta(&bad, bad.len() as u64).is_ok(),
                "meta-only decode does not read pools (flip at {pos})"
            );
        }
    }

    #[test]
    fn garbled_bytes_are_rejected() {
        let (header, store, buckets) = build_fixture(6);
        let clean = encode_snapshot(&header, &store, &buckets, b"payload");
        // Flip one byte at a sample of positions: always an error.
        for pos in (0..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x5A;
            assert!(decode_snapshot(&bad).is_err(), "flip at {pos} must be rejected");
        }
        // Wrong magic is reported as such.
        let mut wrong_magic = clean.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode_snapshot(&wrong_magic), Err(SnapshotError::BadMagic)));
        // A checksum-valid file with an unsupported version is BadVersion.
        let mut future = clean.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        reseal_meta(&mut future);
        assert!(matches!(decode_snapshot(&future), Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn hostile_header_cannot_force_a_huge_allocation() {
        // An attacker-controlled entry count must fail the implied-length
        // check before any pool allocation happens.
        let (header, store, buckets) = build_fixture(6);
        let mut bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        bytes[53..61].copy_from_slice(&(1u64 << 40).to_le_bytes());
        reseal_meta(&mut bytes);
        assert!(matches!(decode_snapshot(&bytes), Err(SnapshotError::Truncated)));
        // An entry count whose pool size overflows entirely is Corrupt.
        let (header, store, buckets) = build_fixture(6);
        let mut bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        bytes[53..61].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal_meta(&mut bytes);
        assert!(matches!(decode_snapshot(&bytes), Err(SnapshotError::Corrupt(_))));

        // Same for a hostile bucket count: the directory region is tiny,
        // so the capped pre-allocation stays tiny and the parse fails as
        // a typed Corrupt.
        let (header, store, buckets) = build_fixture(6);
        let mut bytes = encode_snapshot(&header, &store, &buckets, b"payload");
        bytes[SNAPSHOT_HEADER_LEN..SNAPSHOT_HEADER_LEN + 8]
            .copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        reseal_meta(&mut bytes);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt("bucket directory truncated"))
        ));
    }

    #[test]
    fn structural_corruption_is_detected_behind_a_valid_checksum() {
        // Craft a file whose checksum is right but whose bucket directory
        // lies — decode must still reject it with Corrupt.
        let (header, store, mut buckets) = build_fixture(6);
        buckets[0].1.push(100); // member id out of range (entries = 6)
        let bytes = encode_snapshot(&header, &store, &buckets, &[]);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt("bucket member out of range"))
        ));

        let (header, store, mut buckets) = build_fixture(6);
        buckets[0].1.reverse();
        if buckets[0].1.len() > 1 {
            let bytes = encode_snapshot(&header, &store, &buckets, &[]);
            assert!(matches!(
                decode_snapshot(&bytes),
                Err(SnapshotError::Corrupt("bucket members not ascending"))
            ));
        }
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = open_snapshot(Path::new("/nonexistent/f3m.snap")).expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("io error"));
        let err =
            open_snapshot_meta(Path::new("/nonexistent/f3m.snap")).expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
