//! Instruction encoding.
//!
//! Section III-B of the paper: "we translate each instruction into a 32-bit
//! integer that encodes the four most important properties with regards to
//! merging: opcode, result type, number of operands, and operand types."
//! Two instructions receive the same code exactly when the alignment
//! strategy could merge them (same opcode, same result type, same operand
//! shape), regardless of *which* values the operands are.
//!
//! Layout of the 32-bit code:
//!
//! ```text
//!  31        24 23     20 19          14 13             0
//! +------------+---------+--------------+----------------+
//! |   opcode   | #opnds  | result type  | operand types  |
//! +------------+---------+--------------+----------------+
//! ```
//!
//! The operand-type field is the product of the operand types' encoding
//! numbers (as in the paper), folded into 14 bits; comparison predicates
//! are mixed into the same field so that `icmp slt` and `icmp eq` do not
//! merge.

use f3m_ir::inst::Instruction;
use f3m_ir::function::Function;
use f3m_ir::types::TypeStore;

/// Encodes one instruction into its 32-bit merge-compatibility code.
pub fn encode_inst(f: &Function, inst: &Instruction) -> u32 {
    let opcode = inst.op.code() & 0xFF;
    let nops = (inst.operands.len() as u32).min(0xF);
    let result_ty = inst.ty.encoding_number() % 64;
    let mut operand_field: u32 = 1;
    for &op in &inst.operands {
        let t = f.value(op).ty.encoding_number();
        operand_field = operand_field.wrapping_mul(t);
    }
    if let Some(aux) = inst.aux_ty {
        operand_field = operand_field.wrapping_mul(aux.encoding_number());
    }
    if let Some(pred) = inst.pred {
        operand_field = operand_field.wrapping_mul(0x101).wrapping_add(pred.code());
    }
    (opcode << 24) | (nops << 20) | (result_ty << 14) | (operand_field % (1 << 14))
}

/// Encodes a whole function into its linear `u32` instruction stream, in
/// block order — the representation MinHash shingles are drawn from.
pub fn encode_function(ts: &TypeStore, f: &Function) -> Vec<u32> {
    let _ = ts;
    f.linked_insts().map(|(_, inst)| encode_inst(f, inst)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::builder::FunctionBuilder;
    use f3m_ir::inst::IntPredicate;
    use f3m_ir::module::Module;
    use f3m_ir::function::Function;

    fn encode_simple(build: impl FnOnce(&mut FunctionBuilder<'_>)) -> Vec<u32> {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut f = Function::new("f", vec![i32t, i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            build(&mut b);
        }
        encode_function(&m.types, &f)
    }

    #[test]
    fn identical_instructions_get_identical_codes() {
        let codes = encode_simple(|b| {
            let (x, y) = (b.func().arg(0), b.func().arg(1));
            let a = b.add(x, y);
            let c = b.add(y, a); // different operands, same shape
            b.ret(Some(c));
        });
        assert_eq!(codes[0], codes[1], "operand identity must not matter");
    }

    #[test]
    fn different_opcodes_differ() {
        let codes = encode_simple(|b| {
            let (x, y) = (b.func().arg(0), b.func().arg(1));
            let a = b.add(x, y);
            let s = b.sub(x, y);
            let c = b.mul(a, s);
            b.ret(Some(c));
        });
        assert_ne!(codes[0], codes[1]);
        assert_ne!(codes[1], codes[2]);
    }

    #[test]
    fn different_types_differ() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let i64t = m.types.int(64);
        let mut f = Function::new("f", vec![i32t, i32t, i64t, i64t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let a32 = b.add(b.func().arg(0), b.func().arg(1));
            let _a64 = b.add(b.func().arg(2), b.func().arg(3));
            b.ret(Some(a32));
        }
        let codes = encode_function(&m.types, &f);
        assert_ne!(codes[0], codes[1], "i32 add vs i64 add must differ");
    }

    #[test]
    fn predicates_differ() {
        let codes = encode_simple(|b| {
            let (x, y) = (b.func().arg(0), b.func().arg(1));
            let c1 = b.icmp(IntPredicate::Slt, x, y);
            let c2 = b.icmp(IntPredicate::Eq, x, y);
            let r = b.select(c1, x, y);
            let r2 = b.select(c2, x, r);
            b.ret(Some(r2));
        });
        assert_ne!(codes[0], codes[1], "icmp slt vs icmp eq must differ");
    }

    #[test]
    fn returns_of_different_types_differ() {
        // The paper notes (Section IV-B) that functions containing a lone
        // `ret` of different types must not look identical: the type is
        // encoded.
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let i64t = m.types.int(64);
        let mut f1 = Function::new("a", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f1);
            let e = b.create_block("entry");
            b.position_at_end(e);
            let a = b.func().arg(0);
            b.ret(Some(a));
        }
        let mut f2 = Function::new("b", vec![i64t], i64t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f2);
            let e = b.create_block("entry");
            b.position_at_end(e);
            let a = b.func().arg(0);
            b.ret(Some(a));
        }
        let c1 = encode_function(&m.types, &f1);
        let c2 = encode_function(&m.types, &f2);
        assert_ne!(c1, c2);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode_simple(|b| {
            let s = b.add(b.func().arg(0), b.func().arg(1));
            b.ret(Some(s));
        });
        let b2 = encode_simple(|b| {
            let s = b.add(b.func().arg(0), b.func().arg(1));
            b.ret(Some(s));
        });
        assert_eq!(a, b2);
    }
}
