//! Pluggable file paging: how snapshot pool bytes reach memory.
//!
//! Mirrors the serve crate's `Poller` pattern — one trait, two
//! backends, zero dependencies:
//!
//! - [`MmapPager`] — the file is mapped read-only with raw
//!   `mmap`/`munmap`/`madvise` syscalls via `std::arch::asm!` (Linux
//!   x86_64 and aarch64). Pool bytes become resident lazily, one page
//!   fault at a time, and `madvise(MADV_DONTNEED)` gives clean pages
//!   back to the kernel on spill — on a read-only file-backed private
//!   mapping that is purely an RSS action: a later touch refaults the
//!   same bytes from the file, so zero-copy slices stay valid across
//!   spills.
//! - [`FilePager`] — portable positioned reads (`pread` via
//!   `FileExt::read_at` on Unix, a seek-locked fallback elsewhere).
//!   No zero-copy view; callers buffer what they read and drop the
//!   buffer to spill.
//!
//! [`new_pager`] picks the richest backend the platform offers unless
//! the caller or the `F3M_PAGER` environment variable (`mmap` /
//! `file`) says otherwise, and falls back gracefully when a map cannot
//! be established.

use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;

/// Which pager backend to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagerKind {
    /// Best available: mmap where supported, positioned reads otherwise.
    Auto,
    /// Force the mmap backend; constructing on an unsupported platform
    /// is an error instead of a silent fallback.
    Mmap,
    /// Force the positioned-read backend.
    File,
}

impl PagerKind {
    /// Parses a backend name as used by `F3M_PAGER` and the CLI.
    pub fn parse(s: &str) -> Option<PagerKind> {
        match s {
            "auto" => Some(PagerKind::Auto),
            "mmap" => Some(PagerKind::Mmap),
            "file" => Some(PagerKind::File),
            _ => None,
        }
    }
}

impl fmt::Display for PagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PagerKind::Auto => "auto",
            PagerKind::Mmap => "mmap",
            PagerKind::File => "file",
        })
    }
}

/// Read access to an immutable on-disk file, with optional residency
/// hints. All methods take `&self`: pagers are shared across worker
/// threads behind the residency manager.
pub trait Pager: Send + Sync {
    /// Backend name for metrics/describe output (`"mmap"` / `"file"`).
    fn backend_name(&self) -> &'static str;
    /// Total file length in bytes.
    fn len(&self) -> usize;
    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Zero-copy view of the whole file, if this backend maps it.
    /// `None` means callers must go through [`Pager::read_at`].
    fn mapped(&self) -> Option<&[u8]>;
    /// Fills `buf` from absolute offset `off`. Works on every backend
    /// (the mmap backend serves it from the mapping).
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Hint that `[off, off + len)` is about to be touched.
    fn advise_need(&self, off: usize, len: usize);
    /// Hint that `[off, off + len)` will not be touched for a while and
    /// its pages may leave RSS. Data must remain readable afterwards.
    fn advise_dontneed(&self, off: usize, len: usize);
}

/// Opens `path` with the requested backend. `Auto` prefers mmap and
/// falls back to positioned reads if mapping fails or the platform has
/// no mmap backend; explicit kinds do what they are told or error.
/// `F3M_PAGER=mmap|file|auto` overrides the requested kind.
pub fn new_pager(kind: PagerKind, path: &Path) -> io::Result<Box<dyn Pager>> {
    let kind = match std::env::var("F3M_PAGER").ok().as_deref().and_then(PagerKind::parse) {
        Some(forced) => forced,
        None => kind,
    };
    match kind {
        PagerKind::File => Ok(Box::new(FilePager::open(path)?)),
        PagerKind::Mmap => {
            let m = mmap::MmapPager::open(path)?;
            Ok(Box::new(m))
        }
        PagerKind::Auto => match mmap::MmapPager::open(path) {
            Ok(m) => Ok(Box::new(m)),
            Err(_) => Ok(Box::new(FilePager::open(path)?)),
        },
    }
}

// ---------------------------------------------------------------------
// Positioned-read backend (portable)

/// Fallback pager: no mapping, every access is an explicit positioned
/// read. Residency hints are no-ops — the caller's own buffers are the
/// resident set, and dropping them is the spill.
pub struct FilePager {
    file: File,
    len: usize,
    /// Seek-based fallback for platforms without positioned reads.
    #[cfg(not(unix))]
    lock: std::sync::Mutex<()>,
}

impl FilePager {
    pub fn open(path: &Path) -> io::Result<FilePager> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large"))?;
        Ok(FilePager {
            file,
            len,
            #[cfg(not(unix))]
            lock: std::sync::Mutex::new(()),
        })
    }
}

impl Pager for FilePager {
    fn backend_name(&self) -> &'static str {
        "file"
    }
    fn len(&self) -> usize {
        self.len
    }
    fn mapped(&self) -> Option<&[u8]> {
        None
    }
    #[cfg(unix)]
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, off)
    }
    #[cfg(not(unix))]
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _g = self.lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
    fn advise_need(&self, _off: usize, _len: usize) {}
    fn advise_dontneed(&self, _off: usize, _len: usize) {}
}

// ---------------------------------------------------------------------
// Mmap backend (Linux x86_64 / aarch64, raw syscalls)

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) mod mmap {
    use super::Pager;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i64 = 0x1;
    const MAP_PRIVATE: i64 = 0x2;
    const MADV_WILLNEED: i64 = 3;
    const MADV_DONTNEED: i64 = 4;

    /// Hint ranges are aligned inward/outward to this granule. It is a
    /// multiple of every Linux base page size (4K/16K/64K), so a
    /// granule-aligned offset into the page-aligned mapping base is
    /// always page-aligned — no runtime page-size probe needed.
    pub const ADVISE_ALIGN: usize = 64 << 10;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: i64 = 9;
        pub const MUNMAP: i64 = 11;
        pub const MADVISE: i64 = 28;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: i64 = 222;
        pub const MUNMAP: i64 = 215;
        pub const MADVISE: i64 = 233;
    }

    /// Raw 6-argument syscall. Negative returns are `-errno` (and for
    /// `mmap`, any value in `(-4096, 0)` is an error — valid mappings
    /// are page-aligned addresses).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack)
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error((-ret) as i32))
        } else {
            Ok(ret)
        }
    }

    /// A read-only private mapping of an entire file.
    pub struct MmapPager {
        /// Mapping base; null for the empty-file degenerate case (the
        /// kernel rejects zero-length maps, so we don't make one).
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only and never remapped after construction;
    // concurrent reads from any thread are safe.
    unsafe impl Send for MmapPager {}
    unsafe impl Sync for MmapPager {}

    impl MmapPager {
        pub fn open(path: &Path) -> io::Result<MmapPager> {
            let file = File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large"))?;
            if len == 0 {
                return Ok(MmapPager { ptr: std::ptr::null(), len: 0 });
            }
            let ret = unsafe {
                syscall6(
                    nr::MMAP,
                    0,
                    len as i64,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd() as i64,
                    0,
                )
            };
            // mmap reports errors as -errno in the same word that would
            // otherwise hold the (page-aligned, hence large) address.
            if (-4095..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error((-ret) as i32));
            }
            // The fd may close here; the mapping keeps the inode alive.
            Ok(MmapPager { ptr: ret as *const u8, len })
        }

        /// Issues madvise on the granule-aligned cover (for WILLNEED) or
        /// interior (for DONTNEED) of `[off, off + len)`.
        fn advise(&self, off: usize, len: usize, advice: i64, inward: bool) {
            if self.len == 0 || len == 0 {
                return;
            }
            let end = (off + len).min(self.len);
            let (start, end) = if inward {
                // Only whole granules strictly inside the range may be
                // dropped: a shared boundary page can hold a neighbor's
                // bytes.
                (off.next_multiple_of(ADVISE_ALIGN), end & !(ADVISE_ALIGN - 1))
            } else {
                (off & !(ADVISE_ALIGN - 1), end)
            };
            if start >= end {
                return;
            }
            // Advice is advisory: failures (e.g. locked pages) are not
            // actionable here, so the result is ignored.
            let _ = check(unsafe {
                syscall6(
                    nr::MADVISE,
                    self.ptr as i64 + start as i64,
                    (end - start) as i64,
                    advice,
                    0,
                    0,
                    0,
                )
            });
        }
    }

    impl Drop for MmapPager {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                let _ = unsafe {
                    syscall6(nr::MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0)
                };
            }
        }
    }

    impl Pager for MmapPager {
        fn backend_name(&self) -> &'static str {
            "mmap"
        }
        fn len(&self) -> usize {
            self.len
        }
        fn mapped(&self) -> Option<&[u8]> {
            if self.len == 0 {
                return Some(&[]);
            }
            Some(unsafe { std::slice::from_raw_parts(self.ptr, self.len) })
        }
        fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
            let off = usize::try_from(off)
                .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset out of range"))?;
            let end = off
                .checked_add(buf.len())
                .filter(|&e| e <= self.len)
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read past map"))?;
            buf.copy_from_slice(&self.mapped().unwrap()[off..end]);
            Ok(())
        }
        fn advise_need(&self, off: usize, len: usize) {
            self.advise(off, len, MADV_WILLNEED, false);
        }
        fn advise_dontneed(&self, off: usize, len: usize) {
            self.advise(off, len, MADV_DONTNEED, true);
        }
    }
}

/// Platforms without the raw-syscall mmap backend: forcing
/// `PagerKind::Mmap` is an explicit error, `Auto` silently takes the
/// positioned-read path.
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) mod mmap {
    use super::Pager;
    use std::io;
    use std::path::Path;

    pub struct MmapPager;

    impl MmapPager {
        pub fn open(_path: &Path) -> io::Result<MmapPager> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap pager is not available on this platform",
            ))
        }
    }

    impl Pager for MmapPager {
        fn backend_name(&self) -> &'static str {
            unreachable!("mmap pager cannot be constructed on this platform")
        }
        fn len(&self) -> usize {
            unreachable!()
        }
        fn mapped(&self) -> Option<&[u8]> {
            unreachable!()
        }
        fn read_at(&self, _off: u64, _buf: &mut [u8]) -> io::Result<()> {
            unreachable!()
        }
        fn advise_need(&self, _off: usize, _len: usize) {}
        fn advise_dontneed(&self, _off: usize, _len: usize) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("f3m-pager-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 % 251) as u8).collect()
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [PagerKind::Auto, PagerKind::Mmap, PagerKind::File] {
            assert_eq!(PagerKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(PagerKind::parse("bogus"), None);
    }

    #[test]
    fn file_pager_positioned_reads() {
        let data = pattern(10_000);
        let path = fixture("filepager.bin", &data);
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.backend_name(), "file");
        assert_eq!(p.len(), data.len());
        assert!(p.mapped().is_none());
        let mut buf = vec![0u8; 257];
        p.read_at(4_321, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[4_321..4_321 + 257]);
        // Reading past EOF is an error, not UB or a short read.
        let mut tail = vec![0u8; 16];
        assert!(p.read_at(data.len() as u64 - 8, &mut tail).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn mmap_pager_matches_file_pager() {
        let data = pattern(200_000);
        let path = fixture("mmappager.bin", &data);
        let m = mmap::MmapPager::open(&path).unwrap();
        assert_eq!(m.backend_name(), "mmap");
        assert_eq!(m.len(), data.len());
        assert_eq!(m.mapped().unwrap(), &data[..]);
        let mut buf = vec![0u8; 1000];
        m.read_at(123_456, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[123_456..124_456]);
        assert!(m.read_at(data.len() as u64, &mut [0u8; 1]).is_err());
        // Hints must not invalidate the data (DONTNEED on a file-backed
        // read-only mapping refaults from the file).
        m.advise_dontneed(0, data.len());
        m.advise_need(0, data.len());
        assert_eq!(m.mapped().unwrap(), &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn mmap_pager_empty_file() {
        let path = fixture("empty.bin", &[]);
        let m = mmap::MmapPager::open(&path).unwrap();
        assert_eq!(m.len(), 0);
        assert_eq!(m.mapped(), Some(&[][..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_prefers_richest_backend() {
        let data = pattern(64);
        let path = fixture("auto.bin", &data);
        let p = new_pager(PagerKind::Auto, &path).unwrap();
        let expected = if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            "mmap"
        } else {
            "file"
        };
        // Unless the environment overrides the choice.
        if std::env::var("F3M_PAGER").is_err() {
            assert_eq!(p.backend_name(), expected);
        }
        let mut buf = vec![0u8; 64];
        p.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forced_file_backend_is_honored() {
        let data = pattern(64);
        let path = fixture("forced.bin", &data);
        let p = new_pager(PagerKind::File, &path).unwrap();
        if std::env::var("F3M_PAGER").is_err() {
            assert_eq!(p.backend_name(), "file");
        }
        std::fs::remove_file(&path).ok();
    }
}
