//! Adaptive parameter selection (Section III-D).
//!
//! Small programs merge cheaply, so missing a profitable pair hurts more
//! than attempting a wasteful one; huge programs are the opposite. The
//! paper therefore scales the similarity threshold `t` with the number of
//! functions `x` (Equation 3) and derives the band count `b` from `t`
//! (Equation 4), keeping `r = 2` and `k = b × r`.

use crate::backend::BackendKind;
use crate::lsh::LshParams;
use crate::minhash::DEFAULT_K;

/// Full parameter set for one run of the merging pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeParams {
    /// Signature size `k` (slots per function fingerprint).
    pub k: usize,
    /// LSH banding configuration.
    pub lsh: LshParams,
    /// Minimum estimated similarity for a pair to be aligned.
    pub threshold: f64,
    /// Fingerprint family producing the signatures.
    pub backend: BackendKind,
    /// Extra multi-probe LSH perturbations per query (0 = classic
    /// single-probe). A query-time knob: it changes which buckets are
    /// *looked at*, never what is stored, so it is not part of the
    /// snapshot header and two corpora differing only in `probes` are
    /// snapshot-compatible.
    pub probes: usize,
}

impl MergeParams {
    /// The paper's *static* configuration:
    /// `k = 200, r = 2, b = 100, t = 0.0`, bucket cap 100, MinHash.
    pub fn static_default() -> MergeParams {
        MergeParams {
            k: DEFAULT_K,
            lsh: LshParams { rows: 2, bands: DEFAULT_K / 2, bucket_cap: 100 },
            threshold: 0.0,
            backend: BackendKind::MinHash,
            probes: 0,
        }
    }

    /// The paper's *adaptive* configuration for a program with
    /// `num_functions` functions: threshold from Equation 3, bands from
    /// Equation 4 (exactly 100 for programs under 5000 functions),
    /// `r = 2`, `k = 2b`.
    pub fn adaptive(num_functions: usize) -> MergeParams {
        let threshold = adaptive_threshold(num_functions);
        let bands = if num_functions < 5000 { 100 } else { adaptive_bands(threshold) };
        MergeParams {
            k: 2 * bands,
            lsh: LshParams { rows: 2, bands, bucket_cap: 100 },
            threshold,
            backend: BackendKind::MinHash,
            probes: 0,
        }
    }

    /// A custom configuration (used by the parameter-sweep benches).
    pub fn custom(k: usize, rows: usize, threshold: f64, bucket_cap: usize) -> MergeParams {
        assert!(rows > 0 && k >= rows, "need at least one band");
        MergeParams {
            k,
            lsh: LshParams { rows, bands: k / rows, bucket_cap },
            threshold,
            backend: BackendKind::MinHash,
            probes: 0,
        }
    }

    /// The same parameters with a different fingerprint family.
    pub fn with_backend(self, backend: BackendKind) -> MergeParams {
        MergeParams { backend, ..self }
    }

    /// The same parameters with a multi-probe budget.
    pub fn with_probes(self, probes: usize) -> MergeParams {
        MergeParams { probes, ..self }
    }
}

/// Equation 3: the adaptive similarity threshold.
///
/// ```text
/// t = 0.05                      if x < 10^3.5
///     (log10(x) - 3.0) / 10     if 10^3.5 <= x <= 10^7
///     0.4                       if x > 10^7
/// ```
pub fn adaptive_threshold(num_functions: usize) -> f64 {
    let x = num_functions.max(1) as f64;
    let log = x.log10();
    if log < 3.5 {
        0.05
    } else if log > 7.0 {
        0.4
    } else {
        (log - 3.0) / 10.0
    }
}

/// Equation 4: bands needed for ≥90% probability of discovering pairs just
/// above the threshold, with `r = 2`:
///
/// ```text
/// b = ceil( log(0.1) / log(1 - (t + 0.1)^2) )
/// ```
pub fn adaptive_bands(threshold: f64) -> usize {
    let s = (threshold + 0.1).min(0.999);
    let denom = (1.0 - s * s).ln();
    ((0.1f64).ln() / denom).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::collision_probability;

    #[test]
    fn threshold_endpoints_match_paper() {
        assert_eq!(adaptive_threshold(100), 0.05);
        assert_eq!(adaptive_threshold(3000), 0.05);
        assert!((adaptive_threshold(10_000) - 0.1).abs() < 1e-9);
        assert!((adaptive_threshold(100_000) - 0.2).abs() < 1e-9);
        assert!((adaptive_threshold(1_000_000) - 0.3).abs() < 1e-9);
        assert_eq!(adaptive_threshold(100_000_000), 0.4);
    }

    #[test]
    fn bands_match_paper_examples() {
        // "57 for programs with 10k functions, 25 for 100k, 14 for 1m".
        assert_eq!(adaptive_bands(adaptive_threshold(10_000)), 57);
        assert_eq!(adaptive_bands(adaptive_threshold(100_000)), 25);
        assert_eq!(adaptive_bands(adaptive_threshold(1_000_000)), 14);
    }

    #[test]
    fn small_programs_use_full_bands() {
        let p = MergeParams::adaptive(1000);
        assert_eq!(p.lsh.bands, 100);
        assert_eq!(p.k, 200);
        assert_eq!(p.threshold, 0.05);
    }

    #[test]
    fn adaptive_meets_discovery_guarantee() {
        // By construction: pairs slightly above the threshold are found
        // with >= 90% probability.
        for n in [10_000usize, 50_000, 100_000, 1_000_000] {
            let p = MergeParams::adaptive(n);
            let s = p.threshold + 0.1;
            let prob = collision_probability(s, p.lsh.rows, p.lsh.bands);
            assert!(prob >= 0.9, "n={n}: p={prob}");
        }
    }

    #[test]
    fn static_default_matches_paper() {
        let p = MergeParams::static_default();
        assert_eq!(p.k, 200);
        assert_eq!(p.lsh.rows, 2);
        assert_eq!(p.lsh.bands, 100);
        assert_eq!(p.threshold, 0.0);
        assert_eq!(p.lsh.bucket_cap, 100);
    }

    #[test]
    fn bands_shrink_for_large_programs() {
        let small = MergeParams::adaptive(1_000);
        let large = MergeParams::adaptive(1_000_000);
        assert!(large.lsh.bands < small.lsh.bands);
        assert!(large.k < small.k);
        assert!(large.threshold > small.threshold);
    }

    #[test]
    fn custom_params_divide_k_into_bands() {
        let p = MergeParams::custom(64, 4, 0.2, 50);
        assert_eq!(p.lsh.bands, 16);
        assert_eq!(p.lsh.rows, 4);
        assert_eq!(p.lsh.fingerprint_size(), 64);
    }
}
