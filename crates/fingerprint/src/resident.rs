//! Lazy, budgeted residency for snapshot SoA pools.
//!
//! [`ResidentStore`] is the read side of a
//! [`PackedFingerprintStore`](crate::store::PackedFingerprintStore)
//! served straight from a snapshot file instead of from anonymous
//! memory. The pools never get bulk-read at open: the store validates
//! the snapshot's meta prefix ([`open_snapshot_meta`]), attaches a
//! [`Pager`] over the file, and faults pool bytes in *per shard* the
//! first time a query touches a row in that shard. A restart costs
//! O(meta) + O(rows actually touched), not O(total pool bytes).
//!
//! ## Shards, faults, spills
//!
//! Rows are partitioned into fixed row-range shards of roughly
//! [`TARGET_SHARD_BYTES`] each — the residency granule. A `--resident-
//! budget` caps the sum of logical shard bytes kept hot; exceeding it
//! spills least-recently-used cold shards:
//!
//! - mmap pager: spill = `madvise(MADV_DONTNEED)` over the shard's
//!   whole-granule interior. On a read-only file-backed mapping that
//!   only drops clean pages from RSS; a later touch refaults from the
//!   file, so outstanding zero-copy slices remain valid.
//! - file pager: spill = dropping the shard's heap buffer (readers that
//!   are mid-row hold an `Arc` clone, so their view stays alive until
//!   they finish).
//!
//! The shard just touched is never the victim, so a budget smaller than
//! one shard degrades to "exactly one hot shard", never a livelock.
//!
//! ## Counter determinism
//!
//! `resident_bytes` / `shard_faults` / `shard_spills` count *manager
//! decisions* in logical pool bytes, not kernel page state — so for a
//! given access sequence they are byte-identical across pager backends
//! and across runs, which is what lets the regression gate band them.

use std::marker::PhantomData;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::lsh::BandKey;
use crate::pager::{new_pager, Pager, PagerKind};
use crate::snapshot::{open_snapshot_meta, SnapshotError, SnapshotMeta};

/// Aimed-for shard size in pool bytes. Small enough that a spill frees
/// memory in useful increments, large enough that the per-shard
/// bookkeeping and fault syscalls amortize.
pub const TARGET_SHARD_BYTES: usize = 256 << 10;

/// A snapshot of the residency counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyCounters {
    /// Logical pool bytes currently resident (sum over hot shards).
    pub resident_bytes: u64,
    /// Shards faulted in since open.
    pub shard_faults: u64,
    /// Shards spilled to enforce the budget since open.
    pub shard_spills: u64,
}

/// Heap copy of one shard's rows (file-pager path).
struct ShardBuf {
    sigs: Vec<u64>,
    keys: Vec<u32>,
}

enum ShardState {
    /// Not resident; first touch faults it in.
    Absent,
    /// Served zero-copy from the pager's mapping.
    Mapped,
    /// Served from a heap buffer (no mapping available).
    Buffered(Arc<ShardBuf>),
}

struct ResidencyState {
    shards: Vec<ShardState>,
    /// Tick of the last touch, per shard; 0 = never.
    last_used: Vec<u64>,
    tick: u64,
    counters: ResidencyCounters,
}

/// A packed fingerprint store whose pools live in a snapshot file and
/// become resident on demand, under an optional byte budget.
pub struct ResidentStore {
    k: usize,
    bands: usize,
    entries: usize,
    /// Absolute file offset of the signature pool.
    sig_off: usize,
    /// Absolute file offset of the band-key pool.
    key_off: usize,
    rows_per_shard: usize,
    /// 0 = unlimited.
    budget_bytes: u64,
    pager: Box<dyn Pager>,
    state: Mutex<ResidencyState>,
}

/// Zero-copy view of one row's signature and band keys. Holds the
/// backing shard buffer alive on the buffered path; on the mapped path
/// the store's mapping outlives `'a` by construction.
pub struct RowRef<'a> {
    sig_ptr: *const u64,
    key_ptr: *const u32,
    k: usize,
    bands: usize,
    _buf: Option<Arc<ShardBuf>>,
    _store: PhantomData<&'a ResidentStore>,
}

impl RowRef<'_> {
    /// The row's `k` signature slots.
    pub fn sig(&self) -> &[u64] {
        unsafe { std::slice::from_raw_parts(self.sig_ptr, self.k) }
    }
    /// The row's `bands` band keys.
    pub fn keys(&self) -> &[BandKey] {
        unsafe { std::slice::from_raw_parts(self.key_ptr, self.bands) }
    }
}

impl ResidentStore {
    /// Opens `path` for lazy serving: validates the meta prefix (header
    /// checksum, bucket directory, payload — but no pool bytes), checks
    /// the file length against the header's implied geometry, and
    /// attaches a pager. `budget_bytes == 0` means unlimited.
    pub fn open(
        path: &Path,
        kind: PagerKind,
        budget_bytes: u64,
    ) -> Result<(SnapshotMeta, ResidentStore), SnapshotError> {
        let meta = open_snapshot_meta(path)?;
        let pager = new_pager(kind, path)?;
        if pager.len() != meta.layout.file_len {
            // The file changed between the meta read and the map; the
            // save path is atomic-rename, so this means a torn writer.
            return Err(SnapshotError::Truncated);
        }
        let store = ResidentStore::from_meta(&meta, pager, budget_bytes);
        Ok((meta, store))
    }

    fn from_meta(meta: &SnapshotMeta, pager: Box<dyn Pager>, budget_bytes: u64) -> ResidentStore {
        let k = meta.header.k;
        let bands = meta.header.lsh.bands;
        let entries = meta.header.entries;
        let bytes_per_fn = 8 * k + 4 * bands;
        let rows_per_shard = (TARGET_SHARD_BYTES / bytes_per_fn).max(1);
        let num_shards = entries.div_ceil(rows_per_shard);
        ResidentStore {
            k,
            bands,
            entries,
            sig_off: meta.layout.pool_start,
            key_off: meta.layout.pool_start + meta.layout.sig_pool_bytes,
            rows_per_shard,
            budget_bytes,
            pager,
            state: Mutex::new(ResidencyState {
                shards: (0..num_shards).map(|_| ShardState::Absent).collect(),
                last_used: vec![0; num_shards],
                tick: 0,
                counters: ResidencyCounters::default(),
            }),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries
    }
    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
    /// Signature slots per row.
    pub fn k(&self) -> usize {
        self.k
    }
    /// Band keys per row.
    pub fn bands(&self) -> usize {
        self.bands
    }
    /// Logical bytes per row.
    pub fn bytes_per_fn(&self) -> usize {
        8 * self.k + 4 * self.bands
    }
    /// Residency granule in rows.
    pub fn rows_per_shard(&self) -> usize {
        self.rows_per_shard
    }
    /// Number of residency shards.
    pub fn num_shards(&self) -> usize {
        self.state.lock().unwrap().shards.len()
    }
    /// The attached pager's backend name (`"mmap"` / `"file"`).
    pub fn pager_name(&self) -> &'static str {
        self.pager.backend_name()
    }
    /// The configured budget (0 = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }
    /// Current counter values.
    pub fn counters(&self) -> ResidencyCounters {
        self.state.lock().unwrap().counters
    }

    /// Row range `[start, end)` of `shard`.
    fn shard_rows(&self, shard: usize) -> (usize, usize) {
        let start = shard * self.rows_per_shard;
        (start, (start + self.rows_per_shard).min(self.entries))
    }

    /// Logical pool bytes of `shard`.
    fn shard_bytes(&self, shard: usize) -> u64 {
        let (start, end) = self.shard_rows(shard);
        ((end - start) * self.bytes_per_fn()) as u64
    }

    /// File ranges of `shard`'s slices of the two pools.
    fn shard_ranges(&self, shard: usize) -> ((usize, usize), (usize, usize)) {
        let (start, end) = self.shard_rows(shard);
        let n = end - start;
        (
            (self.sig_off + start * self.k * 8, n * self.k * 8),
            (self.key_off + start * self.bands * 4, n * self.bands * 4),
        )
    }

    fn fault(&self, st: &mut ResidencyState, shard: usize) {
        let ((sig_off, sig_len), (key_off, key_len)) = self.shard_ranges(shard);
        st.shards[shard] = if self.pager.mapped().is_some() {
            self.pager.advise_need(sig_off, sig_len);
            self.pager.advise_need(key_off, key_len);
            ShardState::Mapped
        } else {
            let mut raw = vec![0u8; sig_len];
            // The geometry was validated at open; a failed read here is
            // real I/O loss mid-serving, as unrecoverable as a SIGBUS
            // would be on the mapped path.
            self.pager.read_at(sig_off as u64, &mut raw).expect("snapshot sig pool read");
            let sigs = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let mut raw = vec![0u8; key_len];
            self.pager.read_at(key_off as u64, &mut raw).expect("snapshot key pool read");
            let keys = raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            ShardState::Buffered(Arc::new(ShardBuf { sigs, keys }))
        };
        st.counters.resident_bytes += self.shard_bytes(shard);
        st.counters.shard_faults += 1;
    }

    fn spill(&self, st: &mut ResidencyState, shard: usize) {
        match std::mem::replace(&mut st.shards[shard], ShardState::Absent) {
            ShardState::Absent => unreachable!("spilling an absent shard"),
            ShardState::Mapped => {
                let ((sig_off, sig_len), (key_off, key_len)) = self.shard_ranges(shard);
                self.pager.advise_dontneed(sig_off, sig_len);
                self.pager.advise_dontneed(key_off, key_len);
            }
            // Dropping the store's Arc frees the buffer once in-flight
            // RowRefs release their clones.
            ShardState::Buffered(_) => {}
        }
        st.counters.resident_bytes -= self.shard_bytes(shard);
        st.counters.shard_spills += 1;
    }

    /// Evicts LRU shards (never `protect`) until the budget holds.
    fn enforce_budget(&self, st: &mut ResidencyState, protect: usize) {
        if self.budget_bytes == 0 {
            return;
        }
        while st.counters.resident_bytes > self.budget_bytes {
            let victim = st
                .shards
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != protect && !matches!(s, ShardState::Absent))
                .min_by_key(|(i, _)| st.last_used[*i])
                .map(|(i, _)| i);
            match victim {
                Some(v) => self.spill(st, v),
                None => break,
            }
        }
    }

    /// Access to row `i`'s signature and band keys, faulting its shard
    /// in (and spilling cold shards) as needed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> RowRef<'_> {
        assert!(i < self.entries, "row {i} out of range ({} entries)", self.entries);
        let shard = i / self.rows_per_shard;
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        st.last_used[shard] = st.tick;
        if matches!(st.shards[shard], ShardState::Absent) {
            self.fault(&mut st, shard);
            self.enforce_budget(&mut st, shard);
        }
        match &st.shards[shard] {
            ShardState::Mapped => {
                // Safety: the mapping spans the whole validated file and
                // lives as long as `self`; `pool_start` is 8-aligned in
                // the v2 format and the base is page-aligned, so the
                // u64 view is aligned.
                let base = self.pager.mapped().unwrap().as_ptr();
                let sig_ptr = unsafe { base.add(self.sig_off + i * self.k * 8) } as *const u64;
                debug_assert_eq!(sig_ptr as usize % 8, 0, "sig pool misaligned");
                let key_ptr = unsafe { base.add(self.key_off + i * self.bands * 4) } as *const u32;
                RowRef {
                    sig_ptr,
                    key_ptr,
                    k: self.k,
                    bands: self.bands,
                    _buf: None,
                    _store: PhantomData,
                }
            }
            ShardState::Buffered(buf) => {
                let local = i - shard * self.rows_per_shard;
                let buf = Arc::clone(buf);
                let sig_ptr = buf.sigs[local * self.k..].as_ptr();
                let key_ptr = buf.keys[local * self.bands..].as_ptr();
                RowRef {
                    sig_ptr,
                    key_ptr,
                    k: self.k,
                    bands: self.bands,
                    _buf: Some(buf),
                    _store: PhantomData,
                }
            }
            ShardState::Absent => unreachable!("shard faulted above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::lsh::{band_keys_for, LshParams};
    use crate::minhash::MinHashFingerprint;
    use crate::snapshot::{save_snapshot, SnapshotHeader};
    use crate::store::PackedFingerprintStore;

    fn build_snapshot(n: u32, name: &str) -> (std::path::PathBuf, PackedFingerprintStore) {
        let p = LshParams { rows: 2, bands: 16, bucket_cap: 100 };
        let mut store = PackedFingerprintStore::with_capacity(32, p.bands, n as usize);
        for i in 0..n {
            let stream: Vec<u32> = (i % 7..i % 7 + 40).collect();
            let sig = MinHashFingerprint::of_encoded(&stream, 32).into_hashes();
            let keys = band_keys_for(p, &sig);
            store.push_with_keys(&sig, &keys);
        }
        let header = SnapshotHeader {
            backend: BackendKind::MinHash,
            k: 32,
            lsh: p,
            threshold: 0.25,
            shards: 4,
            epoch: 3,
            entries: n as usize,
        };
        let dir = std::env::temp_dir().join("f3m-resident-test");
        let path = dir.join(name);
        save_snapshot(&path, &header, &store, &[], b"payload").expect("save");
        (path, store)
    }

    fn kinds() -> Vec<PagerKind> {
        // Under an F3M_PAGER override every kind resolves to the same
        // backend; the comparisons below still hold.
        vec![PagerKind::File, PagerKind::Auto]
    }

    #[test]
    fn every_row_matches_the_packed_store() {
        let (path, packed) = build_snapshot(500, "parity.f3msnap");
        for kind in kinds() {
            let (meta, store) = ResidentStore::open(&path, kind, 0).expect("open");
            assert_eq!(meta.header.entries, 500);
            assert_eq!(store.len(), packed.len());
            for i in 0..store.len() {
                let row = store.row(i);
                assert_eq!(row.sig(), packed.sig(i), "sig row {i} ({kind})");
                assert_eq!(row.keys(), packed.keys(i), "keys row {i} ({kind})");
            }
            let c = store.counters();
            assert_eq!(c.shard_spills, 0, "unlimited budget never spills");
            assert_eq!(c.shard_faults as usize, store.num_shards());
            assert_eq!(
                c.resident_bytes as usize,
                store.len() * store.bytes_per_fn(),
                "everything resident"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_budget_spills_but_stays_correct() {
        let (path, packed) = build_snapshot(5_000, "budget.f3msnap");
        for kind in kinds() {
            // Budget ≈ two shards: touching every row front-to-back and
            // then again must spill, and every read must still agree.
            let (_, store) = ResidentStore::open(&path, kind, 2 * TARGET_SHARD_BYTES as u64)
                .expect("open");
            assert!(store.num_shards() > 3, "workload must span several shards");
            for pass in 0..2 {
                for i in 0..store.len() {
                    let row = store.row(i);
                    assert_eq!(row.sig(), packed.sig(i), "pass {pass} row {i} ({kind})");
                    assert_eq!(row.keys(), packed.keys(i), "pass {pass} row {i} ({kind})");
                }
            }
            let c = store.counters();
            assert!(c.shard_spills > 0, "tiny budget must spill ({kind})");
            assert!(
                c.resident_bytes <= 2 * TARGET_SHARD_BYTES as u64,
                "budget enforced ({kind}): {} resident",
                c.resident_bytes
            );
            assert!(c.shard_faults > store.num_shards() as u64, "refaults happened");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counters_are_identical_across_pager_backends() {
        let (path, _) = build_snapshot(1_500, "counters.f3msnap");
        // A fixed, mildly adversarial access sequence.
        let seq: Vec<usize> = (0..3_000).map(|i| (i * 977) % 1_500).collect();
        let mut seen: Option<ResidencyCounters> = None;
        for kind in kinds() {
            let (_, store) =
                ResidentStore::open(&path, kind, TARGET_SHARD_BYTES as u64).expect("open");
            for &i in &seq {
                let _ = store.row(i);
            }
            let c = store.counters();
            match &seen {
                None => seen = Some(c),
                Some(prev) => assert_eq!(*prev, c, "counters diverge across pagers"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_smaller_than_one_shard_keeps_exactly_the_hot_shard() {
        let (path, packed) = build_snapshot(1_000, "onehot.f3msnap");
        let (_, store) = ResidentStore::open(&path, PagerKind::File, 1).expect("open");
        for i in [0usize, 999, 1, 998, 500] {
            let row = store.row(i);
            assert_eq!(row.sig(), packed.sig(i));
        }
        let c = store.counters();
        let hot = 500 / store.rows_per_shard();
        assert_eq!(c.resident_bytes, store.shard_bytes(hot), "exactly one shard stays hot");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join("f3m-resident-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.f3msnap");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(ResidentStore::open(&path, PagerKind::Auto, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
