//! MinHash fingerprints over instruction shingles.
//!
//! Section III-B of the paper: the encoded instruction stream is split into
//! overlapping shingles of length `K = 2`; each shingle is hashed with
//! FNV-1a, and `k` hash functions are derived by xor-ing the single FNV
//! value with `k` fixed random constants. The fingerprint keeps the minimum
//! of each derived hash over all shingles. The fraction of equal fingerprint
//! slots estimates the Jaccard index of the shingle sets within
//! `O(1/sqrt(k))`.

use std::collections::HashSet;

use crate::fnv::{fnv1a_u32s, xor_constants};

/// Shingle length used throughout the paper (`K = 2`).
pub const SHINGLE_LEN: usize = 2;

/// Default fingerprint size (`k = 200`).
pub const DEFAULT_K: usize = 200;

/// A MinHash fingerprint: `k` minima, one per derived hash function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashFingerprint {
    hashes: Vec<u64>,
}

impl MinHashFingerprint {
    /// Builds a fingerprint of size `k` from an encoded instruction stream.
    ///
    /// Functions shorter than [`SHINGLE_LEN`] contribute a single shingle
    /// covering the whole stream, so every non-empty function has a
    /// well-defined fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn of_encoded(encoded: &[u32], k: usize) -> MinHashFingerprint {
        assert!(k > 0, "fingerprint size must be positive");
        Self::of_encoded_with(&xor_constants(k), encoded)
    }

    /// Like [`MinHashFingerprint::of_encoded`] but with the xor constants
    /// supplied by the caller. Building fingerprints for a whole module
    /// derives the constants once and shares them across every function
    /// (and every worker thread) instead of re-deriving `k` constants per
    /// fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if `consts` is empty.
    pub fn of_encoded_with(consts: &[u64], encoded: &[u32]) -> MinHashFingerprint {
        let k = consts.len();
        assert!(k > 0, "fingerprint size must be positive");
        let mut hashes = vec![u64::MAX; k];
        for base in shingle_hashes(encoded) {
            for (slot, &c) in hashes.iter_mut().zip(consts.iter()) {
                let h = base ^ c;
                if h < *slot {
                    *slot = h;
                }
            }
        }
        MinHashFingerprint { hashes }
    }

    /// Fingerprint size `k`.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the fingerprint has no slots (never true for `k > 0`).
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Raw fingerprint slots (used by the LSH banding scheme).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Consumes the fingerprint, yielding its slots without a copy (the
    /// backend seam stores bare signature words).
    pub fn into_hashes(self) -> Vec<u64> {
        self.hashes
    }

    /// Estimated Jaccard similarity: the fraction of equal slots.
    ///
    /// # Panics
    ///
    /// Panics if the fingerprints have different sizes.
    pub fn similarity(&self, other: &MinHashFingerprint) -> f64 {
        assert_eq!(self.hashes.len(), other.hashes.len(), "fingerprint size mismatch");
        let equal = self
            .hashes
            .iter()
            .zip(other.hashes.iter())
            .filter(|(a, b)| a == b)
            .count();
        equal as f64 / self.hashes.len() as f64
    }

    /// Estimated Jaccard distance (`1 - similarity`).
    pub fn distance(&self, other: &MinHashFingerprint) -> f64 {
        1.0 - self.similarity(other)
    }
}

/// The FNV-1a hash of every shingle in the stream (multiset, in order).
pub fn shingle_hashes(encoded: &[u32]) -> Vec<u64> {
    if encoded.is_empty() {
        return Vec::new();
    }
    if encoded.len() < SHINGLE_LEN {
        return vec![fnv1a_u32s(encoded)];
    }
    encoded
        .windows(SHINGLE_LEN)
        .map(fnv1a_u32s)
        .collect()
}

/// Exact Jaccard index of the two functions' shingle *sets* — the quantity
/// MinHash estimates. Linear in the function sizes; used by tests and the
/// Figure 10 ground-truth comparison, not by the merging pass itself.
pub fn exact_jaccard(a: &[u32], b: &[u32]) -> f64 {
    let sa: HashSet<u64> = shingle_hashes(a).into_iter().collect();
    let sb: HashSet<u64> = shingle_hashes(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(vals: &[u32]) -> Vec<u32> {
        vals.to_vec()
    }

    #[test]
    fn identical_streams_have_similarity_one() {
        let s = stream(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = MinHashFingerprint::of_encoded(&s, 64);
        let b = MinHashFingerprint::of_encoded(&s, 64);
        assert_eq!(a.similarity(&b), 1.0);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn disjoint_streams_have_similarity_near_zero() {
        let a = MinHashFingerprint::of_encoded(&stream(&[1, 2, 3, 4, 5, 6]), 128);
        let b = MinHashFingerprint::of_encoded(&stream(&[101, 102, 103, 104, 105, 106]), 128);
        assert!(a.similarity(&b) < 0.1, "{}", a.similarity(&b));
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        // Two streams sharing half their shingles.
        let mut a: Vec<u32> = (0..40).collect();
        let mut b: Vec<u32> = (20..60).collect();
        a.push(999);
        b.push(999);
        let exact = exact_jaccard(&a, &b);
        let k = 400;
        let fa = MinHashFingerprint::of_encoded(&a, k);
        let fb = MinHashFingerprint::of_encoded(&b, k);
        let est = fa.similarity(&fb);
        // O(1/sqrt(k)) error bound, with slack for the shared-xor trick.
        let tol = 3.0 / (k as f64).sqrt();
        assert!(
            (est - exact).abs() < tol,
            "estimate {est:.3} vs exact {exact:.3} (tol {tol:.3})"
        );
    }

    #[test]
    fn single_instruction_functions_are_fingerprintable() {
        let a = MinHashFingerprint::of_encoded(&stream(&[7]), 16);
        let b = MinHashFingerprint::of_encoded(&stream(&[7]), 16);
        let c = MinHashFingerprint::of_encoded(&stream(&[8]), 16);
        assert_eq!(a.similarity(&b), 1.0);
        assert!(a.similarity(&c) < 1.0);
    }

    #[test]
    fn empty_stream_yields_max_slots() {
        let a = MinHashFingerprint::of_encoded(&[], 8);
        assert!(a.hashes().iter().all(|&h| h == u64::MAX));
    }

    #[test]
    fn small_edit_small_similarity_drop() {
        // Mirrors Figure 7: one extra "instruction" inside the stream only
        // perturbs the shingles that overlap it.
        let a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        b.insert(25, 999);
        let fa = MinHashFingerprint::of_encoded(&a, 256);
        let fb = MinHashFingerprint::of_encoded(&b, 256);
        let sim = fa.similarity(&fb);
        assert!(sim > 0.8, "one insertion keeps most shingles: {sim}");
        assert!(sim < 1.0);
    }

    #[test]
    fn exact_jaccard_bounds() {
        let a: Vec<u32> = (0..10).collect();
        assert_eq!(exact_jaccard(&a, &a), 1.0);
        let b: Vec<u32> = (100..110).collect();
        assert_eq!(exact_jaccard(&a, &b), 0.0);
        assert_eq!(exact_jaccard(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let a = MinHashFingerprint::of_encoded(&[1, 2, 3], 8);
        let b = MinHashFingerprint::of_encoded(&[1, 2, 3], 16);
        let _ = a.similarity(&b);
    }

    #[test]
    fn shared_constants_constructor_is_equivalent() {
        let s = stream(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let k = 64;
        let consts = crate::fnv::xor_constants(k);
        assert_eq!(
            MinHashFingerprint::of_encoded(&s, k),
            MinHashFingerprint::of_encoded_with(&consts, &s)
        );
    }

    #[test]
    fn larger_k_reduces_estimation_error() {
        let a: Vec<u32> = (0..60).collect();
        let b: Vec<u32> = (30..90).collect();
        let exact = exact_jaccard(&a, &b);
        let err = |k: usize| {
            let fa = MinHashFingerprint::of_encoded(&a, k);
            let fb = MinHashFingerprint::of_encoded(&b, k);
            (fa.similarity(&fb) - exact).abs()
        };
        // Average over a few ks to smooth noise; big-k family should be
        // no worse than the small-k family.
        let small = (err(16) + err(24) + err(32)) / 3.0;
        let big = (err(512) + err(768) + err(1024)) / 3.0;
        assert!(big <= small + 0.05, "big-k error {big:.3} vs small-k {small:.3}");
    }
}
