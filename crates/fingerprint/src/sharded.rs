//! A sharded, epoch-versioned wrapper around [`LshIndex`] for resident
//! (daemon) use.
//!
//! The band-key space is split into `n` contiguous ranges, each owning a
//! private [`LshIndex`] behind its own `RwLock`, so ingest into one shard
//! and queries against others proceed concurrently. A key `k` lives in
//! shard `⌊k·n / 2³²⌋` — a multiply-shift that partitions the 32-bit
//! [`BandKey`] space into equal contiguous ranges without division.
//!
//! **Shard-transparency invariant:** because each band key is owned by
//! exactly one shard, probing the owning shard per key reproduces the
//! bucket contents — and therefore the candidate list, the `bucket_cap`
//! truncation, and the examined/evicted counts — of a single unsharded
//! [`LshIndex`] holding the same entries. Tests pin this equivalence.
//!
//! Visibility is versioned by a monotonically increasing **epoch**. A
//! writer inserts (or removes) entries first and bumps the epoch last;
//! readers pin [`ShardedLshIndex::epoch`] once and filter what they find
//! against per-entry epoch intervals kept by the caller (see
//! `f3m-core`'s corpus). The index itself stores only ids.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::lsh::{BandKey, LshIndex, LshParams, LshQueryStats, QueryScratch};

/// Occupancy counters for one shard, surfaced through the daemon's
/// `stats` response and the server metrics registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Non-empty buckets in this shard.
    pub num_buckets: usize,
    /// Size of the fullest bucket (0 when empty).
    pub max_bucket_size: usize,
    /// Total bucket entries (an item counts once per resident band).
    pub entries: usize,
}

/// A fixed-width set of [`LshIndex`] shards plus the epoch counter.
///
/// All mutating operations take `&self`; interior locking keeps them safe
/// to call from server worker threads. Writers that must not interleave
/// batches (e.g. two module ingests) serialize *outside* this type — the
/// index only guarantees per-shard consistency and epoch monotonicity.
#[derive(Debug)]
pub struct ShardedLshIndex<T> {
    params: LshParams,
    shards: Vec<RwLock<LshIndex<T>>>,
    epoch: AtomicU64,
}

impl<T: Copy + Ord + Hash> ShardedLshIndex<T> {
    /// Creates an empty index with `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or the params are degenerate.
    pub fn new(params: LshParams, num_shards: usize) -> ShardedLshIndex<T> {
        assert!(num_shards > 0, "need at least one shard");
        let shards = (0..num_shards).map(|_| RwLock::new(LshIndex::new(params))).collect();
        ShardedLshIndex { params, shards, epoch: AtomicU64::new(0) }
    }

    /// The banding parameters shared by every shard.
    pub fn params(&self) -> LshParams {
        self.params
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning band key `key`: `⌊key·n / 2³²⌋`, i.e. contiguous
    /// equal-width key ranges.
    pub fn shard_of(&self, key: BandKey) -> usize {
        ((key as u64 * self.shards.len() as u64) >> 32) as usize
    }

    /// The epoch visible to readers right now.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes all prior writes under a new epoch and returns it.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Forces the epoch to `epoch` — used when restoring the index from a
    /// snapshot, so readers resume at the epoch the snapshot captured.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Inserts an item under pre-computed band keys (see
    /// [`crate::lsh::band_keys_for`]). Locks each touched shard once.
    pub fn insert_with_keys(&self, id: T, keys: &[BandKey]) {
        self.for_each_shard_batch(keys, |shard, batch| {
            let mut idx = shard.write().unwrap();
            idx.insert_with_keys(id, batch);
        });
    }

    /// Removes an item under pre-computed band keys. Cost is proportional
    /// to the item's band count — eviction never rebuilds anything.
    pub fn remove_with_keys(&self, id: T, keys: &[BandKey]) {
        self.for_each_shard_batch(keys, |shard, batch| {
            let mut idx = shard.write().unwrap();
            idx.remove_with_keys(id, batch);
        });
    }

    /// Groups `keys` by owning shard and invokes `f` once per touched
    /// shard with that shard's key batch, preserving relative key order.
    fn for_each_shard_batch(
        &self,
        keys: &[BandKey],
        mut f: impl FnMut(&RwLock<LshIndex<T>>, &[BandKey]),
    ) {
        let mut batches: Vec<Vec<BandKey>> = vec![Vec::new(); self.shards.len()];
        for &key in keys {
            batches[self.shard_of(key)].push(key);
        }
        for (s, batch) in batches.iter().enumerate() {
            if !batch.is_empty() {
                f(&self.shards[s], batch);
            }
        }
    }

    /// Distinct items currently resident in the buckets under `keys`, in
    /// ascending item order — the **band-collision neighborhood** of those
    /// keys. This is the dirty set an incremental caller must invalidate
    /// when entries under `keys` change: any item whose candidate list
    /// could be affected by the change shares at least one of these
    /// buckets, and is therefore in the returned set.
    pub fn members_of_keys(&self, keys: &[BandKey]) -> Vec<T> {
        let mut members: Vec<T> = Vec::new();
        self.for_each_shard_batch(keys, |shard, batch| {
            let idx = shard.read().unwrap();
            for &key in batch {
                if let Some(bucket) = idx.probe_key(key) {
                    members.extend_from_slice(bucket);
                }
            }
        });
        members.sort_unstable();
        members.dedup();
        members
    }

    /// Applies a batch of removals then insertions and returns the union
    /// of the band-collision neighborhoods touched — every item (old or
    /// new) that shared a bucket with any removed or inserted key, before
    /// or after the change. The set is sorted and deduplicated.
    ///
    /// This is the delta primitive behind incremental corpus updates: a
    /// single-function edit removes the function's old band keys, inserts
    /// its new ones, and must invalidate exactly the returned set — the
    /// function itself plus its (old and new) bucket neighbors — instead
    /// of evicting and re-indexing a whole module.
    ///
    /// The caller is responsible for serializing batches against other
    /// writers (as with [`Self::insert_with_keys`]) and for bumping the
    /// epoch afterwards.
    pub fn apply_delta(
        &self,
        removes: &[(T, Vec<BandKey>)],
        inserts: &[(T, Vec<BandKey>)],
    ) -> Vec<T> {
        let touched: Vec<BandKey> = removes
            .iter()
            .chain(inserts.iter())
            .flat_map(|(_, keys)| keys.iter().copied())
            .collect();
        // Neighborhood *before*: catches items co-bucketed with removed
        // keys (including the removed items themselves).
        let mut dirty = self.members_of_keys(&touched);
        for (id, keys) in removes {
            self.remove_with_keys(*id, keys);
        }
        for (id, keys) in inserts {
            self.insert_with_keys(*id, keys);
        }
        // Neighborhood *after*: catches items co-bucketed with inserted
        // keys (including the inserted items themselves).
        dirty.extend(self.members_of_keys(&touched));
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Distinct candidates sharing at least one band with the querier,
    /// with the same bucket-cap truncation, self-exclusion, dedup and
    /// work counting as [`LshIndex::candidates_counted`] — probing each
    /// key's owning shard under a read lock.
    ///
    /// Keys are visited in band order, so the output order matches the
    /// unsharded implementation exactly.
    pub fn candidates_counted(&self, keys: &[BandKey], exclude: T) -> (Vec<T>, LshQueryStats) {
        let mut scratch = QueryScratch::new();
        let stats = self.probe_keys_into(keys, exclude, &mut scratch);
        (scratch.out, stats)
    }

    /// The allocation-free variant of [`Self::candidates_counted`]:
    /// candidates are left in `scratch.out`, and a warm scratch answers
    /// the query without allocating.
    pub fn probe_keys_into(
        &self,
        keys: &[BandKey],
        exclude: T,
        scratch: &mut QueryScratch<T>,
    ) -> LshQueryStats {
        scratch.reset();
        let mut stats = LshQueryStats::default();
        for &key in keys {
            let shard = self.shards[self.shard_of(key)].read().unwrap();
            if let Some(bucket) = shard.probe_key(key) {
                stats.evicted += bucket.len().saturating_sub(self.params.bucket_cap);
                for &item in bucket.iter().take(self.params.bucket_cap) {
                    if item == exclude {
                        continue;
                    }
                    stats.examined += 1;
                    if scratch.seen.insert(item) {
                        scratch.out.push(item);
                    } else {
                        stats.collisions += 1;
                    }
                }
            }
        }
        stats
    }

    /// All buckets of one shard as `(key, sorted members)`, ordered by
    /// key — the snapshot writer's per-shard serialization unit.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn export_shard(&self, shard: usize) -> Vec<(BandKey, Vec<T>)> {
        self.shards[shard].read().unwrap().export_buckets()
    }

    /// Installs one whole bucket as restored from a snapshot. The key is
    /// routed to its owning shard; `items` must be sorted and non-empty
    /// (validated by the snapshot loader).
    pub fn restore_bucket(&self, key: BandKey, items: Vec<T>) {
        self.shards[self.shard_of(key)].write().unwrap().restore_bucket(key, items);
    }

    /// Per-shard occupancy snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let idx = s.read().unwrap();
                ShardStats {
                    num_buckets: idx.num_buckets(),
                    max_bucket_size: idx.max_bucket_size(),
                    entries: idx.num_entries(),
                }
            })
            .collect()
    }

    /// Non-empty buckets across all shards.
    pub fn num_buckets(&self) -> usize {
        self.shard_stats().iter().map(|s| s.num_buckets).sum()
    }

    /// Fullest bucket across all shards.
    pub fn max_bucket_size(&self) -> usize {
        self.shard_stats().iter().map(|s| s.max_bucket_size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::band_keys_for;
    use crate::minhash::MinHashFingerprint;
    use std::sync::Arc;

    fn params() -> LshParams {
        LshParams { rows: 2, bands: 16, bucket_cap: 3 }
    }

    fn fp(seed: u32) -> Vec<u64> {
        let stream: Vec<u32> = (0..24).map(|i| i + seed % 7).collect();
        MinHashFingerprint::of_encoded(&stream, 32).hashes().to_vec()
    }

    /// Inserting the same items into 1..=5 shards yields identical
    /// candidate lists and work counts as a plain `LshIndex`.
    #[test]
    fn sharded_query_matches_unsharded_index() {
        let p = params();
        let items: Vec<(u32, Vec<u64>)> = (0..12).map(|i| (i, fp(i))).collect();
        let mut flat = LshIndex::new(p);
        for (id, f) in &items {
            flat.insert(*id, f);
        }
        for n in 1..=5 {
            let sharded = ShardedLshIndex::new(p, n);
            for (id, f) in &items {
                sharded.insert_with_keys(*id, &band_keys_for(p, f));
            }
            for (id, f) in &items {
                let keys = band_keys_for(p, f);
                assert_eq!(
                    sharded.candidates_counted(&keys, *id),
                    flat.candidates_counted(f, *id),
                    "shards={n} query={id}"
                );
            }
            let stats = sharded.shard_stats();
            assert_eq!(stats.iter().map(|s| s.num_buckets).sum::<usize>(), flat.num_buckets());
            assert_eq!(
                stats.iter().map(|s| s.max_bucket_size).max().unwrap(),
                flat.max_bucket_size()
            );
        }
    }

    #[test]
    fn remove_with_keys_matches_unsharded_removal() {
        let p = params();
        let items: Vec<(u32, Vec<u64>)> = (0..10).map(|i| (i, fp(i))).collect();
        let mut flat = LshIndex::new(p);
        let sharded = ShardedLshIndex::new(p, 4);
        for (id, f) in &items {
            flat.insert(*id, f);
            sharded.insert_with_keys(*id, &band_keys_for(p, f));
        }
        for (id, f) in items.iter().filter(|(id, _)| id % 2 == 0) {
            flat.remove(*id, f);
            sharded.remove_with_keys(*id, &band_keys_for(p, f));
        }
        for (id, f) in &items {
            let keys = band_keys_for(p, f);
            assert_eq!(sharded.candidates_counted(&keys, *id), flat.candidates_counted(f, *id));
        }
        assert_eq!(sharded.num_buckets(), flat.num_buckets());
    }

    #[test]
    fn shard_of_partitions_key_space_contiguously() {
        let idx: ShardedLshIndex<u32> = ShardedLshIndex::new(params(), 4);
        assert_eq!(idx.shard_of(0), 0);
        assert_eq!(idx.shard_of(u32::MAX), 3);
        // Monotone: higher keys never map to lower shards.
        let mut last = 0;
        for k in (0..u32::MAX - 1).step_by(u32::MAX as usize / 64) {
            let s = idx.shard_of(k);
            assert!(s >= last);
            assert!(s < 4);
            last = s;
        }
    }

    #[test]
    fn epoch_advances_monotonically() {
        let idx: ShardedLshIndex<u32> = ShardedLshIndex::new(params(), 2);
        assert_eq!(idx.epoch(), 0);
        assert_eq!(idx.advance_epoch(), 1);
        assert_eq!(idx.advance_epoch(), 2);
        assert_eq!(idx.epoch(), 2);
        idx.set_epoch(40);
        assert_eq!(idx.epoch(), 40);
    }

    /// `members_of_keys` returns exactly the items resident under the
    /// probed buckets, and `apply_delta` returns the union of old and new
    /// neighborhoods while leaving the index identical to direct
    /// removal + insertion.
    #[test]
    fn apply_delta_returns_collision_neighborhood() {
        let p = params();
        let items: Vec<(u32, Vec<u64>)> = (0..10).map(|i| (i, fp(i))).collect();
        let sharded = ShardedLshIndex::new(p, 3);
        for (id, f) in &items {
            sharded.insert_with_keys(*id, &band_keys_for(p, f));
        }
        // The neighborhood of an item's own keys contains at least itself.
        for (id, f) in &items {
            let members = sharded.members_of_keys(&band_keys_for(p, f));
            assert!(members.contains(id), "item {id} missing from its own neighborhood");
            assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
        }

        // Move item 3 to a new fingerprint via a delta.
        let old_keys = band_keys_for(p, &items[3].1);
        let new_fp = fp(3 + 100);
        let new_keys = band_keys_for(p, &new_fp);
        let before_old = sharded.members_of_keys(&old_keys);
        let dirty = sharded.apply_delta(
            &[(3u32, old_keys.clone())],
            &[(3u32, new_keys.clone())],
        );
        // The dirty set covers the item itself plus both neighborhoods.
        assert!(dirty.contains(&3));
        for m in before_old {
            assert!(dirty.contains(&m), "old neighbor {m} missing from dirty set");
        }
        for m in sharded.members_of_keys(&new_keys) {
            assert!(dirty.contains(&m), "new neighbor {m} missing from dirty set");
        }

        // The index state matches a from-scratch build with the new keys.
        let mut flat = LshIndex::new(p);
        for (id, f) in &items {
            if *id == 3 {
                flat.insert(*id, &new_fp);
            } else {
                flat.insert(*id, f);
            }
        }
        for (id, f) in &items {
            let f = if *id == 3 { &new_fp } else { f };
            let keys = band_keys_for(p, f);
            assert_eq!(sharded.candidates_counted(&keys, *id), flat.candidates_counted(f, *id));
        }
    }

    /// An item whose keys share no bucket with the delta is not dirtied —
    /// invalidation is O(neighborhood), not O(index).
    #[test]
    fn apply_delta_spares_disjoint_items() {
        let p = LshParams { rows: 2, bands: 4, bucket_cap: 8 };
        let sharded: ShardedLshIndex<u32> = ShardedLshIndex::new(p, 2);
        // Disjoint shingle streams → disjoint buckets.
        let far_stream: Vec<u32> = (5000..5024).collect();
        let far = MinHashFingerprint::of_encoded(&far_stream, 32).hashes().to_vec();
        let near = fp(1);
        let near_twin = fp(1);
        sharded.insert_with_keys(1, &band_keys_for(p, &near));
        sharded.insert_with_keys(9, &band_keys_for(p, &far));
        let dirty =
            sharded.apply_delta(&[], &[(2u32, band_keys_for(p, &near_twin))]);
        assert!(dirty.contains(&2));
        assert!(dirty.contains(&1), "co-bucketed twin must be dirtied");
        assert!(!dirty.contains(&9), "disjoint item must not be dirtied");
    }

    /// Export + restore over all shards reproduces the index exactly,
    /// even when shard counts differ between writer and reader.
    #[test]
    fn export_restore_roundtrip_across_shard_counts() {
        let p = params();
        let items: Vec<(u32, Vec<u64>)> = (0..12).map(|i| (i, fp(i))).collect();
        let source = ShardedLshIndex::new(p, 4);
        for (id, f) in &items {
            source.insert_with_keys(*id, &band_keys_for(p, f));
        }
        for n in 1..=5 {
            let restored: ShardedLshIndex<u32> = ShardedLshIndex::new(p, n);
            for s in 0..source.num_shards() {
                for (key, members) in source.export_shard(s) {
                    restored.restore_bucket(key, members);
                }
            }
            for (id, f) in &items {
                let keys = band_keys_for(p, f);
                assert_eq!(
                    restored.candidates_counted(&keys, *id),
                    source.candidates_counted(&keys, *id),
                    "restore shards={n} query={id}"
                );
            }
            assert_eq!(restored.num_buckets(), source.num_buckets());
        }
    }

    /// Concurrent ingest and query never panic, and every item committed
    /// before the final epoch is findable afterwards.
    #[test]
    fn concurrent_ingest_and_query_smoke() {
        let p = params();
        let idx: Arc<ShardedLshIndex<u32>> = Arc::new(ShardedLshIndex::new(p, 4));
        let writers: Vec<_> = (0..3u32)
            .map(|w| {
                let idx = Arc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let id = w * 100 + i;
                        idx.insert_with_keys(id, &band_keys_for(p, &fp(id)));
                        idx.advance_epoch();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u32)
            .map(|_| {
                let idx = Arc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let keys = band_keys_for(p, &fp(i));
                        let _ = idx.candidates_counted(&keys, u32::MAX);
                        let _ = idx.shard_stats();
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(idx.epoch(), 60);
        let (cands, _) = idx.candidates_counted(&band_keys_for(p, &fp(5)), u32::MAX);
        assert!(cands.contains(&5));
    }
}
