//! FNV-1a hashing.
//!
//! The paper (Section III-B) uses the FNV-1a variant of the
//! Fowler–Noll–Vo hash "for its robustness to permutations, computational
//! efficiency, widespread use in practice, and simple implementation", and
//! derives its `k` MinHash functions from a single FNV-1a evaluation xor-ed
//! with `k` random constants. This module reproduces both pieces.

/// 64-bit FNV offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice.
///
/// # Examples
///
/// ```
/// use f3m_fingerprint::fnv::fnv1a;
/// assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"), "order-sensitive");
/// assert_eq!(fnv1a(b""), 0xCBF29CE484222325, "empty input = offset basis");
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(FNV_OFFSET, bytes)
}

/// FNV-1a continuation: folds `bytes` into an existing hash state, so a
/// digest can cover discontiguous regions of a buffer (hash region A,
/// then feed the result back as the seed for region B). With
/// `FNV_OFFSET` as the seed this is exactly [`fnv1a`].
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a slice of `u32` words (little-endian byte order).
pub fn fnv1a_u32s(words: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// FNV-1a over a slice of `u64` words (little-endian byte order).
pub fn fnv1a_u64s(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Deterministic stream of "random" xor constants used to derive the `k`
/// MinHash functions from one FNV-1a hash (SplitMix64 over a fixed seed).
pub fn xor_constants(k: usize) -> Vec<u64> {
    let mut state = 0x5851_F42D_4C95_7F2Du64;
    (0..k)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn word_hashing_matches_byte_hashing() {
        let words = [0x0403_0201u32, 0x0807_0605];
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(fnv1a_u32s(&words), fnv1a(&bytes));
        let w64 = [0x0807_0605_0403_0201u64];
        assert_eq!(fnv1a_u64s(&w64), fnv1a(&bytes));
    }

    #[test]
    fn xor_constants_are_deterministic_and_distinct() {
        let a = xor_constants(200);
        let b = xor_constants(200);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 200, "no repeated constants");
    }

    #[test]
    fn prefix_stability() {
        // The first k constants are a prefix of the first k+n.
        let a = xor_constants(10);
        let b = xor_constants(20);
        assert_eq!(&b[..10], &a[..]);
    }
}
