//! Cross-module fuzzing of the two-phase global merge planner.
//!
//! Each iteration builds *several* modules at once — some sharing a
//! family seed so cross-module twins are guaranteed, some drawing fresh
//! families — stacks random structural mutations on each, and then runs
//! the [`GlobalMergePlanner`] over a resident corpus holding all of
//! them. The oracle enforces, per iteration:
//!
//! 1. **Jobs byte-identity**: the planner's merged module and report
//!    JSON are identical at every jobs level (1, 2 and 8 by default).
//! 2. **Verifier + round-trip**: the merged module verifies and its
//!    printed form is a reparse fixpoint.
//! 3. **Cross-module differential**: every module's `__driver` entry
//!    point observes identically (return value, `ext_sink` checksum, or
//!    trap class) in the pristine combined module and the globally
//!    merged one — semantics preservation across module boundaries.
//!    Cells where either side hits a resource limit are skipped.
//!
//! Like the protocol fuzzer, reproducers are *case seeds*: every
//! iteration's module set is a pure function of its derived seed, so
//! `corpus/global/seeds.txt` plus [`replay_global_case`] replays any
//! finding without shipping IR text.

use std::fs;
use std::path::PathBuf;

use f3m_core::corpus::{combine_modules, Corpus, CorpusConfig};
use f3m_core::{GlobalMergePlanner, GlobalMergeReport, GlobalPlanConfig};
use f3m_interp::oracle::{observe, Observation};
use f3m_interp::{Limits, Val};
use f3m_ir::module::Module;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_ir::verify::verify_module;
use f3m_prng::SmallRng;
use f3m_trace::MetricsRegistry;
use f3m_workloads::{build_module, table1};

use crate::campaign::iteration_seed;
use crate::mutate::apply_random;

/// Parameters of a global-merge fuzzing campaign.
#[derive(Clone, Debug)]
pub struct GlobalCampaignConfig {
    /// Number of generate–mutate–check iterations.
    pub iterations: usize,
    /// Campaign seed; every module set derives from it.
    pub seed: u64,
    /// Where to write reproducer seeds and module sets (`None` = don't).
    pub corpus_dir: Option<PathBuf>,
    /// Maximum mutations stacked per module (0 is allowed per draw).
    pub max_mutations: usize,
    /// Planner jobs levels; all must produce byte-identical output.
    pub jobs_levels: Vec<usize>,
    /// Driver arguments, one differential observation each.
    pub args: Vec<i64>,
    /// Execution limits for every observation.
    pub limits: Limits,
}

impl Default for GlobalCampaignConfig {
    fn default() -> Self {
        GlobalCampaignConfig {
            iterations: 40,
            seed: 0x61F3,
            corpus_dir: None,
            max_mutations: 3,
            jobs_levels: vec![1, 2, 8],
            args: vec![1, -9, 4242],
            limits: Limits::default(),
        }
    }
}

/// One oracle failure of the global campaign.
#[derive(Clone, Debug)]
pub struct GlobalFailure {
    /// Iteration index that produced the failure.
    pub iteration: usize,
    /// The iteration's derived seed (replays the module set).
    pub iter_seed: u64,
    /// Failure kind (`mutator-invalid`, `planner-error`,
    /// `jobs-divergence`, `merged-invalid`, `round-trip`,
    /// `differential`).
    pub kind: String,
    /// Planner jobs level under which it failed (0 when not cell-bound).
    pub jobs: usize,
    /// Mismatch description.
    pub detail: String,
    /// Modules in the failing set.
    pub modules: usize,
}

/// Aggregate result of a global campaign. Everything rendered by
/// [`GlobalCampaignSummary::to_json`] is a pure function of the
/// campaign seed.
#[derive(Clone, Debug, Default)]
pub struct GlobalCampaignSummary {
    /// Iterations executed.
    pub iterations: usize,
    /// Modules built across all iterations.
    pub modules_built: usize,
    /// Mutations applied across all modules.
    pub mutations_applied: usize,
    /// Differential cells skipped on resource-limit observations.
    pub resource_skips: usize,
    /// Speculative merges committed by first-round optimistic phases.
    pub optimistic_total: u64,
    /// Merges surviving global verification.
    pub verified_total: u64,
    /// Merges rolled back by the verification phase.
    pub rolled_back_total: u64,
    /// Verified merges that crossed a module boundary.
    pub cross_module_merges_total: u64,
    /// All failures found.
    pub failures: Vec<GlobalFailure>,
}

impl GlobalCampaignSummary {
    /// Renders the summary as deterministic JSON (the `f3m fuzz
    /// --global` output).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str(&format!("  \"modules_built\": {},\n", self.modules_built));
        s.push_str(&format!("  \"mutations_applied\": {},\n", self.mutations_applied));
        s.push_str(&format!("  \"resource_skips\": {},\n", self.resource_skips));
        s.push_str(&format!("  \"optimistic_total\": {},\n", self.optimistic_total));
        s.push_str(&format!("  \"verified_total\": {},\n", self.verified_total));
        s.push_str(&format!("  \"rolled_back_total\": {},\n", self.rolled_back_total));
        s.push_str(&format!(
            "  \"cross_module_merges_total\": {},\n",
            self.cross_module_merges_total
        ));
        s.push_str(&format!("  \"failure_count\": {},\n", self.failures.len()));
        s.push_str("  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            s.push_str(&format!(
                "{{\"iteration\": {}, \"seed\": \"{:#x}\", \"kind\": \"{}\", \
                 \"jobs\": {}, \"modules\": {}, \"detail\": \"{}\"}}",
                f.iteration,
                f.iter_seed,
                f.kind,
                f.jobs,
                f.modules,
                crate::campaign::json_escape(&f.detail)
            ));
        }
        if self.failures.is_empty() {
            s.push_str("]\n");
        } else {
            s.push_str("\n  ]\n");
        }
        s.push('}');
        s
    }

    /// Registers and populates the summary as deterministic metrics
    /// under `<prefix>.`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let mut det = |name: &str, unit, v: u64| {
            let id = reg.counter(&format!("{prefix}.{name}"), unit, true);
            reg.set(id, v);
        };
        det("iterations", "iterations", self.iterations as u64);
        det("modules_built", "modules", self.modules_built as u64);
        det("mutations_applied", "mutations", self.mutations_applied as u64);
        det("resource_skips", "cells", self.resource_skips as u64);
        det("optimistic_total", "merges", self.optimistic_total);
        det("verified_total", "merges", self.verified_total);
        det("rolled_back_total", "merges", self.rolled_back_total);
        det("cross_module_merges_total", "merges", self.cross_module_merges_total);
        det("failures", "failures", self.failures.len() as u64);
    }
}

/// Deterministically reconstructs iteration `iter_seed`'s module set:
/// 2–4 modules named `gm0..`, the first always drawing the shared
/// family seed and later ones flipping a coin between the shared seed
/// (cross-module twins) and a fresh family, each then carrying up to
/// `max_mutations` random structural mutations.
pub fn build_module_set(iter_seed: u64, max_mutations: usize) -> (Vec<Module>, usize) {
    let mut rng = SmallRng::seed_from_u64(iter_seed);
    let n = rng.gen_range(2..=4usize);
    let mut spec = table1()[0].clone();
    spec.functions = rng.gen_range(6..=14usize);
    spec.mean_insts = rng.gen_range(10..=24usize);
    let shared_seed = rng.next_u64() % 100_000;
    let mut mods = Vec::new();
    let mut mutations = 0;
    for i in 0..n {
        let mut s = spec.clone();
        s.seed = if i == 0 || rng.gen_range(0..2u32) == 0 {
            shared_seed
        } else {
            rng.next_u64() % 100_000
        };
        let mut m = build_module(&s);
        m.name = format!("gm{i}");
        for _ in 0..rng.gen_range(0..=max_mutations) {
            if apply_random(&mut m, &mut rng, 12).is_some() {
                mutations += 1;
            }
        }
        mods.push(m);
    }
    (mods, mutations)
}

/// Outcome of the global oracle over one module set.
#[derive(Debug, Default)]
pub struct GlobalOutcome {
    /// First failure found, as `(kind, jobs, detail)`.
    pub failure: Option<(String, usize, String)>,
    /// Differential cells skipped on resource limits.
    pub resource_skips: usize,
    /// The report of the first jobs level, when planning succeeded.
    pub report: Option<GlobalMergeReport>,
}

fn fixpoint(p1: &str) -> Result<(), String> {
    match parse_module(p1) {
        Ok(m2) => {
            if print_module(&m2) == p1 {
                Ok(())
            } else {
                Err("reprinted module differs from first printing".to_string())
            }
        }
        Err(e) => Err(format!("reparse failed: {e:?}")),
    }
}

/// Runs the global oracle over one module set: mutator validity, the
/// two-phase plan at every jobs level with byte-identity, verifier,
/// round-trip fixpoint, and the cross-module driver differential.
pub fn check_module_set(mods: &[Module], cfg: &GlobalCampaignConfig) -> GlobalOutcome {
    let mut out = GlobalOutcome::default();
    let fail = |kind: &str, jobs: usize, detail: String| Some((kind.to_string(), jobs, detail));
    for m in mods {
        if let Err(errs) = verify_module(m) {
            out.failure = fail("mutator-invalid", 0, format!("{}: {:?}", m.name, errs[0]));
            return out;
        }
    }
    let refs: Vec<&Module> = mods.iter().collect();
    let pristine = match combine_modules(&refs) {
        Ok(m) => m,
        Err(e) => {
            out.failure = fail("planner-error", 0, format!("combine: {e}"));
            return out;
        }
    };
    let baseline: Vec<(String, Vec<Observation>)> = mods
        .iter()
        .map(|m| {
            let driver = format!("{}.__driver", m.name);
            let obs = cfg
                .args
                .iter()
                .map(|&a| observe(&pristine, &driver, &[Val::Int(a)], cfg.limits))
                .collect();
            (driver, obs)
        })
        .collect();

    let corpus = Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..Default::default() });
    for m in mods {
        if let Err(e) = corpus.ingest(m.clone()) {
            out.failure = fail("planner-error", 0, format!("ingest {}: {e}", m.name));
            return out;
        }
    }
    let mut first: Option<(String, String)> = None;
    let mut merged_first: Option<Module> = None;
    for &jobs in &cfg.jobs_levels {
        let plan_cfg = GlobalPlanConfig { limits: cfg.limits, ..Default::default() }.with_jobs(jobs);
        let (report, merged, _epoch) = match GlobalMergePlanner::new(&corpus, plan_cfg).run() {
            Ok(r) => r,
            Err(e) => {
                out.failure = fail("planner-error", jobs, e);
                return out;
            }
        };
        let printed = print_module(&merged);
        let rendered = report.to_json();
        match &first {
            None => {
                if let Err(errs) = verify_module(&merged) {
                    out.failure = fail("merged-invalid", jobs, format!("{:?}", errs[0]));
                    return out;
                }
                if let Err(detail) = fixpoint(&printed) {
                    out.failure = fail("round-trip", jobs, detail);
                    return out;
                }
                out.report = Some(report);
                merged_first = Some(merged);
                first = Some((printed, rendered));
            }
            Some((p0, r0)) => {
                if printed != *p0 || rendered != *r0 {
                    out.failure = fail(
                        "jobs-divergence",
                        jobs,
                        format!(
                            "planner output differs between --jobs {} and {jobs}",
                            cfg.jobs_levels[0]
                        ),
                    );
                    return out;
                }
            }
        }
    }
    let merged = merged_first.expect("jobs_levels is non-empty");
    for (driver, base_obs) in &baseline {
        for (i, b) in base_obs.iter().enumerate() {
            let m = observe(&merged, driver, &[Val::Int(cfg.args[i])], cfg.limits);
            if b.is_resource_limit() || m.is_resource_limit() {
                out.resource_skips += 1;
                continue;
            }
            if *b != m {
                out.failure = fail(
                    "differential",
                    cfg.jobs_levels[0],
                    format!("{driver}({}) pristine {b:?} vs merged {m:?}", cfg.args[i]),
                );
                return out;
            }
        }
    }
    out
}

/// Runs a global campaign: seed in, deterministic JSON summary out.
/// Failing iterations write their module set (plus a seeds file entry)
/// to the corpus directory for replay.
pub fn run_global_campaign(cfg: &GlobalCampaignConfig) -> GlobalCampaignSummary {
    let mut summary =
        GlobalCampaignSummary { iterations: cfg.iterations, ..Default::default() };
    if let Some(dir) = &cfg.corpus_dir {
        let _ = fs::create_dir_all(dir);
    }
    for i in 0..cfg.iterations {
        let iter_seed = iteration_seed(cfg.seed, i) ^ 0x610B_A1F3;
        let (mods, mutations) = build_module_set(iter_seed, cfg.max_mutations);
        summary.modules_built += mods.len();
        summary.mutations_applied += mutations;
        let outcome = check_module_set(&mods, cfg);
        summary.resource_skips += outcome.resource_skips;
        if let Some(report) = &outcome.report {
            summary.optimistic_total += report.stats.optimistic_merges;
            summary.verified_total += report.stats.verified_merges;
            summary.rolled_back_total += report.stats.rolled_back;
            summary.cross_module_merges_total +=
                report.merges.iter().filter(|r| r.cross_module).count() as u64;
        }
        if let Some((kind, jobs, detail)) = outcome.failure {
            let record = GlobalFailure {
                iteration: i,
                iter_seed,
                kind,
                jobs,
                detail,
                modules: mods.len(),
            };
            if let Some(dir) = &cfg.corpus_dir {
                for m in &mods {
                    let _ = fs::write(
                        dir.join(format!("gfail-{:05}-{}.ir", i, m.name)),
                        print_module(m),
                    );
                }
                let _ = fs::write(
                    dir.join(format!("gfail-{:05}.meta.json", i)),
                    format!(
                        "{{\"seed\": \"{:#x}\", \"kind\": \"{}\", \"jobs\": {}, \
                         \"detail\": \"{}\"}}",
                        record.iter_seed,
                        record.kind,
                        record.jobs,
                        crate::campaign::json_escape(&record.detail)
                    ),
                );
            }
            summary.failures.push(record);
        }
    }
    summary
}

/// Replays one seeded case against the full global oracle. Returns a
/// short scenario description on success, the failure on violation —
/// the shape `corpus/global/seeds.txt` entries are replayed through.
pub fn replay_global_case(iter_seed: u64) -> Result<String, String> {
    let cfg = GlobalCampaignConfig::default();
    let (mods, mutations) = build_module_set(iter_seed, cfg.max_mutations);
    let outcome = check_module_set(&mods, &cfg);
    if let Some((kind, jobs, detail)) = outcome.failure {
        return Err(format!("{kind} (jobs {jobs}): {detail}"));
    }
    let report = outcome.report.ok_or("planner produced no report")?;
    Ok(format!(
        "modules={} mutations={} verified={} cross_module={} rolled_back={}",
        mods.len(),
        mutations,
        report.stats.verified_merges,
        report.merges.iter().filter(|r| r.cross_module).count(),
        report.stats.rolled_back
    ))
}
