//! Protocol-level fuzzing of the serve daemon.
//!
//! Where [`crate::campaign`] attacks the merge pipeline with mutated IR,
//! this module attacks the daemon's *transport*: a live in-process
//! server is bombarded with seeded scenarios — random well-formed frame
//! interleavings, truncated and oversized length prefixes, garbage
//! payloads, mid-request disconnects, byte-at-a-time slowloris dribbles,
//! and pipelined bursts across multiple connections.
//!
//! ## Oracle contract
//!
//! 1. **No panics**: the daemon thread finishes `run()` cleanly at the
//!    end of the campaign (a worker panic is caught and answered as an
//!    `error` response; an event-loop panic would poison the run).
//! 2. **No deadlocks**: every probe that is owed a response receives it
//!    within [`ProtocolCampaignConfig::deadline`], and the daemon joins
//!    within the same bound after `shutdown`.
//! 3. **Well-formed in, well-formed out**: every syntactically complete
//!    frame the fuzzer sends is answered by a complete frame that parses
//!    as a JSON object with a known `type` — malformed *content* earns a
//!    well-formed `error`, never silence or garbage.
//!
//! Malformed *transport* (truncated frames, dead sockets) may earn
//! anything except a wedged server; after each such scenario a
//! fresh-connection `ping` asserts the daemon still serves.
//!
//! The campaign is a pure function of its seed: failures are recorded
//! with the per-case seed, and [`replay_case`] re-runs a single case
//! against a fresh daemon — the reproducer corpus under
//! `corpus/protocol/` is just a list of case seeds.

use std::path::PathBuf;
use std::time::Duration;

use f3m_prng::SmallRng;
use f3m_serve::protocol::{parse_response, render_request, Request, RequestEnvelope, MAX_FRAME};
use f3m_serve::{AdmissionConfig, Client, ServeConfig, Server};
use f3m_trace::Json;

use crate::campaign::iteration_seed;

/// The scenarios a case can draw; the name is recorded in failures and
/// reproducer entries.
const SCENARIOS: [&str; 7] = [
    "pipelined-burst",
    "truncated-prefix",
    "oversized-prefix",
    "garbage-payload",
    "mid-request-disconnect",
    "slowloris",
    "interleaved-conns",
];

/// Protocol-campaign parameters.
#[derive(Clone, Debug)]
pub struct ProtocolCampaignConfig {
    /// Number of seeded scenarios to run.
    pub cases: usize,
    /// Campaign seed; each case derives its own stream from it.
    pub seed: u64,
    /// Where to append reproducer entries (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
    /// Worker threads for the daemon under test.
    pub jobs: usize,
    /// Queue capacity for the daemon under test (small, so `busy` and
    /// shed paths get exercised too).
    pub queue_cap: usize,
    /// Oracle deadline: a response (or the daemon's shutdown join)
    /// taking longer than this is reported as a deadlock.
    pub deadline: Duration,
}

impl Default for ProtocolCampaignConfig {
    fn default() -> Self {
        ProtocolCampaignConfig {
            cases: 200,
            seed: 0xF3F3,
            corpus_dir: None,
            jobs: 2,
            queue_cap: 8,
            deadline: Duration::from_secs(10),
        }
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct ProtocolFailure {
    pub case: usize,
    /// The case's derived seed — feed to [`replay_case`] to reproduce.
    pub case_seed: u64,
    pub scenario: &'static str,
    pub detail: String,
}

/// Campaign result.
#[derive(Clone, Debug, Default)]
pub struct ProtocolSummary {
    pub cases: usize,
    pub frames_sent: u64,
    pub responses_checked: u64,
    pub failures: Vec<ProtocolFailure>,
    /// Scenario name → times drawn.
    pub scenario_counts: Vec<(&'static str, u64)>,
}

impl ProtocolSummary {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"cases\":");
        s.push_str(&self.cases.to_string());
        s.push_str(",\"frames_sent\":");
        s.push_str(&self.frames_sent.to_string());
        s.push_str(",\"responses_checked\":");
        s.push_str(&self.responses_checked.to_string());
        s.push_str(",\"scenarios\":{");
        for (i, (name, n)) in self.scenario_counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":{n}"));
        }
        s.push_str("},\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"case\":{},\"case_seed\":{},\"scenario\":\"{}\",\"detail\":\"{}\"}}",
                f.case,
                f.case_seed,
                f.scenario,
                f3m_trace::json::escape(&f.detail)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// A tiny valid module source for `ingest` traffic; the body varies with
/// the seed so eviction/re-ingest cycles see distinct content.
fn tiny_module_src(rng: &mut SmallRng) -> (String, String) {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 4;
    spec.seed = rng.next_u64();
    let name = format!("fuzzmod_{}", rng.gen_range(0..1_000_000u32));
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.clone();
    (name, f3m_ir::printer::print_module(&m))
}

/// A random well-formed request body (biased toward cheap ones).
fn random_request(rng: &mut SmallRng, ingested: &mut Vec<String>) -> Request {
    match rng.gen_range(0..10u32) {
        0 | 1 => Request::Ping,
        2 | 3 => Request::Stats,
        4 => {
            let (name, src) = tiny_module_src(rng);
            ingested.push(name);
            Request::Ingest { name: None, ir: src }
        }
        5 => match ingested.last() {
            Some(m) => Request::Query {
                module: m.clone(),
                func: None,
                k: rng.gen_range(1..5u32) as usize,
                if_epoch: None,
            },
            None => Request::Ping,
        },
        6 => match (ingested.len() > 1).then(|| ingested.remove(0)) {
            Some(m) => Request::Evict { name: m },
            None => Request::Stats,
        },
        7 => Request::Sleep { ms: rng.gen_range(0..3u32) as u64 },
        8 => Request::Query {
            // Unknown module: exercises the error path, still well-formed.
            module: format!("no_such_module_{}", rng.gen_range(0..100u32)),
            func: None,
            k: 2,
            if_epoch: None,
        },
        _ => Request::Ping,
    }
}

/// Checks one response frame against oracle rule 3.
fn check_response(raw: &[u8]) -> Result<(), String> {
    let v: Json = parse_response(raw).map_err(|e| format!("unparseable response: {e}"))?;
    match v.get("type").and_then(Json::as_str) {
        Some(_) => Ok(()),
        None => Err("response JSON has no `type` field".to_string()),
    }
}

/// Collects `n` pipelined responses from `client`, enforcing oracle
/// rules 2 and 3.
fn drain_responses(client: &mut Client, n: usize, summary: &mut ProtocolSummary) -> Result<(), String> {
    for i in 0..n {
        let frame = client
            .recv_frame()
            .map_err(|e| format!("response {i}/{n}: {e}"))?
            .ok_or_else(|| format!("connection closed before response {i}/{n}"))?;
        check_response(&frame)?;
        summary.responses_checked += 1;
    }
    Ok(())
}

struct Harness {
    addr: std::net::SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_daemon(cfg: &ProtocolCampaignConfig) -> std::io::Result<Harness> {
    let server = Server::bind(ServeConfig {
        jobs: cfg.jobs.max(1),
        queue_cap: cfg.queue_cap.max(1),
        shards: 4,
        // Short read deadline so slowloris victims are reaped within the
        // campaign, proving the sweep works; idle timeout stays long so
        // healthy probes never trip it.
        read_deadline_ms: 250,
        admission: AdmissionConfig { max_inflight_per_conn: 32, ..AdmissionConfig::default() },
        ..ServeConfig::default()
    })?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || server.run());
    Ok(Harness { addr, handle })
}

/// Joins the daemon thread with a deadline — oracle rule 2 for shutdown.
fn join_with_deadline(
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    deadline: Duration,
) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    while !handle.is_finished() {
        if t0.elapsed() > deadline {
            return Err(format!("daemon did not shut down within {deadline:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    match handle.join() {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("daemon run() returned error: {e}")),
        Err(_) => Err("daemon thread panicked".to_string()),
    }
}

/// Runs one seeded case against a live daemon. Returns `Err(detail)` on
/// an oracle violation.
fn run_case(
    addr: std::net::SocketAddr,
    case_seed: u64,
    deadline: Duration,
    summary: &mut ProtocolSummary,
    ingested: &mut Vec<String>,
) -> Result<&'static str, (&'static str, String)> {
    let mut rng = SmallRng::seed_from_u64(case_seed);
    let scenario = SCENARIOS[rng.gen_range(0..SCENARIOS.len() as u32) as usize];
    let connect = |rng: &mut SmallRng| -> Result<Client, String> {
        let _ = rng; // connection setup draws nothing, kept for symmetry
        let c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        c.set_timeout(Some(deadline)).map_err(|e| format!("set_timeout: {e}"))?;
        Ok(c)
    };
    let result: Result<(), String> = (|| {
        match scenario {
            "pipelined-burst" => {
                let mut c = connect(&mut rng)?;
                let n = rng.gen_range(1..12u32) as usize;
                for _ in 0..n {
                    let body = random_request(&mut rng, ingested);
                    let text = render_request(&RequestEnvelope::of(body));
                    c.send_frame(text.as_bytes()).map_err(|e| format!("send: {e}"))?;
                    summary.frames_sent += 1;
                }
                drain_responses(&mut c, n, summary)
            }
            "truncated-prefix" => {
                let mut c = connect(&mut rng)?;
                // 1–3 bytes of a length prefix, or a prefix with a
                // partial payload; then vanish.
                let declared = rng.gen_range(1..1024u32);
                let prefix = declared.to_be_bytes();
                let cut = rng.gen_range(1..4u32) as usize;
                let body_bytes = rng.gen_range(0..declared) as usize;
                if rng.gen_bool(0.5) {
                    c.write_bytes(&prefix[..cut]).map_err(|e| format!("write: {e}"))?;
                } else {
                    c.write_bytes(&prefix).map_err(|e| format!("write: {e}"))?;
                    c.write_bytes(&vec![b'x'; body_bytes]).map_err(|e| format!("write: {e}"))?;
                }
                drop(c); // mid-frame disconnect
                Ok(())
            }
            "oversized-prefix" => {
                let mut c = connect(&mut rng)?;
                let over = MAX_FRAME as u64 + 1 + rng.gen_range(0..1_000_000u32) as u64;
                let len = u32::try_from(over).unwrap_or(u32::MAX);
                c.write_bytes(&len.to_be_bytes()).map_err(|e| format!("write: {e}"))?;
                summary.frames_sent += 1;
                // Contract: a well-formed `error` response, then close.
                let frame = c
                    .recv_frame()
                    .map_err(|e| format!("oversized: {e}"))?
                    .ok_or("oversized: closed without the error response")?;
                check_response(&frame)?;
                summary.responses_checked += 1;
                match c.recv_frame() {
                    Ok(None) => Ok(()),
                    Ok(Some(_)) => Err("oversized: server kept talking past the close".into()),
                    // Server-side close can also surface as reset.
                    Err(_) => Ok(()),
                }
            }
            "garbage-payload" => {
                let mut c = connect(&mut rng)?;
                let n = rng.gen_range(1..64u32) as usize;
                let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect();
                summary.frames_sent += 1;
                let resp = c.send_raw(&junk).map_err(|e| format!("garbage: {e}"))?;
                check_response(resp.as_bytes())?;
                summary.responses_checked += 1;
                Ok(())
            }
            "mid-request-disconnect" => {
                let mut c = connect(&mut rng)?;
                // A valid frame, then half of another, then vanish.
                let text = render_request(&RequestEnvelope::of(Request::Ping));
                c.send_frame(text.as_bytes()).map_err(|e| format!("send: {e}"))?;
                summary.frames_sent += 1;
                let text2 = render_request(&RequestEnvelope::of(Request::Stats));
                let bytes = text2.as_bytes();
                let len = (bytes.len() as u32).to_be_bytes();
                c.write_bytes(&len).map_err(|e| format!("write: {e}"))?;
                c.write_bytes(&bytes[..bytes.len() / 2]).map_err(|e| format!("write: {e}"))?;
                drop(c);
                Ok(())
            }
            "slowloris" => {
                let mut c = connect(&mut rng)?;
                let text = render_request(&RequestEnvelope::of(Request::Ping));
                let bytes = text.as_bytes();
                let mut framed = (bytes.len() as u32).to_be_bytes().to_vec();
                framed.extend_from_slice(bytes);
                let complete = rng.gen_bool(0.5);
                let dribble = if complete { framed.len() } else { framed.len() / 2 };
                for &b in &framed[..dribble] {
                    c.write_bytes(&[b]).map_err(|e| format!("dribble: {e}"))?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                if complete {
                    summary.frames_sent += 1;
                    let frame = c
                        .recv_frame()
                        .map_err(|e| format!("slowloris complete: {e}"))?
                        .ok_or("slowloris: completed frame got no response")?;
                    check_response(&frame)?;
                    summary.responses_checked += 1;
                }
                // Incomplete dribblers are the read-deadline sweep's
                // problem; we just leave.
                Ok(())
            }
            "interleaved-conns" => {
                let mut a = connect(&mut rng)?;
                let mut b = connect(&mut rng)?;
                let n = rng.gen_range(1..6u32) as usize;
                let mut owed_a = 0;
                let mut owed_b = 0;
                for _ in 0..n {
                    let body = random_request(&mut rng, ingested);
                    let text = render_request(&RequestEnvelope::of(body));
                    if rng.gen_bool(0.5) {
                        a.send_frame(text.as_bytes()).map_err(|e| format!("send a: {e}"))?;
                        owed_a += 1;
                    } else {
                        b.send_frame(text.as_bytes()).map_err(|e| format!("send b: {e}"))?;
                        owed_b += 1;
                    }
                    summary.frames_sent += 1;
                }
                drain_responses(&mut a, owed_a, summary)?;
                drain_responses(&mut b, owed_b, summary)
            }
            _ => unreachable!(),
        }
    })();
    match result {
        Ok(()) => Ok(scenario),
        Err(detail) => Err((scenario, detail)),
    }
}

/// Fresh-connection liveness probe (oracle rule 2 between cases).
fn probe(addr: std::net::SocketAddr, deadline: Duration) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("probe connect: {e}"))?;
    c.set_timeout(Some(deadline)).map_err(|e| format!("probe timeout: {e}"))?;
    c.call_expect(Request::Ping, "pong").map_err(|e| format!("probe ping: {e}"))?;
    Ok(())
}

/// Runs a full seeded campaign against one in-process daemon.
pub fn run_protocol_campaign(cfg: &ProtocolCampaignConfig) -> ProtocolSummary {
    let mut summary = ProtocolSummary { cases: cfg.cases, ..ProtocolSummary::default() };
    let mut counts: Vec<(&'static str, u64)> = SCENARIOS.iter().map(|&s| (s, 0)).collect();
    let harness = match start_daemon(cfg) {
        Ok(h) => h,
        Err(e) => {
            summary.failures.push(ProtocolFailure {
                case: 0,
                case_seed: cfg.seed,
                scenario: "startup",
                detail: format!("daemon failed to start: {e}"),
            });
            return summary;
        }
    };
    let mut ingested: Vec<String> = Vec::new();
    for case in 0..cfg.cases {
        let case_seed = iteration_seed(cfg.seed, case);
        match run_case(harness.addr, case_seed, cfg.deadline, &mut summary, &mut ingested) {
            Ok(scenario) => {
                if let Some(c) = counts.iter_mut().find(|(s, _)| *s == scenario) {
                    c.1 += 1;
                }
            }
            Err((scenario, detail)) => {
                if let Some(c) = counts.iter_mut().find(|(s, _)| *s == scenario) {
                    c.1 += 1;
                }
                record_failure(cfg, &mut summary, case, case_seed, scenario, detail);
            }
        }
        // After transport-abuse scenarios, assert the daemon still
        // serves a clean connection.
        if case % 16 == 15 {
            if let Err(detail) = probe(harness.addr, cfg.deadline) {
                record_failure(cfg, &mut summary, case, case_seed, "liveness-probe", detail);
                break;
            }
        }
    }
    // Graceful shutdown and a bounded join complete oracle rules 1–2.
    match Client::connect(harness.addr) {
        Ok(mut c) => {
            let _ = c.set_timeout(Some(cfg.deadline));
            if let Err(e) = c.call_expect(Request::Shutdown, "bye") {
                record_failure(cfg, &mut summary, cfg.cases, cfg.seed, "shutdown", e);
            }
        }
        Err(e) => {
            record_failure(
                cfg,
                &mut summary,
                cfg.cases,
                cfg.seed,
                "shutdown",
                format!("connect for shutdown: {e}"),
            );
        }
    }
    if let Err(detail) = join_with_deadline(harness.handle, cfg.deadline) {
        record_failure(cfg, &mut summary, cfg.cases, cfg.seed, "join", detail);
    }
    summary.scenario_counts = counts;
    summary
}

fn record_failure(
    cfg: &ProtocolCampaignConfig,
    summary: &mut ProtocolSummary,
    case: usize,
    case_seed: u64,
    scenario: &'static str,
    detail: String,
) {
    if let Some(dir) = &cfg.corpus_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("proto_{case_seed:016x}.txt"));
        let body = format!(
            "scenario: {scenario}\ncase: {case}\ncase_seed: {case_seed}\n\
             campaign_seed: {}\ndetail: {detail}\n\
             replay: f3m-fuzz::protocol::replay_case({case_seed})\n",
            cfg.seed
        );
        let _ = std::fs::write(path, body);
    }
    summary.failures.push(ProtocolFailure { case, case_seed, scenario, detail });
}

/// Replays a single case seed against a fresh daemon — the reproducer
/// entry point used by the checked-in corpus tests. Returns the
/// scenario the seed maps to.
pub fn replay_case(case_seed: u64) -> Result<&'static str, String> {
    let cfg = ProtocolCampaignConfig::default();
    let harness = start_daemon(&cfg).map_err(|e| format!("daemon failed to start: {e}"))?;
    let mut summary = ProtocolSummary::default();
    let mut ingested = Vec::new();
    let outcome = run_case(harness.addr, case_seed, cfg.deadline, &mut summary, &mut ingested);
    let live = probe(harness.addr, cfg.deadline);
    let mut c = Client::connect(harness.addr).map_err(|e| format!("shutdown connect: {e}"))?;
    let _ = c.set_timeout(Some(cfg.deadline));
    c.call_expect(Request::Shutdown, "bye").map_err(|e| format!("shutdown: {e}"))?;
    join_with_deadline(harness.handle, cfg.deadline)?;
    let scenario = outcome.map_err(|(scenario, detail)| format!("{scenario}: {detail}"))?;
    live?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_is_clean_and_deterministic() {
        let cfg = ProtocolCampaignConfig { cases: 24, seed: 7, ..Default::default() };
        let a = run_protocol_campaign(&cfg);
        assert!(a.failures.is_empty(), "failures: {:?}", a.failures);
        assert!(a.frames_sent > 0);
        assert!(a.responses_checked > 0);
        let b = run_protocol_campaign(&cfg);
        // Scenario draws are a pure function of the seed.
        assert_eq!(a.scenario_counts, b.scenario_counts);
        assert_eq!(a.frames_sent, b.frames_sent);
    }

    #[test]
    fn replay_single_case_succeeds() {
        let seed = iteration_seed(7, 3);
        replay_case(seed).expect("replay should pass");
    }

    #[test]
    fn summary_json_shape() {
        let s = ProtocolSummary {
            cases: 2,
            frames_sent: 5,
            responses_checked: 4,
            failures: vec![ProtocolFailure {
                case: 1,
                case_seed: 42,
                scenario: "slowloris",
                detail: "x \"quoted\"".into(),
            }],
            scenario_counts: vec![("slowloris", 2)],
        };
        let j = s.to_json();
        assert!(j.contains("\"cases\":2"));
        assert!(j.contains("\"slowloris\":2"));
        assert!(j.contains("\"case_seed\":42"));
    }
}
