//! Deterministic fuzzing campaigns.
//!
//! Each iteration derives its own RNG from the campaign seed, generates a
//! base workload module, stacks one to four random mutations on it, and
//! runs the merge oracle over every configured (strategy, jobs) cell.
//! Failures are delta-reduced and written to the corpus directory with
//! enough metadata (`seed`, mutation trace, failing cell) to replay them.
//!
//! The whole campaign is a pure function of its configuration: same seed,
//! same modules, same mutations, same verdicts.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use f3m_core::pass::{run_pass, PassConfig};
use f3m_ir::module::Module;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_ir::verify::verify_module;
use f3m_prng::SmallRng;
use f3m_trace::{span_on, MetricsRegistry, Tracer};
use f3m_workloads::{build_module, table1};

use crate::mutate::{apply_random, MUTATORS};
use crate::oracle::{check_module_with, OracleConfig};
use crate::reduce::reduce;

/// Per-iteration seed derivation: golden-ratio stride over the campaign
/// seed, so iteration streams are decorrelated but reproducible.
pub fn iteration_seed(campaign_seed: u64, iteration: usize) -> u64 {
    campaign_seed ^ (iteration as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of generate–mutate–check iterations.
    pub iterations: usize,
    /// Campaign seed; every module and mutation derives from it.
    pub seed: u64,
    /// Where to write reduced reproducers (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
    /// The oracle run on every mutated module.
    pub oracle: OracleConfig,
    /// Maximum mutations stacked per iteration (at least 1 is applied).
    pub max_mutations: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            iterations: 500,
            seed: 0xF3F3,
            corpus_dir: None,
            oracle: OracleConfig::default(),
            max_mutations: 4,
        }
    }
}

/// One reduced oracle failure.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Iteration index that produced the failure.
    pub iteration: usize,
    /// The iteration's derived seed (replays the module + mutations).
    pub iter_seed: u64,
    /// Failure kind name (`differential`, `round-trip`, ... or
    /// `mutator-invalid` when a mutator itself broke validity).
    pub kind: String,
    /// Strategy cell that failed (`none` for mutator bugs).
    pub strategy: String,
    /// Jobs cell that failed (0 for mutator bugs).
    pub jobs: usize,
    /// Mismatch description.
    pub detail: String,
    /// Names of the mutations applied this iteration, in order.
    pub mutations: Vec<&'static str>,
    /// Function definitions before reduction.
    pub functions_before: usize,
    /// Function definitions in the reduced reproducer.
    pub functions_after: usize,
    /// Linked instructions before reduction.
    pub insts_before: usize,
    /// Linked instructions in the reduced reproducer.
    pub insts_after: usize,
    /// Path of the written `.ir` reproducer, if a corpus dir was set.
    pub artifact: Option<String>,
}

/// Aggregate campaign result.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Iterations executed.
    pub iterations: usize,
    /// Total mutations applied across all iterations.
    pub mutations_applied: usize,
    /// Times each mutator fired, in catalogue order.
    pub histogram: Vec<(&'static str, usize)>,
    /// Wall-clock nanoseconds spent inside each mutator, in catalogue
    /// order. Deliberately excluded from [`CampaignSummary::to_json`],
    /// which stays a pure function of the campaign seed; exported as
    /// nondeterministic metrics by [`CampaignSummary::export_metrics`].
    pub mutator_time_ns: Vec<(&'static str, u64)>,
    /// Differential cells skipped on resource-limit observations.
    pub resource_skips: usize,
    /// All failures, reduced.
    pub failures: Vec<FailureRecord>,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl CampaignSummary {
    /// Renders the summary as a JSON object (the `f3m fuzz` output).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str(&format!("  \"mutations_applied\": {},\n", self.mutations_applied));
        s.push_str("  \"mutator_histogram\": {");
        for (i, (name, count)) in self.histogram.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {count}"));
        }
        s.push_str("},\n");
        s.push_str(&format!("  \"resource_skips\": {},\n", self.resource_skips));
        s.push_str(&format!("  \"failure_count\": {},\n", self.failures.len()));
        s.push_str("  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            s.push_str(&failure_json(f));
        }
        if self.failures.is_empty() {
            s.push_str("]\n");
        } else {
            s.push_str("\n  ]\n");
        }
        s.push('}');
        s
    }

    /// Registers and populates the summary as metrics under `<prefix>.`.
    /// Seed-determined quantities (iterations, mutation counts, failures)
    /// are tagged deterministic; mutator wall-clock times are not.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let det = |reg: &mut MetricsRegistry, name: String, unit, v: u64| {
            let id = reg.counter(&name, unit, true);
            reg.set(id, v);
        };
        det(reg, format!("{prefix}.iterations"), "iterations", self.iterations as u64);
        det(
            reg,
            format!("{prefix}.mutations_applied"),
            "mutations",
            self.mutations_applied as u64,
        );
        for (name, count) in &self.histogram {
            det(reg, format!("{prefix}.mutations.{name}"), "mutations", *count as u64);
        }
        det(reg, format!("{prefix}.resource_skips"), "cells", self.resource_skips as u64);
        det(reg, format!("{prefix}.failures"), "failures", self.failures.len() as u64);
        for (name, ns) in &self.mutator_time_ns {
            let id = reg.counter(&format!("{prefix}.mutator_ns.{name}"), "ns", false);
            reg.set(id, *ns);
        }
    }
}

fn failure_json(f: &FailureRecord) -> String {
    let ratio = if f.insts_before == 0 {
        1.0
    } else {
        f.insts_after as f64 / f.insts_before as f64
    };
    let mutations: Vec<String> = f.mutations.iter().map(|m| format!("\"{m}\"")).collect();
    format!(
        "{{\"iteration\": {}, \"seed\": \"{:#x}\", \"kind\": \"{}\", \
         \"strategy\": \"{}\", \"jobs\": {}, \"detail\": \"{}\", \
         \"mutations\": [{}], \"functions_before\": {}, \"functions_after\": {}, \
         \"insts_before\": {}, \"insts_after\": {}, \"reduction_ratio\": {:.4}, \
         \"artifact\": {}}}",
        f.iteration,
        f.iter_seed,
        json_escape(&f.kind),
        json_escape(&f.strategy),
        f.jobs,
        json_escape(&f.detail),
        mutations.join(", "),
        f.functions_before,
        f.functions_after,
        f.insts_before,
        f.insts_after,
        ratio,
        match &f.artifact {
            Some(p) => format!("\"{}\"", json_escape(p)),
            None => "null".to_string(),
        },
    )
}

fn round_trips(m: &Module) -> bool {
    let p1 = print_module(m);
    match parse_module(&p1) {
        Ok(m2) => print_module(&m2) == p1,
        Err(_) => false,
    }
}

/// Runs a campaign against the production merge pass.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignSummary {
    run_campaign_traced(cfg, None)
}

/// [`run_campaign`] with optional structured tracing: one span per
/// iteration plus per-mutator timing accumulated into
/// [`CampaignSummary::mutator_time_ns`].
pub fn run_campaign_traced(
    cfg: &CampaignConfig,
    tracer: Option<&Tracer>,
) -> CampaignSummary {
    run_campaign_impl(
        cfg,
        |m, c| {
            run_pass(m, c);
        },
        tracer,
    )
}

/// Runs a campaign with an injectable merge step (used by the oracle's own
/// self-test, which threads in a deliberately buggy merge).
pub fn run_campaign_with<F: Fn(&mut Module, &PassConfig)>(
    cfg: &CampaignConfig,
    merge: F,
) -> CampaignSummary {
    run_campaign_impl(cfg, merge, None)
}

fn run_campaign_impl<F: Fn(&mut Module, &PassConfig)>(
    cfg: &CampaignConfig,
    merge: F,
    tracer: Option<&Tracer>,
) -> CampaignSummary {
    let mut summary = CampaignSummary {
        iterations: cfg.iterations,
        histogram: MUTATORS.iter().map(|&(name, _)| (name, 0)).collect(),
        mutator_time_ns: MUTATORS.iter().map(|&(name, _)| (name, 0)).collect(),
        ..Default::default()
    };
    if let Some(dir) = &cfg.corpus_dir {
        let _ = fs::create_dir_all(dir);
    }
    for i in 0..cfg.iterations {
        let mut iter_span = span_on(tracer, "fuzz", format!("iteration {i}"));
        let iter_seed = iteration_seed(cfg.seed, i);
        let mut rng = SmallRng::seed_from_u64(iter_seed);
        let mut spec = table1()[0].clone();
        spec.functions = rng.gen_range(8..=36usize);
        spec.mean_insts = rng.gen_range(10..=28usize);
        spec.seed = rng.next_u64() % 100_000;
        let mut base = build_module(&spec);
        let planned = rng.gen_range(1..=cfg.max_mutations.max(1));
        let mut applied: Vec<&'static str> = Vec::new();
        for _ in 0..planned {
            let t_mutate = Instant::now();
            let fired = apply_random(&mut base, &mut rng, 12);
            let mutate_ns = t_mutate.elapsed().as_nanos() as u64;
            if let Some(name) = fired {
                applied.push(name);
                summary.mutations_applied += 1;
                if let Some(slot) = summary.histogram.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 += 1;
                }
                if let Some(slot) =
                    summary.mutator_time_ns.iter_mut().find(|(n, _)| *n == name)
                {
                    slot.1 += mutate_ns;
                }
                if let Some(t) = tracer {
                    t.instant("fuzz", name, vec![("iteration", i as u64), ("ns", mutate_ns)]);
                }
            }
        }
        iter_span.arg("mutations", applied.len() as u64);
        // Mutator contract gate: the mutated base itself must stay
        // verifier-clean and round-trippable, before any merging happens.
        let base_broken = match verify_module(&base) {
            Err(errs) => Some(format!("{:?}", errs[0])),
            Ok(()) if !round_trips(&base) => {
                Some("mutated base fails printer round-trip".to_string())
            }
            Ok(()) => None,
        };
        if let Some(detail) = base_broken {
            let mut record = FailureRecord {
                iteration: i,
                iter_seed,
                kind: "mutator-invalid".to_string(),
                strategy: "none".to_string(),
                jobs: 0,
                detail,
                mutations: applied,
                functions_before: base.defined_functions().len(),
                functions_after: base.defined_functions().len(),
                insts_before: base.total_insts(),
                insts_after: base.total_insts(),
                artifact: None,
            };
            record.artifact = write_artifact(cfg, &record, &base);
            summary.failures.push(record);
            continue;
        }
        let outcome = check_module_with(&base, &cfg.oracle, |m, c| merge(m, c));
        summary.resource_skips += outcome.resource_skips;
        if let Some(failure) = outcome.failure {
            let narrowed = cfg.oracle.narrowed(failure.strategy, failure.jobs);
            let kind = failure.kind;
            let predicate = |m: &Module| {
                check_module_with(m, &narrowed, |mm, c| merge(mm, c))
                    .failure
                    .is_some_and(|g| g.kind == kind)
            };
            let (reduced, stats) = reduce(&base, &predicate);
            let mut record = FailureRecord {
                iteration: i,
                iter_seed,
                kind: kind.as_str().to_string(),
                strategy: failure.strategy.name().to_string(),
                jobs: failure.jobs,
                detail: failure.detail,
                mutations: applied,
                functions_before: stats.functions_before,
                functions_after: stats.functions_after,
                insts_before: stats.insts_before,
                insts_after: stats.insts_after,
                artifact: None,
            };
            record.artifact = write_artifact(cfg, &record, &reduced);
            summary.failures.push(record);
        }
    }
    summary
}

/// Writes the reproducer plus a `.meta.json` sidecar (seed, mutation
/// trace, failing cell — everything needed to replay) into the corpus
/// directory. Returns the `.ir` path, or `None` when no corpus dir is
/// configured.
fn write_artifact(
    cfg: &CampaignConfig,
    record: &FailureRecord,
    m: &Module,
) -> Option<String> {
    let dir = cfg.corpus_dir.as_ref()?;
    let stem = format!("fail-{:05}-{}", record.iteration, record.kind);
    let ir_path = dir.join(format!("{stem}.ir"));
    let _ = fs::write(&ir_path, print_module(m));
    let _ = fs::write(dir.join(format!("{stem}.meta.json")), failure_json(record));
    Some(ir_path.display().to_string())
}
