//! Delta-debugging reducer for failing modules.
//!
//! Classic ddmin-style loop specialized to the IR's structure. Each probe
//! builds a candidate module, checks it still verifies, and keeps it only
//! if the caller's predicate says the original failure still reproduces.
//! Reduction proceeds coarse to fine, repeated until a fixpoint:
//!
//! 1. **Stub functions** — replace whole bodies with a single `ret 0`.
//! 2. **Gut blocks** — empty a non-entry block down to `unreachable`,
//!    detaching its phis and edges.
//! 3. **Drop instructions** — unlink single instructions, replacing their
//!    results with `undef` (only once the module is small; this phase is
//!    quadratic-ish). Dropping calls is what makes callees unreferenced.
//! 4. **Strip functions** — textually delete definitions/declarations no
//!    linked instruction references anymore, via print → cut → reparse
//!    (unlinking a definition in place would leave dangling function
//!    references in the arena).
//!
//! The predicate fully decides semantics: the reducer never assumes which
//! functions matter, so e.g. the driver survives only because removing it
//! makes the failure disappear.

use std::collections::HashSet;

use f3m_ir::function::Function;
use f3m_ir::ids::{BlockId, FuncId, InstId, ValueId};
use f3m_ir::inst::{Instruction, Opcode};
use f3m_ir::module::Module;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_ir::value::ValueKind;
use f3m_ir::verify::verify_module;

/// Upper bound on coarse-to-fine sweeps; reduction almost always reaches a
/// fixpoint in two or three.
const MAX_ROUNDS: usize = 6;

/// Instruction-dropping is per-instruction probing; gate it on module size
/// so reduction time stays bounded on large reproducers.
const DROP_INST_LIMIT: usize = 600;

/// Size of the module before and after reduction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReductionStats {
    /// Function definitions in the failing module.
    pub functions_before: usize,
    /// Function definitions in the reduced module.
    pub functions_after: usize,
    /// Linked instructions in the failing module.
    pub insts_before: usize,
    /// Linked instructions in the reduced module.
    pub insts_after: usize,
    /// Sweeps that committed at least one simplification.
    pub rounds: usize,
}

impl ReductionStats {
    /// Instruction-count ratio after/before (1.0 when nothing reduced).
    pub fn ratio(&self) -> f64 {
        if self.insts_before == 0 {
            1.0
        } else {
            self.insts_after as f64 / self.insts_before as f64
        }
    }
}

fn accept(cand: &Module, still_fails: &dyn Fn(&Module) -> bool) -> bool {
    verify_module(cand).is_ok() && still_fails(cand)
}

/// Minimizes `start` while `still_fails` keeps returning `true`.
///
/// `still_fails` must be deterministic and must return `true` for `start`
/// itself; otherwise the reducer simply returns `start` unchanged.
pub fn reduce(
    start: &Module,
    still_fails: &dyn Fn(&Module) -> bool,
) -> (Module, ReductionStats) {
    let mut stats = ReductionStats {
        functions_before: start.defined_functions().len(),
        insts_before: start.total_insts(),
        ..Default::default()
    };
    let mut cur = start.clone();
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        // Phase 1: whole-function stubs.
        for fid in cur.defined_functions() {
            if cur.function(fid).num_linked_insts() <= 1 {
                continue;
            }
            let cand = stub_candidate(&cur, fid);
            if accept(&cand, still_fails) {
                cur = cand;
                changed = true;
            }
        }
        // Phase 2: gut non-entry blocks.
        for fid in cur.defined_functions() {
            let blocks: Vec<BlockId> =
                cur.function(fid).block_order.iter().skip(1).copied().collect();
            for bb in blocks {
                let f = cur.function(fid);
                let insts = &f.block(bb).insts;
                if insts.len() == 1 && f.inst(insts[0]).op == Opcode::Unreachable {
                    continue; // already gutted
                }
                let cand = gut_candidate(&cur, fid, bb);
                if accept(&cand, still_fails) {
                    cur = cand;
                    changed = true;
                }
            }
        }
        // Phase 3: drop single instructions.
        if cur.total_insts() <= DROP_INST_LIMIT {
            for fid in cur.defined_functions() {
                let ids: Vec<InstId> = cur
                    .function(fid)
                    .linked_insts()
                    .filter(|(_, i)| !i.is_terminator())
                    .map(|(id, _)| id)
                    .collect();
                for iid in ids {
                    let f = cur.function(fid);
                    if !f.block(f.inst(iid).parent).insts.contains(&iid) {
                        continue; // unlinked by an earlier commit this round
                    }
                    let cand = drop_candidate(&cur, fid, iid);
                    if accept(&cand, still_fails) {
                        cur = cand;
                        changed = true;
                    }
                }
            }
        }
        // Phase 4: strip unreferenced functions until none is strippable.
        loop {
            let referenced = referenced_names(&cur);
            let orphans: Vec<String> = cur
                .functions()
                .filter(|(_, f)| !referenced.contains(&f.name))
                .map(|(_, f)| f.name.clone())
                .collect();
            let mut stripped = false;
            for name in orphans {
                if let Some(cand) = strip_candidate(&cur, &name) {
                    if accept(&cand, still_fails) {
                        cur = cand;
                        stripped = true;
                        changed = true;
                    }
                }
            }
            if !stripped {
                break;
            }
        }
        if !changed {
            break;
        }
        stats.rounds += 1;
    }
    stats.functions_after = cur.defined_functions().len();
    stats.insts_after = cur.total_insts();
    (cur, stats)
}

/// Candidate with `fid`'s body replaced by a single trivial return.
fn stub_candidate(m: &Module, fid: FuncId) -> Module {
    let mut cand = m.clone();
    let void = cand.types.void();
    let f = cand.function(fid);
    let (name, params, ret_ty, linkage) =
        (f.name.clone(), f.params.clone(), f.ret_ty, f.linkage);
    let mut stub = Function::new(name, params, ret_ty);
    stub.linkage = linkage;
    let bb = stub.add_block("entry");
    let ts = &cand.types;
    let mut operands = Vec::new();
    if !ts.is_void(ret_ty) {
        let v = if ts.is_int(ret_ty) {
            stub.const_int(ts, ret_ty, 0)
        } else if ts.is_float(ret_ty) {
            stub.const_float(ret_ty, 0.0)
        } else {
            stub.undef(ret_ty)
        };
        operands.push(v);
    }
    stub.append_inst(
        ts,
        bb,
        Instruction {
            op: Opcode::Ret,
            ty: void,
            operands,
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        },
    );
    cand.replace_function(fid, stub);
    cand
}

/// Candidate with block `bb` of `fid` emptied down to `unreachable`. The
/// block's results are replaced with `undef` and phi entries naming `bb`
/// as an incoming predecessor are detached everywhere, since `bb` no
/// longer has successors.
fn gut_candidate(m: &Module, fid: FuncId, bb: BlockId) -> Module {
    let mut cand = m.clone();
    let void = cand.types.void();
    let (f, ts) = cand.func_mut_and_types(fid);
    let insts: Vec<InstId> = f.block(bb).insts.clone();
    for &i in &insts {
        if let Some(r) = f.inst(i).result {
            let ty = f.value(r).ty;
            let u = f.undef(ty);
            f.replace_all_uses(r, u);
        }
    }
    f.block_mut(bb).insts.clear();
    f.append_inst(
        ts,
        bb,
        Instruction {
            op: Opcode::Unreachable,
            ty: void,
            operands: vec![],
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        },
    );
    let phis: Vec<InstId> = f
        .linked_insts()
        .filter(|(_, i)| i.op == Opcode::Phi)
        .map(|(id, _)| id)
        .collect();
    for pid in phis {
        if !f.inst(pid).blocks.contains(&bb) {
            continue;
        }
        let kept: Vec<(BlockId, ValueId)> = f
            .inst(pid)
            .phi_incomings()
            .filter(|&(b, _)| b != bb)
            .collect();
        if kept.is_empty() {
            // Every incoming came through bb; the phi is dead.
            if let Some(r) = f.inst(pid).result {
                let ty = f.value(r).ty;
                let u = f.undef(ty);
                f.replace_all_uses(r, u);
            }
            f.unlink_inst(pid);
        } else {
            let inst = f.inst_mut(pid);
            inst.blocks = kept.iter().map(|&(b, _)| b).collect();
            inst.operands = kept.iter().map(|&(_, v)| v).collect();
        }
    }
    cand
}

/// Candidate with one instruction unlinked, its result (if any) replaced
/// by `undef`.
fn drop_candidate(m: &Module, fid: FuncId, iid: InstId) -> Module {
    let mut cand = m.clone();
    let (f, _) = cand.func_mut_and_types(fid);
    if let Some(r) = f.inst(iid).result {
        let ty = f.value(r).ty;
        let u = f.undef(ty);
        f.replace_all_uses(r, u);
    }
    f.unlink_inst(iid);
    cand
}

/// Names of functions referenced by at least one linked instruction
/// operand anywhere in the module.
fn referenced_names(m: &Module) -> HashSet<String> {
    let mut out = HashSet::new();
    for (_, f) in m.functions() {
        for (_, inst) in f.linked_insts() {
            for &op in &inst.operands {
                if let ValueKind::FuncRef(g) = f.value(op).kind {
                    out.insert(m.function(g).name.clone());
                }
            }
        }
    }
    out
}

/// Candidate with the named function removed, by cutting its printed form
/// out of the module text and reparsing. Returns `None` if the definition
/// can't be located or the stripped text no longer parses.
fn strip_candidate(m: &Module, name: &str) -> Option<Module> {
    let text = print_module(m);
    let lines: Vec<&str> = text.lines().collect();
    let needle = format!("@{name}(");
    let start = lines.iter().position(|l| {
        let t = l.trim_start();
        (t.starts_with("declare ") || t.starts_with("define ")) && l.contains(&needle)
    })?;
    let end = if lines[start].trim_start().starts_with("declare ") {
        start
    } else {
        // A definition closes at the first column-0 "}" after its header.
        (start + 1..lines.len()).find(|&j| lines[j] == "}")?
    };
    let mut kept: Vec<&str> = Vec::with_capacity(lines.len());
    kept.extend_from_slice(&lines[..start]);
    kept.extend_from_slice(&lines[end + 1..]);
    let mut new_text = kept.join("\n");
    new_text.push('\n');
    parse_module(&new_text).ok()
}
