//! Structural IR mutators.
//!
//! Each mutator takes an arbitrary *valid* module and perturbs it while
//! keeping it verifier-clean. Mutators are free to change observable
//! behaviour (the oracle compares the mutated module against its own merged
//! form, not against the unmutated original), but they must never produce a
//! module that `verify_module` rejects or that fails the printer/parser
//! round-trip — a mutator that breaks validity poisons every downstream
//! check of the campaign.
//!
//! The catalogue deliberately targets the merging pipeline's assumptions:
//! block splits and edge splits reshape the CFG that alignment linearizes,
//! clones create near-identical merge candidates, phi rewiring and opcode
//! substitution create *almost*-alignable bodies, and call insertion grows
//! the call graph the thunk machinery must preserve.

use f3m_ir::ids::{BlockId, FuncId, InstId};
use f3m_ir::function::Linkage;
use f3m_ir::inst::{FloatPredicate, Instruction, IntPredicate, Opcode, Predicate};
use f3m_ir::module::Module;
use f3m_ir::value::ValueKind;
use f3m_prng::SmallRng;

/// A structural mutator: returns `true` if it changed the module.
pub type Mutator = fn(&mut Module, &mut SmallRng) -> bool;

/// The mutator catalogue, as `(name, function)` pairs. Names are stable —
/// they key the campaign's coverage histogram and appear in corpus
/// metadata.
pub const MUTATORS: &[(&str, Mutator)] = &[
    ("split-block", mut_split_block),
    ("split-edge", mut_split_edge),
    ("swap-condbr", mut_swap_condbr),
    ("clone-function", mut_clone_function),
    ("rewire-phi", mut_rewire_phi),
    ("subst-opcode", mut_subst_opcode),
    ("perturb-const", mut_perturb_const),
    ("cast-round-trip", mut_cast_round_trip),
    ("insert-call", mut_insert_call),
];

/// Applies a randomly chosen mutator, retrying with fresh choices up to
/// `attempts` times if the drawn mutator finds nothing to do on this
/// module. Returns the name of the mutator that fired.
pub fn apply_random(
    m: &mut Module,
    rng: &mut SmallRng,
    attempts: usize,
) -> Option<&'static str> {
    for _ in 0..attempts {
        let (name, f) = MUTATORS[rng.gen_range(0..MUTATORS.len())];
        if f(m, rng) {
            return Some(name);
        }
    }
    None
}

/// Picks a random function definition with at least one instruction.
fn pick_func(m: &Module, rng: &mut SmallRng) -> Option<FuncId> {
    let cands: Vec<FuncId> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .collect();
    if cands.is_empty() {
        return None;
    }
    Some(cands[rng.gen_range(0..cands.len())])
}

/// Splits a random block at a random legal position. The tail (including
/// the terminator) moves to a new block; the head is re-terminated with an
/// unconditional branch. Semantics-preserving.
fn mut_split_block(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let f = m.function(fid);
    let cands: Vec<(BlockId, usize, usize)> = f
        .block_order
        .iter()
        .filter(|&&bb| f.terminator(bb).is_some())
        .map(|&bb| (bb, f.first_non_phi(bb), f.block(bb).insts.len()))
        .collect();
    if cands.is_empty() {
        return false;
    }
    let (bb, lo, len) = cands[rng.gen_range(0..cands.len())];
    let pos = rng.gen_range(lo..len);
    m.split_block(fid, bb, pos);
    true
}

/// Splits a random CFG edge by routing it through a fresh trampoline block
/// holding a single unconditional branch. Semantics-preserving; phis in the
/// old target are rewired (or extended, when the source keeps a parallel
/// edge to the same target) so that incoming blocks still match the
/// deduplicated predecessor set.
fn mut_split_edge(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let void = m.types.void();
    let (f, ts) = m.func_mut_and_types(fid);
    let mut edges: Vec<(BlockId, InstId, usize)> = Vec::new();
    for &bb in &f.block_order {
        if let Some((tid, inst)) = f.terminator(bb) {
            for si in 0..inst.blocks.len() {
                edges.push((bb, tid, si));
            }
        }
    }
    if edges.is_empty() {
        return false;
    }
    let (bb, tid, si) = edges[rng.gen_range(0..edges.len())];
    let succ = f.inst(tid).blocks[si];
    let tramp = f.add_block(format!("{}.edge", f.block(bb).name));
    f.append_inst(
        ts,
        tramp,
        Instruction {
            op: Opcode::Br,
            ty: void,
            operands: vec![],
            blocks: vec![succ],
            pred: None,
            aux_ty: None,
            parent: tramp,
            result: None,
        },
    );
    f.inst_mut(tid).blocks[si] = tramp;
    // Does bb still reach succ through another terminator slot (e.g. a
    // condbr with both arms on the same target)? Then bb stays a
    // predecessor and the phi needs an *additional* entry for the
    // trampoline; otherwise the bb entry is renamed to the trampoline.
    let still_pred = f.inst(tid).blocks.contains(&succ);
    let phi_ids: Vec<InstId> = f
        .block(succ)
        .insts
        .iter()
        .copied()
        .take_while(|&i| f.inst(i).op == Opcode::Phi)
        .collect();
    for pid in phi_ids {
        let inst = f.inst_mut(pid);
        if still_pred {
            if let Some(k) = inst.blocks.iter().position(|&b| b == bb) {
                let v = inst.operands[k];
                inst.blocks.push(tramp);
                inst.operands.push(v);
            }
        } else {
            for b in &mut inst.blocks {
                if *b == bb {
                    *b = tramp;
                }
            }
        }
    }
    true
}

/// Swaps the two targets of a random conditional branch. Changes behaviour
/// (intentionally — the oracle compares against the merged form of the
/// *mutated* module) but never validity: the successor set is unchanged.
fn mut_swap_condbr(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let cands: Vec<InstId> = m
        .function(fid)
        .linked_insts()
        .filter(|(_, i)| i.op == Opcode::CondBr)
        .map(|(id, _)| id)
        .collect();
    if cands.is_empty() {
        return false;
    }
    let id = cands[rng.gen_range(0..cands.len())];
    m.function_mut(fid).inst_mut(id).blocks.swap(0, 1);
    true
}

/// Clones a random definition under a fresh internal name. The clone is an
/// exact duplicate — prime merge bait — and internal linkage lets the pass
/// delete it once merged.
fn mut_clone_function(m: &mut Module, rng: &mut SmallRng) -> bool {
    let cands: Vec<FuncId> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| {
            let n = m.function(f).num_linked_insts();
            n > 0 && n <= 200
        })
        .collect();
    if cands.is_empty() {
        return false;
    }
    let fid = cands[rng.gen_range(0..cands.len())];
    let mut g = m.function(fid).clone();
    g.name = m.fresh_name("fuzz.clone");
    g.linkage = Linkage::Internal;
    m.add_function(g);
    true
}

/// Replaces a random phi incoming value with a constant of the phi's type
/// (or `undef` for non-scalar types). Constants dominate everything, so
/// validity is unconditional.
fn mut_rewire_phi(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let (f, ts) = m.func_mut_and_types(fid);
    let phis: Vec<InstId> = f
        .linked_insts()
        .filter(|(_, i)| i.op == Opcode::Phi)
        .map(|(id, _)| id)
        .collect();
    if phis.is_empty() {
        return false;
    }
    let pid = phis[rng.gen_range(0..phis.len())];
    let n = f.inst(pid).operands.len();
    let k = rng.gen_range(0..n);
    let ty = f.inst(pid).ty;
    let newv = if ts.is_int(ty) {
        let v = rng.gen_range(-8..=8i64);
        f.const_int(ts, ty, v)
    } else if ts.is_float(ty) {
        let v = rng.gen_range(-4.0..4.0);
        f.const_float(ty, v)
    } else {
        f.undef(ty)
    };
    f.inst_mut(pid).operands[k] = newv;
    true
}

const INT_POOL: [Opcode; 13] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::UDiv,
    Opcode::SDiv,
    Opcode::URem,
    Opcode::SRem,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
];

const FLOAT_POOL: [Opcode; 5] =
    [Opcode::FAdd, Opcode::FSub, Opcode::FMul, Opcode::FDiv, Opcode::FRem];

const INT_PREDS: [IntPredicate; 10] = [
    IntPredicate::Eq,
    IntPredicate::Ne,
    IntPredicate::Ugt,
    IntPredicate::Uge,
    IntPredicate::Ult,
    IntPredicate::Ule,
    IntPredicate::Sgt,
    IntPredicate::Sge,
    IntPredicate::Slt,
    IntPredicate::Sle,
];

const FLOAT_PREDS: [FloatPredicate; 6] = [
    FloatPredicate::Oeq,
    FloatPredicate::One,
    FloatPredicate::Ogt,
    FloatPredicate::Oge,
    FloatPredicate::Olt,
    FloatPredicate::Ole,
];

/// Substitutes the opcode of a random binary operation within its type
/// family, or the predicate of a random comparison. All members of each
/// pool share the same shape and type rules, so validity is preserved.
fn mut_subst_opcode(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let f = m.function_mut(fid);
    let cands: Vec<InstId> = f
        .linked_insts()
        .filter(|(_, i)| i.op.is_binary() || matches!(i.op, Opcode::ICmp | Opcode::FCmp))
        .map(|(id, _)| id)
        .collect();
    if cands.is_empty() {
        return false;
    }
    let id = cands[rng.gen_range(0..cands.len())];
    let op = f.inst(id).op;
    if op.is_int_binary() {
        f.inst_mut(id).op = INT_POOL[rng.gen_range(0..INT_POOL.len())];
    } else if op.is_float_binary() {
        f.inst_mut(id).op = FLOAT_POOL[rng.gen_range(0..FLOAT_POOL.len())];
    } else if op == Opcode::ICmp {
        f.inst_mut(id).pred =
            Some(Predicate::Int(INT_PREDS[rng.gen_range(0..INT_PREDS.len())]));
    } else {
        f.inst_mut(id).pred =
            Some(Predicate::Float(FLOAT_PREDS[rng.gen_range(0..FLOAT_PREDS.len())]));
    }
    true
}

/// Replaces a random constant operand with a perturbed constant of the same
/// type. Callee slots of calls/invokes are left alone (they hold function
/// references, and perturbing them is `insert-call`'s job).
fn mut_perturb_const(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let (f, ts) = m.func_mut_and_types(fid);
    let mut cands: Vec<(InstId, usize)> = Vec::new();
    for (id, inst) in f.linked_insts() {
        let skip_callee = matches!(inst.op, Opcode::Call | Opcode::Invoke);
        for (k, &op) in inst.operands.iter().enumerate() {
            if skip_callee && k == 0 {
                continue;
            }
            if matches!(f.value(op).kind, ValueKind::ConstInt(_) | ValueKind::ConstFloat(_)) {
                cands.push((id, k));
            }
        }
    }
    if cands.is_empty() {
        return false;
    }
    let (id, k) = cands[rng.gen_range(0..cands.len())];
    let old = f.inst(id).operands[k];
    let ty = f.value(old).ty;
    let newv = match f.value(old).kind {
        ValueKind::ConstInt(v) => {
            let mut delta = rng.gen_range(-16..=16i64);
            if delta == 0 {
                delta = 1;
            }
            f.const_int(ts, ty, v.wrapping_add(delta))
        }
        ValueKind::ConstFloat(bits) => {
            let old_val = f64::from_bits(bits);
            let base = if old_val.is_finite() { old_val } else { 0.0 };
            // Keep the perturbation finite; downstream arithmetic may still
            // produce NaN/inf, which the oracle compares bit-for-bit.
            let v = base * 0.5 + rng.gen_range(-8.0..8.0);
            f.const_float(ty, v)
        }
        _ => unreachable!("candidate filter admits only constants"),
    };
    if newv == old {
        return false;
    }
    f.inst_mut(id).operands[k] = newv;
    true
}

/// Routes a random integer-valued instruction result through a widening /
/// narrowing cast pair, replacing all its uses with the casted-back value.
/// Identity for widths below 64 (sext then trunc); intentionally lossy for
/// `i64` (trunc to `i32` then sext back).
fn mut_cast_round_trip(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(fid) = pick_func(m, rng) else { return false };
    let i64t = m.types.int(64);
    let i32t = m.types.int(32);
    let (f, ts) = m.func_mut_and_types(fid);
    let mut cands: Vec<(BlockId, usize)> = Vec::new();
    for &bb in &f.block_order {
        for (p, (_, inst)) in f.block_insts(bb).enumerate() {
            if inst.is_terminator() {
                continue;
            }
            let Some(r) = inst.result else { continue };
            match ts.int_bits(f.value(r).ty) {
                Some(bits) if bits <= 64 => cands.push((bb, p)),
                _ => {}
            }
        }
    }
    if cands.is_empty() {
        return false;
    }
    let (bb, p) = cands[rng.gen_range(0..cands.len())];
    let inst_id = f.block(bb).insts[p];
    let r = f.inst(inst_id).result.expect("candidate has a result");
    let ty = f.value(r).ty;
    let bits = ts.int_bits(ty).expect("candidate is integer-typed");
    // Phi results must not have non-phi instructions inserted into the
    // leading phi group; the first legal point still sees the def.
    let pos = (p + 1).max(f.first_non_phi(bb));
    let (wide_op, wide_ty, back_op) = if bits < 64 {
        (Opcode::SExt, i64t, Opcode::Trunc)
    } else {
        (Opcode::Trunc, i32t, Opcode::SExt)
    };
    let mk = |op: Opcode, ty, operand| Instruction {
        op,
        ty,
        operands: vec![operand],
        blocks: vec![],
        pred: None,
        aux_ty: None,
        parent: bb,
        result: None,
    };
    let (wide_id, wide_res) = f.insert_inst(ts, bb, pos, mk(wide_op, wide_ty, r));
    let (_, back_res) = f.insert_inst(ts, bb, pos + 1, mk(back_op, ty, wide_res.unwrap()));
    f.replace_all_uses(r, back_res.unwrap());
    // replace_all_uses also rewired the widening cast's own input; undo
    // that one edge to break the cycle.
    f.inst_mut(wide_id).operands[0] = r;
    true
}

/// True if `from`'s body references `target` (transitively) through
/// function-reference constants. Overapproximates by scanning the whole
/// value arena, which can only reject more call insertions than necessary.
fn reaches(m: &Module, from: FuncId, target: FuncId) -> bool {
    let mut seen = vec![false; m.num_functions()];
    let mut work = vec![from];
    seen[from.index()] = true;
    while let Some(f) = work.pop() {
        if f == target {
            return true;
        }
        for (_, v) in m.function(f).values() {
            if let ValueKind::FuncRef(g) = v.kind {
                if !seen[g.index()] {
                    seen[g.index()] = true;
                    work.push(g);
                }
            }
        }
    }
    false
}

/// Inserts a call to a random function with constant arguments into a
/// random block of another function. The callee is rejected if it can
/// (transitively) reach the caller, so the call graph stays acyclic and no
/// unbounded recursion appears.
fn mut_insert_call(m: &mut Module, rng: &mut SmallRng) -> bool {
    let Some(caller) = pick_func(m, rng) else { return false };
    let ptr_ty = m.types.ptr();
    let callees: Vec<FuncId> = m
        .functions()
        .filter(|&(id, f)| {
            id != caller
                && f.params
                    .iter()
                    .all(|&p| m.types.is_int(p) || m.types.is_float(p) || m.types.is_ptr(p))
                && !reaches(m, id, caller)
        })
        .map(|(id, _)| id)
        .collect();
    if callees.is_empty() {
        return false;
    }
    let callee = callees[rng.gen_range(0..callees.len())];
    let params = m.function(callee).params.clone();
    let ret_ty = m.function(callee).ret_ty;
    let (f, ts) = m.func_mut_and_types(caller);
    let fref = f.func_ref(callee, ptr_ty);
    let mut operands = vec![fref];
    for &p in &params {
        let arg = if ts.is_int(p) {
            let v = rng.gen_range(-100..=100i64);
            f.const_int(ts, p, v)
        } else if ts.is_float(p) {
            let v = rng.gen_range(-16.0..16.0);
            f.const_float(p, v)
        } else {
            f.undef(p)
        };
        operands.push(arg);
    }
    let blocks: Vec<BlockId> =
        f.block_order.iter().copied().filter(|&bb| f.terminator(bb).is_some()).collect();
    if blocks.is_empty() {
        return false;
    }
    let bb = blocks[rng.gen_range(0..blocks.len())];
    let pos = rng.gen_range(f.first_non_phi(bb)..f.block(bb).insts.len());
    f.insert_inst(
        ts,
        bb,
        pos,
        Instruction {
            op: Opcode::Call,
            ty: ret_ty,
            operands,
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        },
    );
    true
}
