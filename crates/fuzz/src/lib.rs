//! # f3m-fuzz — differential fuzzing for the merging pipeline
//!
//! The merging pass is exercised end-to-end against randomly *mutated*
//! workload modules, not just generator output: structural mutators
//! ([`mutate`]) reshape valid IR in ways the generator never produces
//! (split blocks, parallel CFG edges, perturbed constants, cloned
//! functions, extra call edges), and the merge oracle ([`oracle`])
//! cross-checks every strategy at several worker counts with a verifier,
//! an interpreter differential, and a printer round-trip. Failures are
//! minimized by a delta-debugging reducer ([`reduce`]) and written to a
//! corpus for replay; [`campaign`] ties it together deterministically,
//! seed in, JSON summary out. Surfaced on the command line as `f3m fuzz`.

pub mod campaign;
pub mod global;
pub mod mutate;
pub mod oracle;
pub mod protocol;
pub mod reduce;

pub use campaign::{
    iteration_seed, run_campaign, run_campaign_traced, run_campaign_with, CampaignConfig,
    CampaignSummary, FailureRecord,
};
pub use global::{
    build_module_set, check_module_set, replay_global_case, run_global_campaign,
    GlobalCampaignConfig, GlobalCampaignSummary, GlobalFailure,
};
pub use mutate::{apply_random, Mutator, MUTATORS};
pub use protocol::{
    replay_case, run_protocol_campaign, ProtocolCampaignConfig, ProtocolFailure, ProtocolSummary,
};
pub use oracle::{
    check_module, check_module_with, FailureKind, OracleConfig, OracleFailure, OracleOutcome,
    StrategyKind,
};
pub use reduce::{reduce, ReductionStats};
