//! The merge oracle: decides whether one module survives merging intact.
//!
//! Three checks per (strategy, jobs) cell, in order:
//!
//! 1. **Verifier**: the merged module must pass `verify_module`.
//! 2. **Round-trip**: printing the merged module must be a fixpoint under
//!    reparse (`print(parse(print(m))) == print(m)`).
//! 3. **Differential**: for each driver argument, the merged module must
//!    observe identically to the base module — same return value (floats
//!    compared bit-for-bit), same `ext_sink` checksum, or the same trap
//!    class. Cells where either side hits a resource limit are skipped,
//!    not failed: merging legitimately changes fuel/memory/depth use.
//!
//! A fourth cross-cell check catches scheduling bugs: within one strategy,
//! every `--jobs` level must print the identical merged module
//! (**jobs-divergence**), since the wave commit is documented to be
//! deterministic.

use f3m_core::pass::{run_pass, PassConfig};
use f3m_interp::oracle::{observe, Observation};
use f3m_interp::{Limits, Val};
use f3m_ir::module::Module;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_ir::verify::verify_module;

/// Candidate-selection strategies the oracle exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// HyFM opcode-frequency baseline.
    Hyfm,
    /// F3M with static MinHash parameters.
    F3m,
    /// F3M with size-adaptive parameters (Eqs. 3–4).
    Adaptive,
}

impl StrategyKind {
    /// Every strategy, in reporting order.
    pub const ALL: [StrategyKind; 3] =
        [StrategyKind::Hyfm, StrategyKind::F3m, StrategyKind::Adaptive];

    /// Stable name used in failure records and corpus metadata.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Hyfm => "hyfm",
            StrategyKind::F3m => "f3m",
            StrategyKind::Adaptive => "f3m-adaptive",
        }
    }

    /// Parses a strategy name back (inverse of [`StrategyKind::name`]).
    pub fn from_name(s: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The pass configuration for this strategy at a worker count.
    pub fn config(self, jobs: usize) -> PassConfig {
        let base = match self {
            StrategyKind::Hyfm => PassConfig::hyfm(),
            StrategyKind::F3m => PassConfig::f3m(),
            StrategyKind::Adaptive => PassConfig::f3m_adaptive(),
        };
        base.with_jobs(jobs)
    }
}

/// What the oracle runs per module.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Entry point called for the differential check.
    pub driver: String,
    /// Arguments fed to the driver, one observation each.
    pub args: Vec<i64>,
    /// Execution limits for every observation.
    pub limits: Limits,
    /// Strategies to exercise.
    pub strategies: Vec<StrategyKind>,
    /// Worker counts per strategy; all must produce identical output.
    pub jobs_levels: Vec<usize>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            driver: "__driver".to_string(),
            args: vec![1, -9, 4242],
            limits: Limits::default(),
            strategies: StrategyKind::ALL.to_vec(),
            jobs_levels: vec![1, 8],
        }
    }
}

impl OracleConfig {
    /// Narrows the oracle to a single (strategy, jobs) cell — the shape the
    /// reducer uses so every probe re-checks only the failing
    /// configuration.
    pub fn narrowed(&self, strategy: StrategyKind, jobs: usize) -> OracleConfig {
        OracleConfig {
            strategies: vec![strategy],
            jobs_levels: vec![jobs],
            ..self.clone()
        }
    }
}

/// Which oracle check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The merged module does not verify.
    MergedInvalid,
    /// Base and merged modules observed differently.
    Differential,
    /// The merged module's printed form is not a reparse fixpoint.
    RoundTrip,
    /// Two worker counts produced different merged modules.
    JobsDivergence,
}

impl FailureKind {
    /// Stable name used in JSON summaries and corpus metadata.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::MergedInvalid => "merged-invalid",
            FailureKind::Differential => "differential",
            FailureKind::RoundTrip => "round-trip",
            FailureKind::JobsDivergence => "jobs-divergence",
        }
    }
}

/// A concrete oracle failure: what broke, where, and how.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// The check that failed.
    pub kind: FailureKind,
    /// Strategy under which it failed.
    pub strategy: StrategyKind,
    /// Worker count under which it failed.
    pub jobs: usize,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// Result of running the oracle over one module.
#[derive(Clone, Debug, Default)]
pub struct OracleOutcome {
    /// The first failure found, if any.
    pub failure: Option<OracleFailure>,
    /// Differential cells skipped because either side hit a resource limit.
    pub resource_skips: usize,
}

/// `Val` equality with floats compared bit-for-bit, so a NaN result is
/// equal to itself and the oracle never reports a false differential.
fn val_eq(a: Val, b: Val) -> bool {
    match (a, b) {
        (Val::Float(x), Val::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn obs_eq(a: &Observation, b: &Observation) -> bool {
    match (a, b) {
        (
            Observation::Completed { ret: r1, checksum: c1 },
            Observation::Completed { ret: r2, checksum: c2 },
        ) => {
            c1 == c2
                && match (r1, r2) {
                    (Some(x), Some(y)) => val_eq(*x, *y),
                    (None, None) => true,
                    _ => false,
                }
        }
        _ => a == b,
    }
}

/// Runs the full oracle with the production merge pass.
pub fn check_module(base: &Module, oc: &OracleConfig) -> OracleOutcome {
    check_module_with(base, oc, |m, cfg| {
        run_pass(m, cfg);
    })
}

/// Runs the oracle with an injectable merge step. The campaign's
/// self-test threads a deliberately buggy merge through here to prove the
/// oracle catches real codegen bugs.
pub fn check_module_with<F: Fn(&mut Module, &PassConfig)>(
    base: &Module,
    oc: &OracleConfig,
    merge: F,
) -> OracleOutcome {
    let mut outcome = OracleOutcome::default();
    let baseline: Vec<Observation> = oc
        .args
        .iter()
        .map(|&a| observe(base, &oc.driver, &[Val::Int(a)], oc.limits))
        .collect();
    for &strategy in &oc.strategies {
        let mut printed_per_jobs: Vec<(usize, String)> = Vec::new();
        for &jobs in &oc.jobs_levels {
            let fail = |kind, detail| OracleFailure { kind, strategy, jobs, detail };
            let mut m = base.clone();
            merge(&mut m, &strategy.config(jobs));
            if let Err(errs) = verify_module(&m) {
                outcome.failure =
                    Some(fail(FailureKind::MergedInvalid, format!("{:?}", errs[0])));
                return outcome;
            }
            let p1 = print_module(&m);
            match parse_module(&p1) {
                Ok(m2) => {
                    let p2 = print_module(&m2);
                    if p1 != p2 {
                        outcome.failure = Some(fail(
                            FailureKind::RoundTrip,
                            "reprinted module differs from first printing".to_string(),
                        ));
                        return outcome;
                    }
                }
                Err(e) => {
                    outcome.failure =
                        Some(fail(FailureKind::RoundTrip, format!("reparse failed: {e:?}")));
                    return outcome;
                }
            }
            for (i, base_obs) in baseline.iter().enumerate() {
                let merged_obs = observe(&m, &oc.driver, &[Val::Int(oc.args[i])], oc.limits);
                if base_obs.is_resource_limit() || merged_obs.is_resource_limit() {
                    outcome.resource_skips += 1;
                    continue;
                }
                if !obs_eq(base_obs, &merged_obs) {
                    outcome.failure = Some(fail(
                        FailureKind::Differential,
                        format!(
                            "driver({}) base {:?} vs merged {:?}",
                            oc.args[i], base_obs, merged_obs
                        ),
                    ));
                    return outcome;
                }
            }
            printed_per_jobs.push((jobs, p1));
        }
        if let Some((j0, p0)) = printed_per_jobs.first() {
            for (j, p) in &printed_per_jobs[1..] {
                if p != p0 {
                    outcome.failure = Some(OracleFailure {
                        kind: FailureKind::JobsDivergence,
                        strategy,
                        jobs: *j,
                        detail: format!("merged module differs between --jobs {j0} and {j}"),
                    });
                    return outcome;
                }
            }
        }
    }
    outcome
}
