//! Replays the checked-in global-merge reproducer corpus.
//!
//! Every line of `corpus/global/seeds.txt` is one case seed of the
//! global fuzzer ([`f3m_fuzz::replay_global_case`]); each replay
//! reconstructs that seeded multi-module set and enforces the full
//! oracle — jobs 1/2/8 byte-identity of the two-phase plan, verifier
//! and print/parse fixpoint on the merged module, and the cross-module
//! `__driver` differential. The corpus is a regression net: any global
//! planner bug found by a campaign gets its case seed appended here.

use std::path::PathBuf;

fn corpus_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus/global/seeds.txt")
}

fn corpus_seeds() -> Vec<u64> {
    let text = std::fs::read_to_string(corpus_file()).expect("corpus/global/seeds.txt exists");
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().expect("seed lines are u64"))
        .collect()
}

#[test]
fn checked_in_global_corpus_replays_clean() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 8, "corpus should carry a representative seed set");
    let mut cross_module = 0u64;
    let mut intra_only = 0u64;
    for seed in seeds {
        match f3m_fuzz::replay_global_case(seed) {
            Ok(scenario) => {
                println!("seed {seed} -> {scenario}");
                if scenario.contains("cross_module=0") {
                    intra_only += 1;
                } else {
                    cross_module += 1;
                }
            }
            Err(e) => panic!("reproducer seed {seed} violated the global oracle: {e}"),
        }
    }
    // The corpus must exercise both regimes: sets where global merging
    // wins across module boundaries, and sets where it degenerates to
    // per-module behaviour.
    assert!(cross_module >= 4, "corpus should carry cross-module scenarios");
    assert!(intra_only >= 1, "corpus should carry an intra-module-only scenario");
}
