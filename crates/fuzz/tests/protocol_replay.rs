//! Replays the checked-in protocol-fuzz reproducer corpus.
//!
//! Every line of `corpus/protocol/seeds.txt` is one case seed of the
//! protocol fuzzer ([`f3m_fuzz::protocol::replay_case`]); each replay
//! runs that seeded scenario against a fresh daemon and enforces the
//! full oracle (no panic, no deadlock, well-formed responses, liveness
//! after). The corpus is a regression net: any protocol bug found by a
//! campaign gets its case seed appended here.

use std::path::PathBuf;

fn corpus_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus/protocol/seeds.txt")
}

fn corpus_seeds() -> Vec<u64> {
    let text = std::fs::read_to_string(corpus_file()).expect("corpus/protocol/seeds.txt exists");
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().expect("seed lines are u64"))
        .collect()
}

#[test]
fn checked_in_reproducer_corpus_replays_clean() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 8, "corpus should carry a representative seed set");
    let mut scenarios = Vec::new();
    for seed in seeds {
        match f3m_fuzz::protocol::replay_case(seed) {
            Ok(scenario) => {
                println!("seed {seed} -> {scenario}");
                scenarios.push(scenario);
            }
            Err(e) => panic!("reproducer seed {seed} violated the oracle: {e}"),
        }
    }
    scenarios.sort();
    scenarios.dedup();
    assert!(
        scenarios.len() >= 4,
        "corpus should cover several distinct scenarios, got {scenarios:?}"
    );
}
