//! A short campaign against the real pass must come back clean: every
//! strategy, at one and eight workers, survives mutated modules with no
//! oracle failures. The CI fuzz-smoke step runs the same thing at larger
//! scale through `f3m fuzz`.

use f3m_fuzz::campaign::{run_campaign, CampaignConfig};

#[test]
fn short_campaign_on_real_pass_is_clean() {
    let cfg = CampaignConfig { iterations: 20, seed: 0xF3F3, ..Default::default() };
    let summary = run_campaign(&cfg);
    assert!(
        summary.failures.is_empty(),
        "real pass failed the oracle:\n{}",
        summary.to_json()
    );
    assert_eq!(summary.iterations, 20);
    assert!(summary.mutations_applied > 0, "no mutations fired in 20 iterations");
    // Most of the catalogue should fire across 20 stacked-mutation draws.
    let fired = summary.histogram.iter().filter(|(_, n)| *n > 0).count();
    assert!(fired >= 5, "only {fired} distinct mutators fired: {:?}", summary.histogram);
}

#[test]
fn campaigns_are_deterministic() {
    let cfg = CampaignConfig { iterations: 4, seed: 1234, ..Default::default() };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.to_json(), b.to_json());
}
