//! The oracle's own end-to-end self-test: a deliberately buggy merge step
//! (every integer comparison inside merged functions gets its predicate
//! negated) must be caught by the differential oracle, and the reducer
//! must shrink the reproducer to a handful of functions.

use f3m_core::pass::{run_pass, PassConfig};
use f3m_fuzz::campaign::{run_campaign_with, CampaignConfig};
use f3m_fuzz::oracle::{OracleConfig, StrategyKind};
use f3m_ir::inst::{IntPredicate, Opcode, Predicate};
use f3m_ir::module::Module;

fn negate(p: IntPredicate) -> IntPredicate {
    match p {
        IntPredicate::Eq => IntPredicate::Ne,
        IntPredicate::Ne => IntPredicate::Eq,
        IntPredicate::Ugt => IntPredicate::Ule,
        IntPredicate::Uge => IntPredicate::Ult,
        IntPredicate::Ult => IntPredicate::Uge,
        IntPredicate::Ule => IntPredicate::Ugt,
        IntPredicate::Sgt => IntPredicate::Sle,
        IntPredicate::Sge => IntPredicate::Slt,
        IntPredicate::Slt => IntPredicate::Sge,
        IntPredicate::Sle => IntPredicate::Sgt,
    }
}

/// The real pass followed by an injected codegen bug: negate every icmp
/// predicate inside freshly created merged functions (this corrupts both
/// the discriminator guards and any compares that were part of the
/// originals' bodies).
fn buggy_merge(m: &mut Module, cfg: &PassConfig) {
    run_pass(m, cfg);
    for fid in m.defined_functions() {
        if !m.function(fid).name.starts_with("__merged") {
            continue;
        }
        let f = m.function_mut(fid);
        let cmps: Vec<_> = f
            .linked_insts()
            .filter(|(_, i)| i.op == Opcode::ICmp)
            .map(|(id, _)| id)
            .collect();
        for id in cmps {
            if let Some(Predicate::Int(p)) = f.inst(id).pred {
                f.inst_mut(id).pred = Some(Predicate::Int(negate(p)));
            }
        }
    }
}

#[test]
fn injected_codegen_bug_is_caught_and_reduced() {
    let corpus = std::env::temp_dir().join(format!("f3m-fuzz-selftest-{}", std::process::id()));
    // Debug builds interpret ~20x slower; three iterations still catch the
    // injected bug on this seed and keep `cargo test` under control.
    let iterations = if cfg!(debug_assertions) { 3 } else { 6 };
    let cfg = CampaignConfig {
        iterations,
        seed: 0x0BAD_C0DE,
        corpus_dir: Some(corpus.clone()),
        oracle: OracleConfig {
            strategies: vec![StrategyKind::F3m],
            jobs_levels: vec![1],
            // One driver argument keeps the reducer's many predicate
            // evaluations cheap; negated guards diverge on almost any input.
            args: vec![17],
            ..OracleConfig::default()
        },
        ..CampaignConfig::default()
    };
    let summary = run_campaign_with(&cfg, buggy_merge);
    assert!(
        summary.failures.iter().all(|f| f.kind != "mutator-invalid"),
        "mutators must stay valid regardless of the merge step: {:?}",
        summary.failures
    );
    let diffs: Vec<_> =
        summary.failures.iter().filter(|f| f.kind == "differential").collect();
    assert!(
        !diffs.is_empty(),
        "injected predicate bug was never caught in {} iterations",
        cfg.iterations
    );
    let best = diffs.iter().min_by_key(|f| f.functions_after).unwrap();
    assert!(
        best.functions_after <= 10,
        "reducer left {} functions (from {})",
        best.functions_after,
        best.functions_before
    );
    assert!(
        best.insts_after < best.insts_before,
        "reducer made no instruction-level progress: {} -> {}",
        best.insts_before,
        best.insts_after
    );
    // The reproducer and its metadata were written and replay cleanly.
    let artifact = best.artifact.as_ref().expect("corpus dir was configured");
    let text = std::fs::read_to_string(artifact).expect("reproducer written");
    let reduced = f3m_ir::parser::parse_module(&text).expect("reproducer parses");
    f3m_ir::verify::verify_module(&reduced).expect("reproducer verifies");
    let meta = std::fs::read_to_string(artifact.replace(".ir", ".meta.json"))
        .expect("metadata written");
    assert!(meta.contains("\"kind\": \"differential\""), "{meta}");
    let outcome = f3m_fuzz::check_module_with(
        &reduced,
        &cfg.oracle.narrowed(StrategyKind::F3m, 1),
        buggy_merge,
    );
    assert!(
        outcome.failure.is_some(),
        "written reproducer no longer reproduces the injected bug"
    );
    let _ = std::fs::remove_dir_all(&corpus);
}
