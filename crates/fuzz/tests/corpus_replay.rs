//! Replay every `.ir` module in the repository's `corpus/` directory
//! through the full oracle against the real pass. Seeds and previously
//! minimized reproducers alike must stay green: a corpus module that
//! fails here is a reintroduced bug.

use std::path::PathBuf;

use f3m_fuzz::oracle::{check_module, OracleConfig};
use f3m_ir::parser::parse_module;
use f3m_ir::verify::verify_module;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn corpus_modules_replay_clean() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no .ir files under {}", dir.display());

    let oc = OracleConfig::default();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name}: parse error {e:?}"));
        verify_module(&m).unwrap_or_else(|e| panic!("{name}: verifier error {:?}", e[0]));
        let outcome = check_module(&m, &oc);
        assert!(
            outcome.failure.is_none(),
            "{name}: oracle failure {:?}",
            outcome.failure
        );
    }
}
