//! The mutator contract: every mutator, applied to any valid module, must
//! leave it verifier-clean and printer/parser round-trippable. Behaviour
//! may change; validity may not.

use f3m_fuzz::mutate::MUTATORS;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_ir::verify::verify_module;
use f3m_prng::SmallRng;
use f3m_workloads::{build_module, table1};

fn spec(seed: u64, functions: usize, mean_insts: usize) -> f3m_workloads::WorkloadSpec {
    let mut s = table1()[0].clone();
    s.functions = functions;
    s.mean_insts = mean_insts;
    s.seed = seed;
    s
}

#[test]
fn every_mutator_preserves_validity_and_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xF0CC_0001);
    for round in 0..40 {
        let s = spec(
            rng.gen_range(0..50_000u64),
            rng.gen_range(6..=24usize),
            rng.gen_range(8..=26usize),
        );
        let base = build_module(&s);
        for &(name, mutator) in MUTATORS {
            let mut m = base.clone();
            if !mutator(&mut m, &mut rng) {
                continue;
            }
            if let Err(errs) = verify_module(&m) {
                panic!("round {round}: mutator {name} broke the verifier: {:?}", errs[0]);
            }
            let p1 = print_module(&m);
            let m2 = parse_module(&p1)
                .unwrap_or_else(|e| panic!("round {round}: mutator {name} unparseable: {e:?}"));
            assert_eq!(
                p1,
                print_module(&m2),
                "round {round}: mutator {name} breaks the print fixpoint"
            );
        }
    }
}

#[test]
fn stacked_mutations_preserve_validity() {
    let mut rng = SmallRng::seed_from_u64(0xF0CC_0002);
    for round in 0..30 {
        let s = spec(rng.gen_range(0..50_000u64), 10, 16);
        let mut m = build_module(&s);
        let mut trace: Vec<&'static str> = Vec::new();
        for _ in 0..6 {
            if let Some(name) = f3m_fuzz::apply_random(&mut m, &mut rng, 12) {
                trace.push(name);
            }
            if let Err(errs) = verify_module(&m) {
                panic!("round {round}: stack {trace:?} broke the verifier: {:?}", errs[0]);
            }
        }
        let p1 = print_module(&m);
        let m2 = parse_module(&p1)
            .unwrap_or_else(|e| panic!("round {round}: stack {trace:?} unparseable: {e:?}"));
        assert_eq!(p1, print_module(&m2), "round {round}: stack {trace:?}");
    }
}

#[test]
fn mutator_application_is_deterministic() {
    for &(name, mutator) in MUTATORS {
        let s = spec(7, 10, 18);
        let mut m1 = build_module(&s);
        let mut m2 = build_module(&s);
        let mut r1 = SmallRng::seed_from_u64(0xF0CC_0003);
        let mut r2 = SmallRng::seed_from_u64(0xF0CC_0003);
        let a1 = mutator(&mut m1, &mut r1);
        let a2 = mutator(&mut m2, &mut r2);
        assert_eq!(a1, a2, "{name} applied differently across identical runs");
        assert_eq!(print_module(&m1), print_module(&m2), "{name} is nondeterministic");
    }
}
