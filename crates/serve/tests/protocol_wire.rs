//! Wire-level protocol tests against a live daemon: framing abuse,
//! malformed payloads, backpressure, and queue-wait deadlines. Every
//! failure mode must produce an `error`/`busy` frame (or a clean drop),
//! never a panic or a hang.

use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use f3m_serve::protocol::{
    read_frame, render_request, write_frame, Request, RequestEnvelope, MAX_FRAME,
};
use f3m_serve::{Client, ServeConfig, Server};
use f3m_trace::Json;

fn start(jobs: usize, queue_cap: usize) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        jobs,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn stop(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut c = Client::connect(addr).unwrap();
    c.call_expect(Request::Shutdown, "bye").unwrap();
    handle.join().unwrap().expect("server run() returns Ok after shutdown");
}

/// Sends `env` as a frame on a raw stream (no response read).
fn send(stream: &mut TcpStream, env: &RequestEnvelope) {
    write_frame(stream, render_request(env).as_bytes()).unwrap();
}

fn recv(stream: &mut TcpStream) -> Json {
    let payload = read_frame(stream).unwrap().expect("response frame");
    f3m_serve::protocol::parse_response(&payload).unwrap()
}

fn with_id(id: u64, body: Request) -> RequestEnvelope {
    RequestEnvelope { id: Some(id), deadline_ms: None, body }
}

#[test]
fn ping_round_trips_and_echoes_id() {
    let (addr, h) = start(2, 8);
    let mut c = Client::connect(addr).unwrap();
    let v = c
        .request(&RequestEnvelope { id: Some(42), deadline_ms: None, body: Request::Ping })
        .unwrap();
    assert_eq!(v.get("type").and_then(Json::as_str), Some("pong"));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
    stop(addr, h);
}

#[test]
fn malformed_json_gets_error_frame_and_connection_survives() {
    let (addr, h) = start(1, 8);
    let mut c = Client::connect(addr).unwrap();
    for bad in [&b"{ not json"[..], b"[1,2,3]", b"{\"type\":\"warp\"}", b"\xff\xfe"] {
        let raw = c.send_raw(bad).unwrap();
        let v = f3m_serve::protocol::parse_response(raw.as_bytes()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"), "payload {bad:?}");
    }
    // Same connection still serves well-formed requests.
    c.call_expect(Request::Ping, "pong").unwrap();
    stop(addr, h);
}

#[test]
fn truncated_frame_drops_connection_without_wedging_the_server() {
    let (addr, h) = start(1, 8);
    {
        let mut s = TcpStream::connect(addr).unwrap();
        // Claim 100 bytes, deliver 10, hang up mid-frame.
        std::io::Write::write_all(&mut s, &100u32.to_be_bytes()).unwrap();
        std::io::Write::write_all(&mut s, b"0123456789").unwrap();
    }
    // A half-delivered length prefix is the same story.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[0u8, 0]).unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    c.call_expect(Request::Ping, "pong").unwrap();
    stop(addr, h);
}

#[test]
fn oversized_length_prefix_is_refused_with_an_error_frame() {
    let (addr, h) = start(1, 8);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    std::io::Write::write_all(&mut s, &(MAX_FRAME + 1).to_be_bytes()).unwrap();
    let v = recv(&mut s);
    assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
    let msg = v.get("message").and_then(Json::as_str).unwrap();
    assert!(msg.contains("exceeds maximum"), "unexpected message: {msg}");
    // The stream is desynchronized, so the server closes it.
    assert!(read_frame(&mut s).unwrap().is_none(), "connection should be closed");
    stop(addr, h);
}

#[test]
fn full_queue_answers_busy_without_dropping_accepted_work() {
    let (addr, h) = start(1, 1);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Occupy the single worker...
    send(&mut s, &with_id(1, Request::Sleep { ms: 300 }));
    std::thread::sleep(Duration::from_millis(100));
    // ...fill the queue (cap 1)...
    send(&mut s, &with_id(2, Request::Sleep { ms: 10 }));
    // ...and overflow it.
    send(&mut s, &with_id(3, Request::Ping));
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..3 {
        let v = recv(&mut s);
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        by_id.insert(id, v.get("type").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(by_id[&1], "slept");
    assert_eq!(by_id[&2], "slept", "accepted work must still complete");
    assert_eq!(by_id[&3], "busy");
    stop(addr, h);
}

#[test]
fn deadline_expired_in_queue_is_answered_with_an_error() {
    let (addr, h) = start(1, 8);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    send(&mut s, &with_id(1, Request::Sleep { ms: 250 }));
    std::thread::sleep(Duration::from_millis(50));
    send(
        &mut s,
        &RequestEnvelope { id: Some(2), deadline_ms: Some(50), body: Request::Ping },
    );
    let first = recv(&mut s);
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("type").and_then(Json::as_str), Some("slept"));
    let second = recv(&mut s);
    assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
    assert_eq!(second.get("type").and_then(Json::as_str), Some("error"));
    let msg = second.get("message").and_then(Json::as_str).unwrap();
    assert!(msg.contains("deadline"), "unexpected message: {msg}");
    stop(addr, h);
}

#[test]
fn rejections_show_up_in_server_counters() {
    let (addr, h) = start(1, 1);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    send(&mut s, &with_id(1, Request::Sleep { ms: 200 }));
    std::thread::sleep(Duration::from_millis(50));
    send(&mut s, &with_id(2, Request::Sleep { ms: 1 }));
    send(&mut s, &with_id(3, Request::Ping)); // overflows → busy
    for _ in 0..3 {
        recv(&mut s);
    }
    let mut c = Client::connect(addr).unwrap();
    let v = c.call_expect(Request::Stats, "stats").unwrap();
    let server = v.get("server").unwrap();
    assert_eq!(server.get("rejects_busy").and_then(Json::as_u64), Some(1));
    assert!(server.get("queue_depth_hwm").and_then(Json::as_u64).unwrap() >= 1);
    let reqs = server.get("requests").unwrap();
    assert_eq!(reqs.get("sleep").and_then(Json::as_u64), Some(2));
    stop(addr, h);
}
