//! Wire-level protocol tests against a live daemon: framing abuse,
//! malformed payloads, backpressure, queue-wait deadlines, and the
//! incremental `update`/`if_epoch` surface. Every failure mode must
//! produce an `error`/`busy`/`superseded` frame (or a clean drop),
//! never a panic or a hang.

use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use f3m_ir::module::Module;
use f3m_serve::protocol::{
    read_frame, render_request, write_frame, Request, RequestEnvelope, MAX_FRAME,
};
use f3m_serve::{Client, ServeConfig, Server};
use f3m_trace::Json;

fn start(jobs: usize, queue_cap: usize) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        jobs,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn stop(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut c = Client::connect(addr).unwrap();
    c.call_expect(Request::Shutdown, "bye").unwrap();
    handle.join().unwrap().expect("server run() returns Ok after shutdown");
}

/// Sends `env` as a frame on a raw stream (no response read).
fn send(stream: &mut TcpStream, env: &RequestEnvelope) {
    write_frame(stream, render_request(env).as_bytes()).unwrap();
}

fn recv(stream: &mut TcpStream) -> Json {
    let payload = read_frame(stream).unwrap().expect("response frame");
    f3m_serve::protocol::parse_response(&payload).unwrap()
}

fn with_id(id: u64, body: Request) -> RequestEnvelope {
    RequestEnvelope { id: Some(id), deadline_ms: None, body }
}

#[test]
fn ping_round_trips_and_echoes_id() {
    let (addr, h) = start(2, 8);
    let mut c = Client::connect(addr).unwrap();
    let v = c
        .request(&RequestEnvelope { id: Some(42), deadline_ms: None, body: Request::Ping })
        .unwrap();
    assert_eq!(v.get("type").and_then(Json::as_str), Some("pong"));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
    stop(addr, h);
}

#[test]
fn malformed_json_gets_error_frame_and_connection_survives() {
    let (addr, h) = start(1, 8);
    let mut c = Client::connect(addr).unwrap();
    for bad in [&b"{ not json"[..], b"[1,2,3]", b"{\"type\":\"warp\"}", b"\xff\xfe"] {
        let raw = c.send_raw(bad).unwrap();
        let v = f3m_serve::protocol::parse_response(raw.as_bytes()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"), "payload {bad:?}");
    }
    // Same connection still serves well-formed requests.
    c.call_expect(Request::Ping, "pong").unwrap();
    stop(addr, h);
}

#[test]
fn truncated_frame_drops_connection_without_wedging_the_server() {
    let (addr, h) = start(1, 8);
    {
        let mut s = TcpStream::connect(addr).unwrap();
        // Claim 100 bytes, deliver 10, hang up mid-frame.
        std::io::Write::write_all(&mut s, &100u32.to_be_bytes()).unwrap();
        std::io::Write::write_all(&mut s, b"0123456789").unwrap();
    }
    // A half-delivered length prefix is the same story.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[0u8, 0]).unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    c.call_expect(Request::Ping, "pong").unwrap();
    stop(addr, h);
}

#[test]
fn oversized_length_prefix_is_refused_with_an_error_frame() {
    let (addr, h) = start(1, 8);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    std::io::Write::write_all(&mut s, &(MAX_FRAME + 1).to_be_bytes()).unwrap();
    let v = recv(&mut s);
    assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
    let msg = v.get("message").and_then(Json::as_str).unwrap();
    assert!(msg.contains("exceeds maximum"), "unexpected message: {msg}");
    // The stream is desynchronized, so the server closes it.
    assert!(read_frame(&mut s).unwrap().is_none(), "connection should be closed");
    stop(addr, h);
}

#[test]
fn full_queue_answers_busy_without_dropping_accepted_work() {
    let (addr, h) = start(1, 1);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Occupy the single worker...
    send(&mut s, &with_id(1, Request::Sleep { ms: 300 }));
    std::thread::sleep(Duration::from_millis(100));
    // ...fill the queue (cap 1)...
    send(&mut s, &with_id(2, Request::Sleep { ms: 10 }));
    // ...and overflow it.
    send(&mut s, &with_id(3, Request::Ping));
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..3 {
        let v = recv(&mut s);
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        by_id.insert(id, v.get("type").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(by_id[&1], "slept");
    assert_eq!(by_id[&2], "slept", "accepted work must still complete");
    assert_eq!(by_id[&3], "busy");
    stop(addr, h);
}

#[test]
fn deadline_expired_in_queue_is_answered_with_an_error() {
    let (addr, h) = start(1, 8);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    send(&mut s, &with_id(1, Request::Sleep { ms: 250 }));
    std::thread::sleep(Duration::from_millis(50));
    send(
        &mut s,
        &RequestEnvelope { id: Some(2), deadline_ms: Some(50), body: Request::Ping },
    );
    let first = recv(&mut s);
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("type").and_then(Json::as_str), Some("slept"));
    let second = recv(&mut s);
    assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
    assert_eq!(second.get("type").and_then(Json::as_str), Some("error"));
    let msg = second.get("message").and_then(Json::as_str).unwrap();
    assert!(msg.contains("deadline"), "unexpected message: {msg}");
    stop(addr, h);
}

fn workload(name: &str, seed: u64) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 24;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

fn ir_text(m: &Module) -> String {
    f3m_ir::printer::print_module(m)
}

/// Two merge-eligible members of the same generated family (same
/// signature, different bodies) — update fodder.
fn family_pair(m: &Module) -> (String, String) {
    let eligible: Vec<String> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .map(|f| m.function(f).name.clone())
        .collect();
    for a in &eligible {
        if let Some((fam, "0")) = a.rsplit_once('_') {
            let b = format!("{fam}_1");
            if eligible.contains(&b) {
                return (a.clone(), b);
            }
        }
    }
    panic!("workload has no eligible family pair");
}

/// IR text of `m` with `dst`'s body replaced by `src`'s.
fn body_swap_patch(m: &Module, dst: &str, src: &str) -> String {
    let mut patched = m.clone();
    let d = patched.lookup_function(dst).unwrap();
    let s = patched.lookup_function(src).unwrap();
    patched.rename_function(d, format!("{dst}__old"));
    patched.rename_function(s, dst.to_string());
    ir_text(&patched)
}

#[test]
fn update_and_touch_round_trip_over_the_wire() {
    let (addr, h) = start(2, 8);
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();

    let alpha = workload("alpha", 11);
    let (dst, src) = family_pair(&alpha);
    c.call_expect(Request::Ingest { name: None, ir: ir_text(&alpha) }, "ingested").unwrap();

    // Warm the memoized ranks, then edit one function in place.
    c.call_expect(
        Request::Query { module: "alpha".into(), func: None, k: 3, if_epoch: None },
        "candidates",
    )
    .unwrap();
    let v = c
        .call_expect(
            Request::Update {
                module: "alpha".into(),
                func: dst.clone(),
                ir: Some(body_swap_patch(&alpha, &dst, &src)),
            },
            "updated",
        )
        .unwrap();
    assert_eq!(v.get("module").and_then(Json::as_str), Some("alpha"));
    assert_eq!(v.get("func").and_then(Json::as_str), Some(dst.as_str()));
    assert_eq!(v.get("changed").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(2));
    assert!(v.get("funcs_invalidated").and_then(Json::as_u64).unwrap() >= 1);

    // The edited function's body is now its sibling's: they rank each
    // other at similarity 1.0.
    let q = c
        .call_expect(
            Request::Query {
                module: "alpha".into(),
                func: Some(dst.clone()),
                k: 1,
                if_epoch: None,
            },
            "candidates",
        )
        .unwrap();
    let results = q.get("results").and_then(Json::as_array).unwrap();
    let top = results[0].get("candidates").and_then(Json::as_array).unwrap()[0].clone();
    assert_eq!(top.get("func").and_then(Json::as_str), Some(format!("alpha.{src}")).as_deref());
    assert!((top.get("similarity").and_then(Json::as_f64).unwrap() - 1.0).abs() < 1e-12);

    // `ir` absent = touch: re-fingerprint without an IR change.
    let t = c
        .call_expect(
            Request::Update { module: "alpha".into(), func: dst.clone(), ir: None },
            "updated",
        )
        .unwrap();
    assert_eq!(t.get("changed").and_then(Json::as_bool), Some(false));
    assert_eq!(t.get("epoch").and_then(Json::as_u64), Some(3));

    // Memo counters surface in stats, and the mutations were counted.
    let s = c.call_expect(Request::Stats, "stats").unwrap();
    let corpus = s.get("corpus").unwrap();
    assert!(corpus.get("memo_hits").and_then(Json::as_u64).is_some());
    assert!(corpus.get("memo_misses").and_then(Json::as_u64).unwrap() > 0);
    assert!(corpus.get("funcs_invalidated").and_then(Json::as_u64).unwrap() >= 2);
    let reqs = s.get("server").unwrap().get("requests").unwrap();
    assert_eq!(reqs.get("update").and_then(Json::as_u64), Some(2));
    stop(addr, h);
}

#[test]
fn update_error_paths_answer_error_frames_and_survive() {
    let (addr, h) = start(1, 8);
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();

    let alpha = workload("alpha", 11);
    let (dst, _) = family_pair(&alpha);
    c.call_expect(Request::Ingest { name: None, ir: ir_text(&alpha) }, "ingested").unwrap();

    let cases: [(Request, &str); 3] = [
        (
            Request::Update { module: "ghost".into(), func: dst.clone(), ir: None },
            "not resident",
        ),
        (
            Request::Update { module: "alpha".into(), func: "no_such_fn".into(), ir: None },
            "no merge-eligible function",
        ),
        (
            Request::Update {
                module: "alpha".into(),
                func: dst.clone(),
                ir: Some("module \"p\" { define @x( }".into()),
            },
            "parse",
        ),
    ];
    for (req, needle) in cases {
        let v = c.call(req).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
        let msg = v.get("message").and_then(Json::as_str).unwrap();
        assert!(msg.contains(needle), "expected {needle:?} in {msg:?}");
    }
    // Failed updates never advance the epoch or wedge the connection.
    let s = c.call_expect(Request::Stats, "stats").unwrap();
    assert_eq!(s.get("corpus").unwrap().get("epoch").and_then(Json::as_u64), Some(1));
    c.call_expect(Request::Ping, "pong").unwrap();
    stop(addr, h);
}

#[test]
fn stale_if_epoch_is_answered_superseded_without_ranking() {
    let (addr, h) = start(1, 8);
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();

    c.call_expect(Request::Ingest { name: None, ir: ir_text(&workload("alpha", 11)) }, "ingested")
        .unwrap();

    // Wrong precondition → deterministic `superseded`, no candidates.
    let v = c
        .call_expect(
            Request::Query { module: "alpha".into(), func: None, k: 3, if_epoch: Some(7) },
            "superseded",
        )
        .unwrap();
    assert_eq!(v.get("started").and_then(Json::as_u64), Some(7));
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(1));

    // Matching precondition → normal candidates at that epoch.
    let ok = c
        .call_expect(
            Request::Query { module: "alpha".into(), func: None, k: 3, if_epoch: Some(1) },
            "candidates",
        )
        .unwrap();
    assert_eq!(ok.get("epoch").and_then(Json::as_u64), Some(1));

    // The precondition miss was counted as a superseded query.
    let s = c.call_expect(Request::Stats, "stats").unwrap();
    assert_eq!(
        s.get("corpus").unwrap().get("queries_superseded").and_then(Json::as_u64),
        Some(1)
    );
    stop(addr, h);
}

#[test]
fn rejections_show_up_in_server_counters() {
    let (addr, h) = start(1, 1);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    send(&mut s, &with_id(1, Request::Sleep { ms: 200 }));
    std::thread::sleep(Duration::from_millis(50));
    send(&mut s, &with_id(2, Request::Sleep { ms: 1 }));
    send(&mut s, &with_id(3, Request::Ping)); // overflows → busy
    for _ in 0..3 {
        recv(&mut s);
    }
    let mut c = Client::connect(addr).unwrap();
    let v = c.call_expect(Request::Stats, "stats").unwrap();
    let server = v.get("server").unwrap();
    assert_eq!(server.get("rejects_busy").and_then(Json::as_u64), Some(1));
    assert!(server.get("queue_depth_hwm").and_then(Json::as_u64).unwrap() >= 1);
    let reqs = server.get("requests").unwrap();
    assert_eq!(reqs.get("sleep").and_then(Json::as_u64), Some(2));
    stop(addr, h);
}
