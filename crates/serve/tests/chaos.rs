//! Chaos and disconnect tests: clients die mid-frame, mid-response, and
//! mid-drain, and the daemon must shrug — no panics, no wedged event
//! loop, no stuck threads, artefacts still flushed on shutdown.
//!
//! Every test ends with `join_within`, so a daemon that deadlocks fails
//! the test instead of hanging the suite.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use f3m_serve::protocol::{render_request, Request, RequestEnvelope};
use f3m_serve::{Client, PollerKind, ServeConfig, Server};

fn start(cfg: ServeConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn quick() -> ServeConfig {
    ServeConfig { jobs: 2, shards: 4, ..ServeConfig::default() }
}

/// Joins the daemon thread with a deadline — the "no stuck threads"
/// oracle. Panics with a diagnostic if the daemon does not exit in time.
fn join_within(h: JoinHandle<std::io::Result<()>>, deadline: Duration) {
    let t0 = Instant::now();
    while !h.is_finished() {
        assert!(
            t0.elapsed() < deadline,
            "daemon did not shut down within {deadline:?} — stuck thread"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    h.join().expect("daemon thread must not panic").expect("daemon run() must return Ok");
}

fn shutdown(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    c.call_expect(Request::Shutdown, "bye").unwrap();
}

fn framed(body: Request) -> Vec<u8> {
    let text = render_request(&RequestEnvelope::of(body));
    let mut out = (text.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(text.as_bytes());
    out
}

/// Clients that vanish mid-frame (a few prefix bytes, half a payload)
/// leave no residue: later clients are served normally.
#[test]
fn death_mid_frame_does_not_wedge_the_daemon() {
    let (addr, h) = start(quick());
    for cut in [1usize, 2, 3, 4, 9] {
        let mut s = TcpStream::connect(addr).unwrap();
        let bytes = framed(Request::Stats);
        s.write_all(&bytes[..cut.min(bytes.len() - 1)]).unwrap();
        drop(s); // dead mid-frame
    }
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    c.call_expect(Request::Ping, "pong").unwrap();
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}

/// A client that sends a request and dies before reading the response:
/// the worker still runs the job, the completion finds the connection
/// gone, and nothing leaks.
#[test]
fn death_mid_response_drops_the_answer_not_the_server() {
    let (addr, h) = start(quick());
    for _ in 0..5 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&framed(Request::Sleep { ms: 30 })).unwrap();
        drop(s); // dead before the response exists
    }
    // Give the sleeps time to complete against dead sockets.
    std::thread::sleep(Duration::from_millis(200));
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    let stats = c.call_expect(Request::Stats, "stats").unwrap();
    let slept = stats
        .get("server")
        .and_then(|s| s.get("requests"))
        .and_then(|r| r.get("sleep"))
        .and_then(f3m_trace::Json::as_u64)
        .unwrap();
    assert_eq!(slept, 5, "jobs for dead clients still run to completion");
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}

/// Clients that are mid-pipeline when `shutdown` lands: accepted work
/// drains, the shutdown client gets `bye`, and a client that dies during
/// the drain doesn't stall it.
#[test]
fn death_mid_drain_does_not_stall_shutdown() {
    let (addr, h) = start(ServeConfig { jobs: 1, ..quick() });
    // A victim pipelines slow work and dies immediately.
    let mut victim = TcpStream::connect(addr).unwrap();
    for _ in 0..3 {
        victim.write_all(&framed(Request::Sleep { ms: 50 })).unwrap();
    }
    drop(victim);
    // A survivor pipelines a ping, then shutdown.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c.send_frame(render_request(&RequestEnvelope::of(Request::Ping)).as_bytes()).unwrap();
    c.send_frame(render_request(&RequestEnvelope::of(Request::Shutdown)).as_bytes()).unwrap();
    let first = c.recv_frame().unwrap().expect("ping answered during drain");
    assert!(String::from_utf8(first).unwrap().contains("\"pong\""));
    let second = c.recv_frame().unwrap().expect("shutdown answered");
    assert!(String::from_utf8(second).unwrap().contains("\"bye\""));
    join_within(h, Duration::from_secs(30));
}

/// Graceful shutdown still flushes the metrics artefact when chaos
/// clients died earlier in the daemon's life.
#[test]
fn artefacts_flush_after_chaos() {
    let dir = std::env::temp_dir().join(format!("f3m_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("chaos_metrics.json");
    let (addr, h) = start(ServeConfig {
        metrics_path: Some(metrics_path.clone()),
        ..quick()
    });
    let mut s = TcpStream::connect(addr).unwrap();
    let bytes = framed(Request::Ping);
    s.write_all(&bytes[..3]).unwrap();
    drop(s);
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
    let dump = std::fs::read_to_string(&metrics_path).expect("metrics artefact written");
    for key in ["serve.conns_total", "serve.frames_reassembled", "serve.readiness_wakeups"] {
        assert!(dump.contains(key), "metrics artefact missing `{key}`:\n{dump}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A slowloris connection (incomplete frame, no progress) is reaped by
/// the read-deadline sweep and counted in `slow_closes`, while a healthy
/// connection on the same daemon is untouched.
#[test]
fn slowloris_is_reaped_and_counted() {
    let (addr, h) = start(ServeConfig { read_deadline_ms: 150, ..quick() });
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    loris.write_all(&[0, 0]).unwrap(); // two bytes of prefix, forever
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    // Wait out the deadline; the healthy connection stays alive because
    // idle_timeout is far longer.
    std::thread::sleep(Duration::from_millis(400));
    let stats = c.call_expect(Request::Stats, "stats").unwrap();
    let slow = stats
        .get("server")
        .and_then(|s| s.get("slow_closes"))
        .and_then(f3m_trace::Json::as_u64)
        .unwrap();
    assert!(slow >= 1, "slowloris connection should have been reaped (slow_closes={slow})");
    // The loris socket is dead from the server side.
    let mut buf = [0u8; 1];
    use std::io::Read;
    assert_eq!(loris.read(&mut buf).unwrap_or(0), 0, "server should have closed the loris");
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}

/// A client that floods pipelined requests, tails them with an oversized
/// frame, and then never reads: the close-after-flush connection must be
/// resolved within a bounded window (reaped once its outbox flushes, or
/// dropped by the flush deadline if the peer's refusal to read leaves it
/// unflushable) — it must not pin the event loop or survive shutdown.
#[test]
fn oversized_nonreader_is_resolved_within_deadline() {
    let (addr, h) = start(quick());
    let mut loris = TcpStream::connect(addr).unwrap();
    // Enough responses (pongs, sheds, busys) to plausibly overrun the
    // socket buffers of a peer that never reads.
    let ping = framed(Request::Ping);
    let mut burst = Vec::with_capacity(ping.len() * 40_000);
    for _ in 0..40_000 {
        burst.extend_from_slice(&ping);
    }
    loris.write_all(&burst).unwrap();
    // Oversized length prefix: the server answers with an error and
    // marks the connection close-after-flush.
    loris.write_all(&u32::MAX.to_be_bytes()).unwrap();
    // The loris never reads. Within the flush-deadline window the server
    // must have resolved the connection: either it flushed and was
    // reaped (conns drop) or the deadline sweep charged a slow close.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let resolved = loop {
        // The flood may answer `busy` while the queue is saturated;
        // only a well-formed stats response advances the check.
        let reply = c.call(Request::Stats).unwrap();
        if reply.get("type").and_then(f3m_trace::Json::as_str) == Some("stats") {
            let server = reply.get("server").unwrap();
            let slow = server.get("slow_closes").and_then(f3m_trace::Json::as_u64).unwrap();
            let open = server.get("conns_open").and_then(f3m_trace::Json::as_u64).unwrap();
            // Two live conns are the loris and this stats client.
            if slow >= 1 || open <= 1 {
                break true;
            }
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(resolved, "oversized non-reading connection was never resolved");
    // The daemon stayed responsive throughout and shuts down cleanly.
    c.call_expect(Request::Ping, "pong").unwrap();
    drop(loris);
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}

/// The portable fallback poller serves the same protocol (a smoke that
/// non-Linux builds aren't broken by construction).
#[test]
fn fallback_poller_serves_requests() {
    let (addr, h) = start(ServeConfig { poller: PollerKind::Fallback, ..quick() });
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    c.call_expect(Request::Ping, "pong").unwrap();
    c.call_expect(Request::Stats, "stats").unwrap();
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}

/// EOF from a client with responses still buffered: the daemon flushes
/// what it owes before reaping (half-close handling).
#[test]
fn half_close_still_receives_pipelined_responses() {
    let (addr, h) = start(quick());
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    for _ in 0..4 {
        c.send_frame(render_request(&RequestEnvelope::of(Request::Ping)).as_bytes()).unwrap();
    }
    c.shutdown_write().unwrap(); // EOF before reading anything
    for i in 0..4 {
        let frame = c.recv_frame().unwrap().unwrap_or_else(|| panic!("response {i} after EOF"));
        assert!(String::from_utf8(frame).unwrap().contains("\"pong\""));
    }
    assert!(c.recv_frame().unwrap().is_none(), "clean close after the owed responses");
    shutdown(addr);
    join_within(h, Duration::from_secs(20));
}
