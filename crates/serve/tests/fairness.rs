//! Fairness, admission-control, and backpressure-observability tests:
//! a flooding client must not starve a polite one, sheds must be
//! charged to the flooder and carry usable context (queue depth, a
//! monotone shed sequence), and a `busy` refusal must be retryable once
//! the queue drains.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use f3m_serve::protocol::{render_request, Request, RequestEnvelope};
use f3m_serve::{Admission, AdmissionConfig, Client, LoadSnapshot, Response, ServeConfig, Server};
use f3m_trace::Json;

fn start(cfg: ServeConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn join_within(h: JoinHandle<std::io::Result<()>>, deadline: Duration) {
    let t0 = Instant::now();
    while !h.is_finished() {
        assert!(t0.elapsed() < deadline, "daemon did not shut down within {deadline:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    h.join().unwrap().unwrap();
}

fn shutdown(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    c.call_expect(Request::Shutdown, "bye").unwrap();
}

/// One flooding client pipelines far past its in-flight cap while a
/// polite client does synchronous pings: the polite client's p99 stays
/// bounded and every shed lands on the flooder.
#[test]
fn flooder_is_shed_and_polite_client_stays_fast() {
    let (addr, h) = start(ServeConfig {
        jobs: 1,
        queue_cap: 64,
        admission: AdmissionConfig { max_inflight_per_conn: 4, ..AdmissionConfig::default() },
        ..ServeConfig::default()
    });

    let stop = Arc::new(AtomicBool::new(false));
    let flooder_stop = Arc::clone(&stop);
    let flooder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let frame = render_request(&RequestEnvelope::of(Request::Sleep { ms: 2 }));
        let mut sent = 0usize;
        let mut sheds = 0usize;
        let mut answered = 0usize;
        // Pipeline bursts of 32 against a cap of 4, then drain.
        while !flooder_stop.load(Ordering::Relaxed) {
            for _ in 0..32 {
                if c.send_frame(frame.as_bytes()).is_err() {
                    return (sent, answered, sheds);
                }
                sent += 1;
            }
            for _ in 0..32 {
                match c.recv_frame() {
                    Ok(Some(raw)) => {
                        answered += 1;
                        if String::from_utf8_lossy(&raw).contains("\"overloaded\"") {
                            sheds += 1;
                        }
                    }
                    _ => return (sent, answered, sheds),
                }
            }
        }
        (sent, answered, sheds)
    });

    // Polite client: synchronous pings, latency recorded.
    let mut polite = Client::connect(addr).unwrap();
    polite.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut lat = Vec::with_capacity(200);
    for _ in 0..200 {
        let t0 = Instant::now();
        polite.call_expect(Request::Ping, "pong").expect("polite ping must never be refused");
        lat.push(t0.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    let (sent, answered, flooder_sheds) = flooder.join().unwrap();
    assert_eq!(sent, answered, "every pipelined frame got exactly one response");

    lat.sort();
    let p99 = lat[lat.len() * 99 / 100 - 1];
    // Generous bound: each ping waits at most a handful of 2ms sleeps
    // (flooder's in-flight cap), not the whole flood.
    assert!(
        p99 < Duration::from_millis(500),
        "polite p99 {p99:?} unbounded — fairness broken (flooder sheds: {flooder_sheds})"
    );
    assert!(
        flooder_sheds > 0,
        "flooder pipelined 32-deep against a cap of 4 and was never shed"
    );

    // Sheds were charged to the flooder: the polite client saw zero
    // (asserted by call_expect above) and the daemon counted them.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(20))).unwrap();
    let stats = c.call_expect(Request::Stats, "stats").unwrap();
    let counted =
        stats.get("server").and_then(|s| s.get("sheds")).and_then(Json::as_u64).unwrap();
    assert_eq!(counted as usize, flooder_sheds, "daemon's shed count matches the flooder's");
    shutdown(addr);
    join_within(h, Duration::from_secs(30));
}

/// `overloaded` responses carry queue depth, in-flight, a monotone shed
/// sequence, and a retry hint.
#[test]
fn overloaded_sheds_carry_context_and_monotone_sequence() {
    let (addr, h) = start(ServeConfig {
        jobs: 1,
        queue_cap: 64,
        admission: AdmissionConfig { max_inflight_per_conn: 1, ..AdmissionConfig::default() },
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // One slow job occupies the single in-flight slot; everything
    // pipelined behind it is shed.
    let slow = render_request(&RequestEnvelope::of(Request::Sleep { ms: 150 }));
    let ping = render_request(&RequestEnvelope::of(Request::Ping));
    c.send_frame(slow.as_bytes()).unwrap();
    for _ in 0..3 {
        c.send_frame(ping.as_bytes()).unwrap();
    }
    let mut shed_seqs = Vec::new();
    let mut answered = 0;
    for _ in 0..4 {
        let raw = c.recv_frame().unwrap().expect("response");
        let v = f3m_serve::protocol::parse_response(&raw).unwrap();
        match v.get("type").and_then(Json::as_str).unwrap() {
            "overloaded" => {
                assert!(v.get("queue_depth").and_then(Json::as_u64).is_some());
                assert!(v.get("in_flight").and_then(Json::as_u64).is_some());
                let hint = v.get("retry_after_ms").and_then(Json::as_u64).unwrap();
                assert!(hint >= 1, "retry hint must be positive");
                shed_seqs.push(v.get("shed_seq").and_then(Json::as_u64).unwrap());
            }
            "slept" | "pong" => answered += 1,
            other => panic!("unexpected response type `{other}`"),
        }
    }
    // Sheds happen while the slow job holds the slot; the event loop
    // parses the pipelined pings long before 150ms elapse.
    assert!(!shed_seqs.is_empty(), "expected at least one shed");
    assert!(answered >= 1, "the slow job itself is answered");
    for w in shed_seqs.windows(2) {
        assert!(w[1] > w[0], "shed_seq must be strictly monotone: {shed_seqs:?}");
    }
    shutdown(addr);
    join_within(h, Duration::from_secs(30));
}

/// `busy` (queue literally full) carries queue depth and shed sequence,
/// and the same request retried after the queue drains succeeds — the
/// satellite's "deterministic and observable backpressure" contract.
#[test]
fn busy_carries_context_and_retry_after_drain_succeeds() {
    let (addr, h) = start(ServeConfig {
        jobs: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // Fill: one executing sleep + one queued sleep, then a burst that
    // must see `busy`.
    let slow = render_request(&RequestEnvelope::of(Request::Sleep { ms: 120 }));
    let ping = render_request(&RequestEnvelope::of(Request::Ping));
    c.send_frame(slow.as_bytes()).unwrap();
    c.send_frame(slow.as_bytes()).unwrap();
    for _ in 0..6 {
        c.send_frame(ping.as_bytes()).unwrap();
    }
    let mut busy_seen = 0;
    let mut last_seq = 0;
    for _ in 0..8 {
        let raw = c.recv_frame().unwrap().expect("response");
        let v = f3m_serve::protocol::parse_response(&raw).unwrap();
        if v.get("type").and_then(Json::as_str) == Some("busy") {
            busy_seen += 1;
            let depth = v.get("queue_depth").and_then(Json::as_u64).unwrap();
            assert!(depth >= 1, "busy with an empty queue makes no sense");
            let seq = v.get("shed_seq").and_then(Json::as_u64).unwrap();
            assert!(seq > last_seq, "shed_seq monotone across busy refusals");
            last_seq = seq;
        }
    }
    assert!(busy_seen >= 1, "queue_cap=1 with pipelined sleeps must produce busy");
    // Retry after drain: the same ping now succeeds.
    polite_retry(&mut c);
    shutdown(addr);
    join_within(h, Duration::from_secs(30));
}

fn polite_retry(c: &mut Client) {
    // The two sleeps are done (they were answered above); the queue is
    // empty, so a retry is admitted.
    c.call_expect(Request::Ping, "pong").expect("retry after drain must succeed");
}

/// The admission controller is a pure function of the load snapshot —
/// scripted directly, no sockets (this is also what the regression gate
/// runs to pin shed behaviour).
#[test]
fn admission_decisions_are_deterministic() {
    let cfg = AdmissionConfig {
        queue_shed_depth: 4,
        max_inflight_global: 8,
        max_inflight_per_conn: 2,
        retry_after_ms: 25,
    };
    let mut a = Admission::new(cfg);
    let admit = LoadSnapshot { queue_depth: 0, global_inflight: 0, conn_inflight: 0 };
    assert!(a.admit(admit).is_none());
    let per_conn = LoadSnapshot { queue_depth: 0, global_inflight: 0, conn_inflight: 2 };
    let Some(Response::Overloaded { shed_seq, retry_after_ms, .. }) = a.admit(per_conn) else {
        panic!("per-conn cap must shed");
    };
    assert_eq!(shed_seq, 1);
    assert_eq!(retry_after_ms, 25);
    let deep_queue = LoadSnapshot { queue_depth: 4, global_inflight: 1, conn_inflight: 0 };
    let Some(Response::Overloaded { shed_seq, queue_depth, retry_after_ms, .. }) =
        a.admit(deep_queue)
    else {
        panic!("queue depth threshold must shed");
    };
    assert_eq!((shed_seq, queue_depth, retry_after_ms), (2, 4, 29));
    let global = LoadSnapshot { queue_depth: 0, global_inflight: 8, conn_inflight: 0 };
    assert!(a.admit(global).is_some(), "global in-flight threshold must shed");
    // `busy` draws from the same sequence.
    let Response::Busy { shed_seq, queue_depth } = a.busy(3) else { panic!("busy") };
    assert_eq!((shed_seq, queue_depth), (4, 3));
    assert_eq!(a.shed_seq(), 4);
    // Disabled thresholds never shed below the per-conn cap.
    let mut permissive = Admission::new(AdmissionConfig::default());
    let heavy = LoadSnapshot { queue_depth: 10_000, global_inflight: 10_000, conn_inflight: 63 };
    assert!(permissive.admit(heavy).is_none(), "defaults must be permissive");
}
