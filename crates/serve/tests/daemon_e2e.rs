//! End-to-end daemon tests over real TCP sockets: ingest a multi-module
//! corpus, check `query` against the offline `CandidateSearch` seam,
//! evict without a rebuild, merge the resident corpus, verify responses
//! are byte-identical across worker counts, and shut down gracefully.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

use f3m_core::corpus::combine_modules;
use f3m_core::rank::{CandidateSearch, LshMinHashSearch};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;
use f3m_serve::protocol::{read_frame, render_request, write_frame, Request, RequestEnvelope};
use f3m_serve::{Client, ServeConfig, Server};
use f3m_trace::Json;

fn workload(name: &str, seed: u64) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 24;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

fn ir_text(m: &Module) -> String {
    f3m_ir::printer::print_module(m)
}

fn start(jobs: usize) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig { jobs, shards: 4, ..ServeConfig::default() })
        .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn ingest(c: &mut Client, m: &Module) -> Json {
    c.call_expect(Request::Ingest { name: None, ir: ir_text(m) }, "ingested").unwrap()
}

/// Two merge-eligible members of the same generated family (same
/// signature, different bodies) — update fodder.
fn family_pair(m: &Module) -> (String, String) {
    let eligible: Vec<String> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .map(|f| m.function(f).name.clone())
        .collect();
    for a in &eligible {
        if let Some((fam, "0")) = a.rsplit_once('_') {
            let b = format!("{fam}_1");
            if eligible.contains(&b) {
                return (a.clone(), b);
            }
        }
    }
    panic!("workload has no eligible family pair");
}

/// IR text of `m` with `dst`'s body replaced by `src`'s.
fn body_swap_patch(m: &Module, dst: &str, src: &str) -> String {
    let mut patched = m.clone();
    let d = patched.lookup_function(dst).unwrap();
    let s = patched.lookup_function(src).unwrap();
    patched.rename_function(d, format!("{dst}__old"));
    patched.rename_function(s, dst.to_string());
    ir_text(&patched)
}

#[test]
fn ingest_query_evict_merge_over_a_real_socket() {
    let (addr, h) = start(2);
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();

    let mods = [workload("alpha", 11), workload("beta", 22), workload("gamma", 33)];
    for (i, m) in mods.iter().enumerate() {
        let v = ingest(&mut c, m);
        assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(i as u64 + 1));
        assert!(v.get("functions").and_then(Json::as_u64).unwrap() > 0);
    }

    // `query` must agree with the offline seam over the combined corpus:
    // same candidates, same similarities, same order.
    let combined = combine_modules(&[&mods[0], &mods[1], &mods[2]]).unwrap();
    let funcs: Vec<FuncId> = combined
        .defined_functions()
        .into_iter()
        .filter(|&f| combined.function(f).num_linked_insts() > 0)
        .collect();
    let search = LshMinHashSearch::build(&combined, &funcs, MergeParams::static_default(), 1);
    let available = vec![true; funcs.len()];

    let v = c
        .call_expect(
            Request::Query { module: "alpha".into(), func: None, k: 5, if_epoch: None },
            "candidates",
        )
        .unwrap();
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(3));
    let results = v.get("results").and_then(Json::as_array).unwrap();
    assert!(!results.is_empty());
    let mut nonempty = 0;
    for (i, r) in results.iter().enumerate() {
        // `alpha` was ingested first, so its entries are the seam's first
        // indices in the same order.
        let offline: Vec<(String, f64)> = search
            .ranked_candidates(i, &available, 5)
            .into_iter()
            .map(|(j, s)| (combined.function(funcs[j]).name.clone(), s))
            .collect();
        let daemon: Vec<(String, f64)> = r
            .get("candidates")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|cand| {
                (
                    cand.get("func").and_then(Json::as_str).unwrap().to_string(),
                    cand.get("similarity").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        assert_eq!(daemon, offline, "function {i}");
        nonempty += usize::from(!daemon.is_empty());
    }
    assert!(nonempty > 0, "workload families must produce candidates");

    // A twin of alpha (same seed) gives the resident merge something to
    // commit.
    ingest(&mut c, &workload("delta", 11));
    let v = c
        .call_expect(Request::Merge { strategy: "f3m".into(), jobs: None }, "report")
        .unwrap();
    let committed = v
        .get("report")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("merges_committed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(committed > 0, "twin modules must merge");

    // Evict is incremental: epoch advances, no rebuild, and the evicted
    // module's functions stop appearing as candidates.
    let v = c.call_expect(Request::Evict { name: "beta".into() }, "evicted").unwrap();
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(5));
    let v = c.call_expect(Request::Stats, "stats").unwrap();
    let corpus = v.get("corpus").unwrap();
    assert_eq!(corpus.get("epoch").and_then(Json::as_u64), Some(5));
    assert_eq!(corpus.get("modules_live").and_then(Json::as_u64), Some(3));
    assert_eq!(corpus.get("modules_total").and_then(Json::as_u64), Some(4));
    let shards = corpus.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), 4);
    let shard_buckets: u64 =
        shards.iter().map(|s| s.get("num_buckets").and_then(Json::as_u64).unwrap()).sum();
    assert_eq!(
        corpus.get("index_buckets").and_then(Json::as_u64),
        Some(shard_buckets),
        "per-shard stats must sum to the index totals"
    );

    let v = c
        .call_expect(
            Request::Query { module: "alpha".into(), func: None, k: 8, if_epoch: None },
            "candidates",
        )
        .unwrap();
    for r in v.get("results").and_then(Json::as_array).unwrap() {
        for cand in r.get("candidates").and_then(Json::as_array).unwrap() {
            let name = cand.get("func").and_then(Json::as_str).unwrap();
            assert!(!name.starts_with("beta."), "evicted module leaked candidate {name}");
        }
    }

    // Unknown modules are an error response, not a dead connection.
    let v = c.call(Request::Evict { name: "nope".into() }).unwrap();
    assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));

    c.call_expect(Request::Shutdown, "bye").unwrap();
    h.join().unwrap().expect("clean shutdown");
}

/// The same synchronous request sequence, byte for byte, at any worker
/// count: corpus state transitions are totally ordered and responses are
/// rendered with fixed field order (merge reports with wall-clock fields
/// zeroed).
#[test]
fn responses_are_byte_identical_across_worker_counts() {
    fn scenario(jobs: usize) -> Vec<String> {
        let (addr, h) = start(jobs);
        let mut c = Client::connect(addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mods = [workload("alpha", 11), workload("beta", 22), workload("gamma", 33)];
        let mut raw = Vec::new();
        for m in &mods {
            raw.push(
                c.request_raw(&RequestEnvelope::of(Request::Ingest {
                    name: None,
                    ir: ir_text(m),
                }))
                .unwrap(),
            );
        }
        for m in ["alpha", "beta", "gamma"] {
            raw.push(
                c.request_raw(&RequestEnvelope::of(Request::Query {
                    module: m.into(),
                    func: None,
                    k: 4,
                    if_epoch: None,
                }))
                .unwrap(),
            );
        }
        // An in-place edit plus a touch: the memo counters these bump
        // ride the stats response below, folding the incremental layer
        // into the byte-identity check.
        let (dst, src) = family_pair(&mods[0]);
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Update {
                module: "alpha".into(),
                func: dst.clone(),
                ir: Some(body_swap_patch(&mods[0], &dst, &src)),
            }))
            .unwrap(),
        );
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Update {
                module: "alpha".into(),
                func: src.clone(),
                ir: None,
            }))
            .unwrap(),
        );
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Query {
                module: "alpha".into(),
                func: None,
                k: 4,
                if_epoch: None,
            }))
            .unwrap(),
        );
        // A stale epoch precondition is answered `superseded`, again
        // deterministically.
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Query {
                module: "alpha".into(),
                func: None,
                k: 4,
                if_epoch: Some(1),
            }))
            .unwrap(),
        );
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Merge {
                strategy: "f3m".into(),
                jobs: None,
            }))
            .unwrap(),
        );
        raw.push(c.request_raw(&RequestEnvelope::of(Request::Evict { name: "beta".into() })).unwrap());
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::Query {
                module: "alpha".into(),
                func: Some("f0_0".into()),
                k: 4,
                if_epoch: None,
            }))
            .unwrap(),
        );
        raw.push(c.request_raw(&RequestEnvelope::of(Request::Stats)).unwrap());
        c.call_expect(Request::Shutdown, "bye").unwrap();
        h.join().unwrap().expect("clean shutdown");
        raw
    }

    let serial = scenario(1);
    for jobs in [2, 8] {
        let parallel = scenario(jobs);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a, b, "response {i} differs between --jobs 1 and --jobs {jobs}");
        }
    }
}

/// `shutdown` rides the queue: everything accepted before it still gets
/// a response, then the daemon exits cleanly.
#[test]
fn shutdown_drains_already_accepted_requests() {
    let (addr, h) = start(1);
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let send = |s: &mut std::net::TcpStream, id: u64, body: Request| {
        let env = RequestEnvelope { id: Some(id), deadline_ms: None, body };
        write_frame(s, render_request(&env).as_bytes()).unwrap();
    };
    // Pipeline: a slow job, two pings, then shutdown — all queued before
    // the worker finishes the sleep.
    send(&mut s, 1, Request::Sleep { ms: 200 });
    std::thread::sleep(Duration::from_millis(50));
    send(&mut s, 2, Request::Ping);
    send(&mut s, 3, Request::Ping);
    send(&mut s, 4, Request::Shutdown);
    let mut types = Vec::new();
    for _ in 0..4 {
        let payload = read_frame(&mut s).unwrap().expect("drained response");
        let v = f3m_serve::protocol::parse_response(&payload).unwrap();
        types.push((
            v.get("id").and_then(Json::as_u64).unwrap(),
            v.get("type").and_then(Json::as_str).unwrap().to_string(),
        ));
    }
    assert_eq!(
        types,
        vec![
            (1, "slept".to_string()),
            (2, "pong".to_string()),
            (3, "pong".to_string()),
            (4, "bye".to_string()),
        ]
    );
    h.join().unwrap().expect("run() returns Ok after graceful shutdown");
}
