//! Daemon restart from an index snapshot, end-to-end over TCP.
//!
//! A daemon configured with `snapshot_path` saves its corpus on shutdown
//! and reopens it at the next bind. The restarted daemon must answer
//! queries byte-identically to the one that wrote the snapshot — without
//! any ingest traffic. Snapshots that cannot be trusted exercise the two
//! fallbacks: a stale one (entry stamps newer than the header epoch)
//! rebuilds from the module sources embedded in the payload, a corrupt
//! one starts empty.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_ir::module::Module;
use f3m_serve::protocol::{Request, RequestEnvelope};
use f3m_serve::{Client, ServeConfig, Server};

fn workload(name: &str, seed: u64) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 24;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

fn tmp_snap(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("f3m_daemon_snap_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("index.f3msnap")
}

fn start(snapshot: PathBuf) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        jobs: 1,
        shards: 4,
        snapshot_path: Some(snapshot),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut c = Client::connect(addr).unwrap();
    c.request(&RequestEnvelope::of(Request::Shutdown)).unwrap();
    handle.join().unwrap().unwrap();
}

fn query(addr: SocketAddr, module: &str) -> String {
    let mut c = Client::connect(addr).unwrap();
    let json = c
        .call_expect(
            Request::Query { module: module.into(), func: None, k: 3, if_epoch: None },
            "candidates",
        )
        .unwrap();
    format!("{json:?}")
}

#[test]
fn restarted_daemon_serves_identical_queries_from_snapshot() {
    let snap = tmp_snap("restart");

    // First life: ingest two modules, record answers, shut down (saves).
    let (addr, handle) = start(snap.clone());
    let mut c = Client::connect(addr).unwrap();
    for (name, seed) in [("sm_a", 41u64), ("sm_b", 42)] {
        let ir = f3m_ir::printer::print_module(&workload(name, seed));
        c.call_expect(Request::Ingest { name: None, ir }, "ingested").unwrap();
    }
    let before_a = query(addr, "sm_a");
    let before_b = query(addr, "sm_b");
    drop(c);
    shutdown(addr, handle);
    assert!(snap.exists(), "shutdown saved the snapshot");

    // Second life: no ingest traffic, same answers (same epochs too —
    // the query JSON embeds the epoch, so string equality covers it).
    let (addr2, handle2) = start(snap.clone());
    assert_eq!(query(addr2, "sm_a"), before_a);
    assert_eq!(query(addr2, "sm_b"), before_b);

    // The restored daemon still accepts mutations.
    let mut c = Client::connect(addr2).unwrap();
    let ir = f3m_ir::printer::print_module(&workload("sm_c", 43));
    c.call_expect(Request::Ingest { name: None, ir }, "ingested").unwrap();
    drop(c);
    shutdown(addr2, handle2);
    let _ = std::fs::remove_dir_all(snap.parent().unwrap());
}

#[test]
fn stale_snapshot_rebuilds_from_embedded_sources() {
    let snap = tmp_snap("stale");

    // Craft a stale snapshot offline: header epoch one behind the
    // entries, exactly what a crashed writer could leave behind.
    let cfg = || CorpusConfig {
        jobs: 1,
        shards: 4,
        params: f3m_fingerprint::MergeParams::static_default(),
    };
    let corpus = Corpus::new(cfg());
    for (name, seed) in [("st_a", 51u64), ("st_b", 52)] {
        corpus.ingest(workload(name, seed)).unwrap();
    }
    corpus.save_snapshot_stamped(&snap, corpus.epoch() - 1).unwrap();

    // The daemon must come up serving both modules via the source
    // fallback, with the same candidate sets a direct ingest produces.
    let (addr, handle) = start(snap.clone());
    let direct = {
        let fresh = Corpus::new(cfg());
        for (name, seed) in [("st_a", 51u64), ("st_b", 52)] {
            fresh.ingest(workload(name, seed)).unwrap();
        }
        let (_, rs) = fresh.query_module("st_a", 3).unwrap();
        rs
    };
    let served = query(addr, "st_a");
    for r in &direct {
        for cand in &r.candidates {
            assert!(
                served.contains(&cand.func),
                "rebuilt daemon must rank {} for {}",
                cand.func,
                r.func
            );
        }
    }
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(snap.parent().unwrap());
}

#[test]
fn corrupt_snapshot_starts_empty_and_recovers_on_next_save() {
    let snap = tmp_snap("corrupt");
    std::fs::write(&snap, b"not a snapshot at all").unwrap();

    let (addr, handle) = start(snap.clone());
    let mut c = Client::connect(addr).unwrap();
    // Empty corpus: the module is unknown.
    let r = c
        .call(Request::Query { module: "ghost".into(), func: None, k: 3, if_epoch: None })
        .unwrap();
    use f3m_trace::Json;
    assert_eq!(
        r.get("type").and_then(Json::as_str),
        Some("error"),
        "unknown module errors: {r:?}"
    );

    // It still works as a fresh daemon, and shutdown replaces the
    // garbage file with a valid snapshot.
    let ir = f3m_ir::printer::print_module(&workload("cr_a", 61));
    c.call_expect(Request::Ingest { name: None, ir }, "ingested").unwrap();
    let before = query(addr, "cr_a");
    drop(c);
    shutdown(addr, handle);

    let (addr2, handle2) = start(snap.clone());
    assert_eq!(query(addr2, "cr_a"), before, "next life loads the repaired snapshot");
    shutdown(addr2, handle2);
    let _ = std::fs::remove_dir_all(snap.parent().unwrap());
}
