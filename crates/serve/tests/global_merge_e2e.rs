//! End-to-end daemon tests for the `global_merge` verb: the two-phase
//! cross-module planner runs over the resident corpus behind a real TCP
//! socket, honours `if_epoch` with `superseded` semantics, and renders
//! byte-identical reports for any combination of server worker count and
//! planner job count.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

use f3m_ir::module::Module;
use f3m_serve::protocol::{Request, RequestEnvelope};
use f3m_serve::{Client, ServeConfig, Server};
use f3m_trace::Json;

fn workload(name: &str, seed: u64) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 16;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

fn ir_text(m: &Module) -> String {
    f3m_ir::printer::print_module(m)
}

fn start(jobs: usize) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig { jobs, shards: 4, ..ServeConfig::default() })
        .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn ingest(c: &mut Client, m: &Module) -> Json {
    c.call_expect(Request::Ingest { name: None, ir: ir_text(m) }, "ingested").unwrap()
}

/// `global_merge` over a real socket: a stale `if_epoch` pin is
/// superseded without planning, a matching pin yields a report pinned at
/// that epoch, and twin modules produce committed cross-module merges.
#[test]
fn global_merge_over_a_real_socket_honours_epochs() {
    let (addr, h) = start(2);
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(120))).unwrap();
    // alpha and delta share a seed: their families are cross-module twins.
    for m in [workload("alpha", 11), workload("beta", 22), workload("delta", 11)] {
        ingest(&mut c, &m);
    }

    // Stale pin: answered `superseded` before any planning work.
    let v = c
        .call_expect(Request::GlobalMerge { jobs: None, if_epoch: Some(1) }, "superseded")
        .unwrap();
    assert_eq!(v.get("started").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(3));

    // Matching pin: a full two-phase report pinned at the query epoch.
    let v = c
        .call_expect(Request::GlobalMerge { jobs: Some(2), if_epoch: Some(3) }, "report")
        .unwrap();
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(3));
    let report = v.get("report").unwrap();
    let stat = |k: &str| report.get("stats").and_then(|s| s.get(k)).and_then(Json::as_u64).unwrap();
    assert!(stat("cross_module_pairs") > 0, "twin modules must collide across modules");
    assert!(stat("verified_merges") > 0, "twin modules must survive verification");
    assert!(stat("global_profit_bytes") > 0);
    let merges = report.get("merges").and_then(Json::as_array).unwrap();
    assert!(
        merges.iter().any(|m| m.get("cross_module").and_then(Json::as_bool) == Some(true)),
        "at least one committed merge must cross a module boundary"
    );

    // The supersession was counted through the corpus like any other.
    let v = c.call_expect(Request::Stats, "stats").unwrap();
    let superseded =
        v.get("corpus").and_then(|s| s.get("queries_superseded")).and_then(Json::as_u64).unwrap();
    assert!(superseded >= 1, "stale global_merge pin must count as a supersession");

    c.call_expect(Request::Shutdown, "bye").unwrap();
    h.join().unwrap().expect("clean shutdown");
}

/// The same `global_merge` sequence is byte-identical for every server
/// worker count *and* every planner job count: the report JSON is a pure
/// function of corpus state.
#[test]
fn global_merge_responses_are_byte_identical_across_worker_counts() {
    fn scenario(workers: usize) -> Vec<String> {
        let (addr, h) = start(workers);
        let mut c = Client::connect(addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(120))).unwrap();
        let mut raw = Vec::new();
        for m in [workload("alpha", 11), workload("beta", 22), workload("delta", 11)] {
            raw.push(
                c.request_raw(&RequestEnvelope::of(Request::Ingest {
                    name: None,
                    ir: ir_text(&m),
                }))
                .unwrap(),
            );
        }
        for jobs in [None, Some(1), Some(8)] {
            raw.push(
                c.request_raw(&RequestEnvelope::of(Request::GlobalMerge {
                    jobs,
                    if_epoch: None,
                }))
                .unwrap(),
            );
        }
        raw.push(
            c.request_raw(&RequestEnvelope::of(Request::GlobalMerge {
                jobs: None,
                if_epoch: Some(1),
            }))
            .unwrap(),
        );
        c.call_expect(Request::Shutdown, "bye").unwrap();
        h.join().unwrap().expect("clean shutdown");
        raw
    }

    let serial = scenario(1);
    // Within one run, the planner's own job count must not leak into the
    // report (responses 3, 4 and 5 are the same request at jobs
    // unset/1/8).
    assert_eq!(serial[3], serial[4], "planner jobs=1 changed the report");
    assert_eq!(serial[3], serial[5], "planner jobs=8 changed the report");
    for workers in [2, 8] {
        let parallel = scenario(workers);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a, b, "response {i} differs between 1 and {workers} workers");
        }
    }
}
