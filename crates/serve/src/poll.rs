//! Readiness polling: a tiny `Poller` seam so the event loop can block
//! on "any of these sockets has bytes" without a thread per connection.
//!
//! Two backends, both std-only (the workspace's zero-dependency rule
//! means no `libc`/`mio`):
//!
//! - [`EpollPoller`] — Linux `epoll` driven by raw syscalls via
//!   `std::arch::asm!` (x86_64 and aarch64). Level-triggered, so the
//!   event loop never misses bytes it left unread in the kernel buffer.
//! - [`FallbackPoller`] — a portable degraded mode: `wait` sleeps a
//!   short tick and reports every registered token as maybe-ready; the
//!   event loop's non-blocking reads turn the false positives into
//!   `WouldBlock` no-ops. Correct everywhere, a little warmer on CPU.
//!
//! Backend choice is [`PollerKind::Auto`] (epoll where available) unless
//! the config or the `F3M_SERVE_POLLER` environment variable says
//! otherwise — the chaos tests run the whole daemon suite on the
//! fallback backend to keep it honest.
//!
//! [`Waker`] is the cross-thread nudge: workers finishing a job must pop
//! the event loop out of `wait` to get their response flushed. Under
//! epoll it is one end of a `UnixStream` pair registered like any other
//! fd; under the fallback the short tick already bounds wake latency, so
//! `wake` is a no-op.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

#[cfg(unix)]
pub use std::os::fd::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// Which backend to construct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PollerKind {
    /// Epoll where the platform supports it, fallback otherwise. The
    /// `F3M_SERVE_POLLER` environment variable (`epoll` / `fallback`)
    /// overrides.
    #[default]
    Auto,
    Epoll,
    Fallback,
}

/// The readiness seam. Readable interest is implicit for every
/// registration; writable interest is toggled as write buffers fill and
/// drain.
pub trait Poller: Send {
    fn backend_name(&self) -> &'static str;
    fn register(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()>;
    fn modify(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()>;
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks up to `timeout` for readiness; appends into `out` (cleared
    /// first). Returning with an empty `out` means the timeout elapsed.
    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()>;
}

/// Constructs the requested backend (with `Auto`/env resolution) plus
/// its waker. `waker_fd` is `Some` when the waker must be registered
/// with the poller (epoll); the fallback needs no registration.
pub fn new_poller(kind: PollerKind) -> (Box<dyn Poller>, Waker, Option<WakerSource>) {
    let kind = match std::env::var("F3M_SERVE_POLLER").ok().as_deref() {
        Some("fallback") => PollerKind::Fallback,
        Some("epoll") => PollerKind::Epoll,
        _ => kind,
    };
    match kind {
        PollerKind::Fallback => (Box::new(FallbackPoller::default()), Waker::noop(), None),
        PollerKind::Epoll | PollerKind::Auto => match epoll::EpollPoller::new() {
            Ok(p) => match Waker::pipe() {
                Ok((waker, source)) => (Box::new(p), waker, Some(source)),
                Err(_) => (Box::new(FallbackPoller::default()), Waker::noop(), None),
            },
            Err(_) => (Box::new(FallbackPoller::default()), Waker::noop(), None),
        },
    }
}

// ---------------------------------------------------------------------------
// Waker

/// The readable half of the waker pipe, registered with the poller by
/// the event loop; `drain` empties it after a wakeup.
pub struct WakerSource {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl WakerSource {
    /// The fd to register under the event loop's waker token.
    pub fn fd(&self) -> RawFd {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            self.rx.as_raw_fd()
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    /// Discards any pending wake bytes so the next `wake` edge is seen.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// Cross-thread nudge handle, cloned to every worker.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    tx: Option<std::sync::Arc<std::os::unix::net::UnixStream>>,
}

impl Waker {
    fn noop() -> Waker {
        Waker {
            #[cfg(unix)]
            tx: None,
        }
    }

    #[cfg(unix)]
    fn pipe() -> io::Result<(Waker, WakerSource)> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx: Some(std::sync::Arc::new(tx)) }, WakerSource { rx }))
    }

    #[cfg(not(unix))]
    fn pipe() -> io::Result<(Waker, WakerSource)> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no waker pipe on this platform"))
    }

    /// Pops the event loop out of `wait`. A full pipe is fine — one
    /// pending byte is as good as fifty.
    pub fn wake(&self) {
        #[cfg(unix)]
        if let Some(tx) = &self.tx {
            use std::io::Write;
            let _ = (&**tx).write(&[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Fallback backend

/// Portable degraded backend: report everything registered as ready and
/// let non-blocking I/O sort out the truth.
#[derive(Default)]
pub struct FallbackPoller {
    registered: HashMap<RawFd, (u64, bool)>,
}

/// The fallback's sleep quantum: short enough that worker completions
/// and fresh bytes are picked up promptly without a waker.
const FALLBACK_TICK: Duration = Duration::from_millis(2);

impl Poller for FallbackPoller {
    fn backend_name(&self) -> &'static str {
        "fallback"
    }

    fn register(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.registered.insert(fd, (token, writable));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.registered.insert(fd, (token, writable));
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.registered.remove(&fd);
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        out.clear();
        std::thread::sleep(timeout.min(FALLBACK_TICK));
        for (&_fd, &(token, writable)) in &self.registered {
            out.push(PollEvent { token, readable: true, writable });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Epoll backend (Linux x86_64 / aarch64, raw syscalls)

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod epoll {
    use super::{PollEvent, Poller, RawFd};
    use std::io;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i64 = 1;
    const EPOLL_CTL_DEL: i64 = 2;
    const EPOLL_CTL_MOD: i64 = 3;
    const EPOLL_CLOEXEC: i64 = 0x8_0000;
    const EINTR: i64 = 4;

    // The kernel packs epoll_event on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: i64 = 291;
        pub const EPOLL_CTL: i64 = 233;
        pub const EPOLL_WAIT: i64 = 232;
        pub const CLOSE: i64 = 3;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: i64 = 20;
        pub const EPOLL_CTL: i64 = 21;
        pub const EPOLL_PWAIT: i64 = 22;
        pub const CLOSE: i64 = 57;
    }

    /// Raw 5-argument syscall. Negative returns are `-errno`.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            options(nostack)
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error((-ret) as i32))
        } else {
            Ok(ret)
        }
    }

    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    // The epoll fd is used from the event-loop thread only; Send is what
    // `Box<dyn Poller>` construction on one thread and use on another needs.
    unsafe impl Send for EpollPoller {}

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            let epfd = check(unsafe { syscall5(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) })?;
            Ok(EpollPoller {
                epfd: epfd as RawFd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i64, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLRDHUP | if writable { EPOLLOUT } else { 0 },
                data: token,
            };
            let ptr = if op == EPOLL_CTL_DEL { 0 } else { &mut ev as *mut EpollEvent as i64 };
            check(unsafe { syscall5(nr::EPOLL_CTL, self.epfd as i64, op, fd as i64, ptr, 0) })
                .map(|_| ())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            let _ = unsafe { syscall5(nr::CLOSE, self.epfd as i64, 0, 0, 0, 0) };
        }
    }

    impl Poller for EpollPoller {
        fn backend_name(&self) -> &'static str {
            "epoll"
        }

        fn register(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        fn modify(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false)
        }

        fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let ms = i64::try_from(timeout.as_millis()).unwrap_or(i64::MAX).min(i32::MAX as i64);
            let n = {
                let ptr = self.buf.as_mut_ptr() as i64;
                let cap = self.buf.len() as i64;
                #[cfg(target_arch = "x86_64")]
                let ret = unsafe { syscall5(nr::EPOLL_WAIT, self.epfd as i64, ptr, cap, ms, 0) };
                #[cfg(target_arch = "aarch64")]
                let ret = unsafe { syscall5(nr::EPOLL_PWAIT, self.epfd as i64, ptr, cap, ms, 0) };
                match ret {
                    r if r == -EINTR => 0,
                    r => check(r)?,
                }
            };
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    // Errors and hangups surface as readable: the next
                    // read returns 0/Err and the connection is reaped.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod epoll {
    use super::{FallbackPoller, Poller};
    use std::io;

    /// Platforms without the raw-syscall epoll backend fall through to
    /// the portable poller at construction time.
    pub struct EpollPoller;

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll backend unavailable"))
        }
    }

    impl Poller for EpollPoller {
        fn backend_name(&self) -> &'static str {
            "unsupported"
        }
        fn register(&mut self, _: super::RawFd, _: u64, _: bool) -> io::Result<()> {
            unreachable!("EpollPoller::new always fails on this platform")
        }
        fn modify(&mut self, _: super::RawFd, _: u64, _: bool) -> io::Result<()> {
            unreachable!()
        }
        fn deregister(&mut self, _: super::RawFd) -> io::Result<()> {
            unreachable!()
        }
        fn wait(
            &mut self,
            _: &mut Vec<super::PollEvent>,
            _: std::time::Duration,
        ) -> io::Result<()> {
            unreachable!()
        }
    }

    // Referenced so the fallback type is used on every platform.
    #[allow(dead_code)]
    fn _portable() -> FallbackPoller {
        FallbackPoller::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn backend_roundtrip(mut poller: Box<dyn Poller>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(listener.as_raw_fd(), 7, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty (epoll) or
        // all-registered (fallback); either way it must return promptly.
        let t0 = Instant::now();
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(2));

        // A connect attempt makes the listener readable.
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "listener never became readable");
        }
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poller.register(stream.as_raw_fd(), 9, true).unwrap();

        // A fresh socket with writable interest reports writable.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 9 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "socket never became writable");
        }

        poller.deregister(stream.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn fallback_backend_reports_registered_fds() {
        backend_roundtrip(Box::new(FallbackPoller::default()));
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn epoll_backend_reports_readiness() {
        let (poller, _waker, _src) = new_poller(PollerKind::Epoll);
        if poller.backend_name() == "epoll" {
            backend_roundtrip(poller);
        }
    }

    #[cfg(unix)]
    #[test]
    fn waker_pops_wait_out_of_epoll() {
        let (mut poller, waker, source) = new_poller(PollerKind::Auto);
        if poller.backend_name() != "epoll" {
            return; // fallback needs no waker; nothing to test
        }
        let source = source.expect("epoll poller comes with a waker source");
        poller.register(source.fd(), 1, false).unwrap();
        let mut events = Vec::new();

        waker.wake();
        let t0 = Instant::now();
        poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "wake must interrupt wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        source.drain();

        // Drained: the next wait times out instead of spinning on the
        // stale wake byte (level-triggered epoll would re-report it).
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.is_empty(), "drained waker must not re-trigger");
    }

    #[test]
    fn waker_wake_is_safe_without_pipe() {
        Waker::noop().wake();
    }

    #[test]
    fn env_override_forces_fallback() {
        // The config-level kind is overridden by the environment hook the
        // chaos tests and CI use; exercise the parse path directly.
        let (poller, _, src) = new_poller(PollerKind::Fallback);
        assert_eq!(poller.backend_name(), "fallback");
        assert!(src.is_none(), "fallback needs no waker registration");
    }
}
