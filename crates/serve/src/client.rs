//! A synchronous client: one request in flight, response awaited before
//! the next send.
//!
//! Synchrony is what makes daemon behaviour deterministic from the
//! client's point of view — see the ordering notes in
//! [`crate::server`]. The raw-frame accessors ([`Client::request_raw`])
//! return the exact response bytes, which the determinism tests compare
//! across `--jobs` settings.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use f3m_trace::Json;

use crate::protocol::{
    parse_response, read_frame, render_request, write_frame, Request, RequestEnvelope,
};

/// A connected synchronous client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long [`request_raw`](Client::request_raw) waits for a
    /// response (`None` waits forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one envelope and returns the raw response text.
    pub fn request_raw(&mut self, env: &RequestEnvelope) -> Result<String, String> {
        let text = render_request(env);
        write_frame(&mut self.stream, text.as_bytes()).map_err(|e| format!("send: {e}"))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("connection closed before response")?;
        String::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())
    }

    /// Sends one raw payload (not necessarily a well-formed request) and
    /// returns the raw response text. Testing aid for protocol-error
    /// paths.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<String, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send: {e}"))?;
        let resp = read_frame(&mut self.stream)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("connection closed before response")?;
        String::from_utf8(resp).map_err(|_| "response is not UTF-8".to_string())
    }

    /// Writes one framed payload without waiting for a response —
    /// pipelining aid for the chaos and fuzz tests.
    pub fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Reads one response frame (`None` on clean EOF). Pairs with
    /// [`send_frame`](Client::send_frame) when pipelining.
    pub fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        read_frame(&mut self.stream).map_err(|e| format!("recv: {e}"))
    }

    /// Writes raw bytes with **no framing** — the fuzzer's tool for
    /// truncated prefixes and byte-at-a-time slowloris dribbles.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    /// Shuts down the write half (signals EOF to the server) while the
    /// read half stays open for draining pipelined responses.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Sends one envelope and parses the response.
    pub fn request(&mut self, env: &RequestEnvelope) -> Result<Json, String> {
        let raw = self.request_raw(env)?;
        parse_response(raw.as_bytes())
    }

    /// Sends a bare request body (no id, no deadline) and parses the
    /// response.
    pub fn call(&mut self, body: Request) -> Result<Json, String> {
        self.request(&RequestEnvelope::of(body))
    }

    /// `call`, then fail unless the response `type` is `expected`.
    /// The error for unexpected types includes the server's `message`
    /// field when present.
    pub fn call_expect(&mut self, body: Request, expected: &str) -> Result<Json, String> {
        let v = self.call(body)?;
        let got = v.get("type").and_then(Json::as_str).unwrap_or("<none>");
        if got != expected {
            let detail = v
                .get("message")
                .and_then(Json::as_str)
                .map(|m| format!(": {m}"))
                .unwrap_or_default();
            return Err(format!("expected `{expected}` response, got `{got}`{detail}"));
        }
        Ok(v)
    }
}
