//! The daemon: accept loop, per-connection readers, worker pool, and
//! graceful shutdown.
//!
//! ## Threading model
//!
//! One acceptor thread (the caller of [`Server::run`]), one reader
//! thread per live connection, and a fixed pool of `jobs` workers.
//! Readers only parse frames and `try_push` onto the shared
//! [`BoundedQueue`]; all corpus work happens on workers. Responses are
//! written under a per-connection write mutex, so a reader answering
//! `busy` never interleaves bytes with a worker answering an earlier
//! request on the same socket.
//!
//! ## Ordering and determinism
//!
//! The queue is FIFO, but with more than one worker, *pipelined*
//! requests (several in flight on one connection) may complete out of
//! order — use the request `id` to correlate. A synchronous client (one
//! request in flight, as [`crate::client::Client`] does) observes fully
//! deterministic behaviour: the same ingest sequence produces
//! byte-identical `query` and `merge` responses at any `--jobs` setting,
//! because corpus state transitions are then totally ordered and all
//! response rendering is fixed-order (merge reports additionally have
//! wall-clock fields zeroed).
//!
//! ## Shutdown
//!
//! `shutdown` rides the queue like any request, so everything accepted
//! before it still gets a response. Its handler closes the queue (late
//! arrivals get `busy`), answers `bye`, and pokes the acceptor awake
//! with a loopback connect. Workers drain the residue and exit;
//! [`Server::run`] then flushes metrics/trace artefacts and returns
//! `Ok(())` — process exit code 0.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use f3m_core::corpus::{Corpus, CorpusConfig, QueryOutcome};
use f3m_core::pass::PassConfig;
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::backend::BackendKind;
use f3m_fingerprint::snapshot::SnapshotError;
use f3m_ir::parser::parse_module;
use f3m_trace::metrics::MetricsRegistry;
use f3m_trace::tracer::span_on;
use f3m_trace::{write_with_dirs, Tracer};

use crate::protocol::{
    parse_request, read_frame, render_response, write_frame, FrameError, Request, Response,
    ServerCounters, REQUEST_TYPES,
};
use crate::queue::{BoundedQueue, PushError};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub jobs: usize,
    /// Bounded queue capacity; pushes beyond it answer `busy`.
    pub queue_cap: usize,
    /// LSH index shards for the resident corpus.
    pub shards: usize,
    /// Fingerprint family for the resident corpus.
    pub backend: BackendKind,
    /// Index snapshot file: loaded at bind if present (so a restart is
    /// O(file size) instead of a re-ingest), saved on shutdown. A stale
    /// snapshot (entry stamps newer than its header epoch) falls back to
    /// re-ingesting the module sources it carries; an unreadable one
    /// starts empty.
    pub snapshot_path: Option<PathBuf>,
    /// Flat-JSON metrics artefact written on shutdown.
    pub metrics_path: Option<PathBuf>,
    /// Chrome-trace artefact written on shutdown.
    pub trace_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            queue_cap: 64,
            shards: 8,
            backend: BackendKind::MinHash,
            snapshot_path: None,
            metrics_path: None,
            trace_path: None,
        }
    }
}

/// How the resident corpus came to be at bind time.
#[derive(Clone, Copy, Debug, Default)]
struct SnapshotStatus {
    /// Wall-clock of the restore (or the rebuild fallback), in ms.
    load_ms: u64,
    /// The snapshot restored directly (O(load), no re-fingerprinting).
    loaded: bool,
    /// The snapshot was stale; the corpus was rebuilt from its sources.
    rebuilt: bool,
    /// Live entries resident right after startup.
    entries: u64,
}

/// One unit of accepted work.
struct Job {
    id: Option<u64>,
    deadline_ms: Option<u64>,
    body: Request,
    enqueued: Instant,
    out: Arc<Mutex<TcpStream>>,
}

/// State shared by acceptor, readers, and workers.
struct Shared {
    corpus: Corpus,
    queue: BoundedQueue<Job>,
    counters: Mutex<ServerCounters>,
    shutting_down: AtomicBool,
    tracer: Option<Tracer>,
    snapshot: SnapshotStatus,
    /// The bound address, so the shutdown path can poke the acceptor
    /// awake with a loopback connect.
    listen_addr: SocketAddr,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the resident corpus — empty, or
    /// restored from `snapshot_path` when one is present.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let corpus_cfg = CorpusConfig {
            params: MergeParams::static_default().with_backend(cfg.backend),
            shards: cfg.shards.max(1),
            jobs: cfg.jobs.max(1),
        };
        let (corpus, snapshot) = open_corpus(&cfg, corpus_cfg);
        let shared = Arc::new(Shared {
            corpus,
            queue: BoundedQueue::new(cfg.queue_cap),
            counters: Mutex::new(ServerCounters::default()),
            shutting_down: AtomicBool::new(false),
            tracer: cfg.trace_path.as_ref().map(|_| Tracer::new()),
            snapshot,
            listen_addr: listener.local_addr()?,
        });
        Ok(Server { cfg, listener, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request completes; returns after the
    /// queue is drained, workers have joined, and artefacts are flushed.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for _ in 0..self.cfg.jobs.max(1) {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        for conn in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Responses are one small frame each; Nagle would add a
            // delayed-ACK round trip to every synchronous request.
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            // Readers are detached: one may stay blocked on `read` until
            // its client hangs up, which must not stall shutdown.
            std::thread::spawn(move || reader_loop(&shared, stream));
        }
        // `shutdown` already closed the queue; workers finish the residue.
        for w in workers {
            let _ = w.join();
        }
        self.flush_artifacts();
        Ok(())
    }

    /// Saves the index snapshot and writes the metrics and trace
    /// artefacts, if configured.
    fn flush_artifacts(&self) {
        let snapshot_saved = self.cfg.snapshot_path.as_ref().map(|path| {
            match self.shared.corpus.save_snapshot(path) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("f3m-serve: failed to save snapshot {}: {e}", path.display());
                    false
                }
            }
        });
        if let Some(path) = &self.cfg.metrics_path {
            let dump = render_metrics(&self.shared, &self.cfg, snapshot_saved);
            if let Err(e) = write_with_dirs(path, &dump) {
                eprintln!("f3m-serve: failed to write metrics {}: {e}", path.display());
            }
        }
        if let (Some(path), Some(tracer)) = (&self.cfg.trace_path, &self.shared.tracer) {
            if let Err(e) = write_with_dirs(path, &tracer.to_chrome_json()) {
                eprintln!("f3m-serve: failed to write trace {}: {e}", path.display());
            }
        }
    }
}

/// Builds the resident corpus: restored from the configured snapshot
/// when one is present and trustworthy, rebuilt from the snapshot's
/// module sources when its index is stale, empty otherwise.
fn open_corpus(cfg: &ServeConfig, corpus_cfg: CorpusConfig) -> (Corpus, SnapshotStatus) {
    let mut status = SnapshotStatus::default();
    let Some(path) = cfg.snapshot_path.as_ref().filter(|p| p.exists()) else {
        return (Corpus::new(corpus_cfg), status);
    };
    let t0 = Instant::now();
    match Corpus::load_snapshot(path, corpus_cfg.clone()) {
        Ok(corpus) => {
            status.load_ms = t0.elapsed().as_millis() as u64;
            status.loaded = true;
            status.entries = corpus.stats().functions_live as u64;
            eprintln!(
                "f3m-serve: restored {} functions at epoch {} from {} in {}ms",
                status.entries,
                corpus.epoch(),
                path.display(),
                status.load_ms
            );
            (corpus, status)
        }
        Err(e @ SnapshotError::StaleEpoch { .. }) => {
            // The packed index cannot be trusted, but the module sources
            // in the payload still can: re-ingest them from scratch.
            eprintln!("f3m-serve: snapshot {}: {e}; rebuilding from sources", path.display());
            let corpus = Corpus::new(corpus_cfg);
            match Corpus::snapshot_sources(path) {
                Ok(sources) => {
                    for (name, src) in sources {
                        let ingested = parse_module(&src)
                            .map_err(|err| format!("does not parse: {err}"))
                            .and_then(|m| corpus.ingest(m).map(|_| ()));
                        if let Err(err) = ingested {
                            eprintln!("f3m-serve: rebuild of module `{name}` failed: {err}");
                        }
                    }
                    status.rebuilt = true;
                    status.load_ms = t0.elapsed().as_millis() as u64;
                    status.entries = corpus.stats().functions_live as u64;
                }
                Err(err) => {
                    eprintln!("f3m-serve: rebuild failed ({err}); starting empty");
                }
            }
            (corpus, status)
        }
        Err(e) => {
            eprintln!("f3m-serve: snapshot {} unusable ({e}); starting empty", path.display());
            (Corpus::new(corpus_cfg), status)
        }
    }
}

/// Renders the daemon's metrics registry: request counters, refusal
/// counters, queue high-water mark, corpus epoch, snapshot lifecycle,
/// and per-shard index occupancy.
fn render_metrics(shared: &Shared, cfg: &ServeConfig, snapshot_saved: Option<bool>) -> String {
    let counters = shared.counters.lock().unwrap().clone();
    let stats = shared.corpus.stats();
    let mut reg = MetricsRegistry::new();
    for (i, ty) in REQUEST_TYPES.iter().enumerate() {
        let c = reg.counter(&format!("serve.requests.{ty}"), "requests", true);
        reg.set(c, counters.requests[i]);
    }
    let det_pairs: [(&str, u64); 7] = [
        ("serve.errors", counters.errors),
        ("serve.epoch", stats.epoch),
        ("serve.jobs", cfg.jobs as u64),
        // Incremental-recompute counters: jobs-invariant (and, for a
        // synchronous client, fully deterministic — they ride the stats
        // response, which the determinism tests compare byte-for-byte).
        ("serve.corpus.memo_hits", stats.memo_hits),
        ("serve.corpus.memo_misses", stats.memo_misses),
        ("serve.corpus.funcs_invalidated", stats.funcs_invalidated),
        ("serve.corpus.queries_superseded", stats.queries_superseded),
    ];
    for (name, v) in det_pairs {
        let c = reg.counter(name, "count", true);
        reg.set(c, v);
    }
    // Timing- and environment-dependent: how full the queue got, what
    // was refused, and the snapshot lifecycle (load time is wall-clock;
    // loaded/rebuilt/entries depend on what was on disk at startup).
    let snap = &shared.snapshot;
    let nondet_pairs: [(&str, u64); 8] = [
        ("serve.rejects_busy", counters.rejects_busy),
        ("serve.rejects_deadline", counters.rejects_deadline),
        ("serve.queue_depth_hwm", counters.queue_depth_hwm),
        ("serve.snapshot.load_ms", snap.load_ms),
        ("serve.snapshot.loaded", u64::from(snap.loaded)),
        ("serve.snapshot.rebuilt", u64::from(snap.rebuilt)),
        ("serve.snapshot.entries", snap.entries),
        ("serve.snapshot.saved", snapshot_saved.map_or(0, u64::from)),
    ];
    for (name, v) in nondet_pairs {
        let c = reg.counter(name, "count", false);
        reg.set(c, v);
    }
    let occ = [
        ("serve.index.buckets", stats.index_buckets as u64),
        ("serve.index.max_bucket", stats.index_max_bucket as u64),
        ("serve.index.entries", stats.entries_total as u64),
    ];
    for (name, v) in occ {
        let c = reg.counter(name, "buckets", true);
        reg.set(c, v);
    }
    for (i, s) in stats.shards.iter().enumerate() {
        let b = reg.counter(&format!("serve.shard{i}.buckets"), "buckets", true);
        reg.set(b, s.num_buckets as u64);
        let e = reg.counter(&format!("serve.shard{i}.entries"), "entries", true);
        reg.set(e, s.entries as u64);
        let m = reg.counter(&format!("serve.shard{i}.max_bucket"), "entries", true);
        reg.set(m, s.max_bucket_size as u64);
    }
    reg.to_json()
}

/// Writes one response frame on a connection, counting it. Write
/// failures mean the client hung up; the response is dropped.
fn respond(shared: &Shared, out: &Mutex<TcpStream>, id: Option<u64>, resp: &Response) {
    {
        let mut c = shared.counters.lock().unwrap();
        if matches!(resp, Response::Error { .. }) {
            c.errors += 1;
        }
    }
    let text = render_response(id, resp);
    let mut stream = out.lock().unwrap();
    let _ = write_frame(&mut *stream, text.as_bytes());
}

/// Per-connection reader: parse frames, enqueue jobs, refuse overload.
fn reader_loop(shared: &Shared, stream: TcpStream) {
    let Ok(mut read_half) = stream.try_clone() else { return };
    let out = Arc::new(Mutex::new(stream));
    loop {
        match read_frame(&mut read_half) {
            Ok(None) => break,
            Ok(Some(payload)) => match parse_request(&payload) {
                Ok(env) => {
                    let id = env.id;
                    let job = Job {
                        id,
                        deadline_ms: env.deadline_ms,
                        body: env.body,
                        enqueued: Instant::now(),
                        out: Arc::clone(&out),
                    };
                    if let Err(e) = shared.queue.try_push(job) {
                        if e == PushError::Full {
                            shared.counters.lock().unwrap().rejects_busy += 1;
                        }
                        respond(shared, &out, id, &Response::Busy);
                    }
                }
                Err(message) => {
                    respond(shared, &out, None, &Response::Error { message });
                }
            },
            Err(FrameError::Oversized(n)) => {
                // The payload was never read, so the stream is no longer
                // at a frame boundary: answer, then drop the connection.
                let message = format!(
                    "frame length {n} exceeds maximum {}",
                    crate::protocol::MAX_FRAME
                );
                respond(shared, &out, None, &Response::Error { message });
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
}

/// Worker: pop, enforce the queue-wait deadline, dispatch, respond.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if let Some(d) = job.deadline_ms {
            if job.enqueued.elapsed() >= Duration::from_millis(d) {
                shared.counters.lock().unwrap().rejects_deadline += 1;
                let message = format!("deadline of {d}ms expired while queued");
                respond(shared, &job.out, job.id, &Response::Error { message });
                continue;
            }
        }
        let type_name = job.body.type_name();
        let span = span_on(shared.tracer.as_ref(), "serve", format!("req.{type_name}"));
        let resp = match catch_unwind(AssertUnwindSafe(|| handle(shared, &job.body))) {
            Ok(resp) => resp,
            Err(_) => Response::Error { message: format!("internal panic handling `{type_name}`") },
        };
        drop(span);
        {
            let mut c = shared.counters.lock().unwrap();
            c.count_request(type_name);
            c.queue_depth_hwm = c.queue_depth_hwm.max(shared.queue.high_water_mark() as u64);
        }
        respond(shared, &job.out, job.id, &resp);
        if matches!(job.body, Request::Shutdown) {
            // Queue already closed in `handle`; wake the acceptor so the
            // accept loop observes the flag and stops.
            break_acceptor(shared);
        }
    }
}

/// Wakes the acceptor (blocked in `accept`) with a throwaway loopback
/// connection so it observes the shutdown flag.
fn break_acceptor(shared: &Shared) {
    let _ = TcpStream::connect_timeout(&shared.listen_addr, Duration::from_millis(200));
}

/// How many times a cancellable module query is restarted after being
/// epoch-superseded before the client is answered `superseded`.
const QUERY_RESTARTS: usize = 2;

/// Dispatches one request against the resident corpus.
fn handle(shared: &Shared, req: &Request) -> Response {
    match req {
        Request::Ingest { name, ir } => {
            let mut module = match parse_module(ir) {
                Ok(m) => m,
                Err(e) => return Response::Error { message: format!("ingest parse: {e}") },
            };
            if let Some(n) = name {
                module.name = n.clone();
            }
            match shared.corpus.ingest(module) {
                Ok(s) => Response::Ingested(s),
                Err(message) => Response::Error { message },
            }
        }
        Request::Evict { name } => match shared.corpus.evict(name) {
            Ok(s) => Response::Evicted(s),
            Err(message) => Response::Error { message },
        },
        Request::Query { module, func, k, if_epoch } => {
            // Epoch precondition: a stale client pin is answered
            // `superseded` without doing any ranking work.
            if let Some(want) = if_epoch {
                if shared.corpus.epoch() != *want {
                    // Counted through the corpus so the miss shows up in
                    // `queries_superseded` like any other supersession.
                    if let QueryOutcome::Superseded { started, epoch } =
                        shared.corpus.superseded(*want)
                    {
                        return Response::Superseded { started, epoch };
                    }
                }
            }
            match func {
                Some(f) => match shared.corpus.query_function(module, f, *k) {
                    Ok((epoch, r)) => Response::Candidates { epoch, results: vec![r] },
                    Err(message) => Response::Error { message },
                },
                // Module queries run cancellable: concurrent mutations
                // abort and restart them a bounded number of times, then
                // the client is told its answer was superseded rather
                // than being handed a torn snapshot.
                None => {
                    let mut last = (0, 0);
                    for _ in 0..=QUERY_RESTARTS {
                        let outcome = shared.corpus.query_module_cancellable(module, *k, |pin| {
                            shared.corpus.epoch() != pin
                        });
                        match outcome {
                            Ok(QueryOutcome::Complete { epoch, results }) => {
                                return Response::Candidates { epoch, results }
                            }
                            Ok(QueryOutcome::Superseded { started, epoch }) => {
                                last = (started, epoch);
                            }
                            Err(message) => return Response::Error { message },
                        }
                    }
                    Response::Superseded { started: last.0, epoch: last.1 }
                }
            }
        }
        Request::Update { module, func, ir } => {
            match shared.corpus.update_function(module, func, ir.as_deref()) {
                Ok(s) => Response::Updated(s),
                Err(message) => Response::Error { message },
            }
        }
        Request::Merge { strategy, jobs } => {
            let mut cfg = match strategy.as_str() {
                "f3m" => PassConfig::f3m(),
                "hyfm" => PassConfig::hyfm(),
                "f3m-adaptive" => PassConfig::f3m_adaptive(),
                other => {
                    return Response::Error { message: format!("unknown strategy `{other}`") }
                }
            };
            if let Some(j) = jobs {
                cfg = cfg.with_jobs(*j);
            }
            match shared.corpus.merge(&cfg) {
                Ok((mut report, _merged)) => {
                    // Wall-clock fields vary run to run; zero them so the
                    // response is a pure function of corpus state.
                    report.strip_wall_clock();
                    Response::Report { epoch: shared.corpus.epoch(), report: report.to_json() }
                }
                Err(message) => Response::Error { message },
            }
        }
        Request::Stats => {
            let mut server = shared.counters.lock().unwrap().clone();
            server.queue_depth_hwm =
                server.queue_depth_hwm.max(shared.queue.high_water_mark() as u64);
            Response::Stats { corpus: shared.corpus.stats(), server }
        }
        Request::Ping => Response::Pong,
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            Response::Slept { ms: *ms }
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::Release);
            shared.queue.close();
            Response::Bye
        }
    }
}

/// Convenience used by the CLI: bind, announce on stderr, run.
pub fn serve(cfg: ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(cfg)?;
    let addr = server.local_addr()?;
    let mut err = std::io::stderr();
    let _ = writeln!(err, "f3m-serve: listening on {addr}");
    server.run()
}
