//! The daemon: a readiness-driven event loop, admission control, a
//! worker pool, and graceful shutdown.
//!
//! ## Threading model
//!
//! One event-loop thread (the caller of [`Server::run`]) owns the
//! listener, every connection, and all socket I/O; a fixed pool of
//! `jobs` workers owns all corpus work. Nothing else touches a socket:
//!
//! - the event loop accepts, reassembles length-prefixed frames from
//!   non-blocking reads ([`crate::conn`]), parses requests, runs the
//!   admission controller, and pushes accepted jobs onto the shared
//!   [`BoundedQueue`];
//! - workers pop, execute against the resident corpus, render the
//!   response, and hand the bytes back through a completion list plus a
//!   [`Waker`] nudge;
//! - the event loop appends completions to the owed connection's write
//!   buffer and flushes under writable readiness.
//!
//! Because exactly one thread writes any socket, responses never
//! interleave bytes — no per-connection write mutex exists anymore.
//!
//! ## Fairness
//!
//! Connections are parsed round-robin with a per-turn frame budget
//! ([`FRAMES_PER_TURN`]), so a client that pipelines thousands of frames
//! advances at most a few requests per turn while others proceed. The
//! per-connection in-flight cap converts the rest of the flood into
//! `overloaded` sheds charged to the flooding connection.
//!
//! ## Admission control and refusals
//!
//! [`Admission`] decides before the queue is touched: queue-depth and
//! global in-flight thresholds (off by default, on in the soak bench and
//! the fairness tests) and the per-connection cap produce `overloaded`
//! responses with a `retry_after_ms` hint; a literal queue-full produces
//! `busy`. Both carry the queue depth and a shared monotone `shed_seq`.
//!
//! ## Deadlines
//!
//! The deadline sweep runs every poller tick: a connection dribbling an
//! incomplete frame for longer than `read_deadline_ms` (slowloris) or
//! sitting completely idle past `idle_timeout_ms` is dropped and counted
//! in `slow_closes`. Per-request `deadline_ms` (queue wait) is enforced
//! by workers exactly as before.
//!
//! ## Ordering and determinism
//!
//! The queue is FIFO; with more than one worker, pipelined requests may
//! complete out of order — correlate by `id`. A synchronous client
//! observes fully deterministic behaviour: corpus transitions are
//! totally ordered and response rendering is fixed-order, so the same
//! request sequence is byte-identical at any `--jobs` setting and under
//! either poller backend.
//!
//! ## Shutdown
//!
//! `shutdown` rides the queue like any request: its handler closes the
//! queue (late arrivals get `busy`) and answers `bye`. Workers drain the
//! residue and exit; the event loop keeps flushing until every accepted
//! request's response has been written (bounded by
//! [`DRAIN_FLUSH_DEADLINE`], after which stragglers count as
//! `slow_closes`), then [`Server::run`] joins the workers, flushes
//! metrics/trace artefacts, and returns `Ok(())`.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use f3m_core::corpus::{Corpus, CorpusConfig, QueryOutcome};
use f3m_core::pass::PassConfig;
use f3m_core::{GlobalMergePlanner, GlobalPlanConfig};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::backend::BackendKind;
use f3m_fingerprint::pager::PagerKind;
use f3m_fingerprint::snapshot::SnapshotError;
use f3m_ir::parser::parse_module;
use f3m_trace::metrics::MetricsRegistry;
use f3m_trace::tracer::span_on;
use f3m_trace::{write_with_dirs, Tracer};

use crate::conn::{Connection, FillOutcome, TakeFrame};
use crate::poll::{new_poller, PollEvent, Poller, PollerKind, Waker, WakerSource};
use crate::protocol::{
    parse_request, render_response, Request, Response, ServerCounters, MAX_FRAME, REQUEST_TYPES,
};
use crate::queue::{BoundedQueue, PushError};

/// Admission-control thresholds. Zero means "disabled" for the two
/// global thresholds; the per-connection cap always has a floor so a
/// single flooding client cannot monopolize the queue.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Shed new work once the queue holds this many requests
    /// (0 = disabled; the queue's own capacity then answers `busy`).
    pub queue_shed_depth: usize,
    /// Shed new work once this many requests are in flight across all
    /// connections — queued plus executing (0 = disabled).
    pub max_inflight_global: usize,
    /// Shed a connection's new frames while it already has this many
    /// requests in flight. This is the fairness backstop; it is never
    /// disabled.
    pub max_inflight_per_conn: usize,
    /// Base of the `retry_after_ms` hint; the hint grows linearly with
    /// the observed queue depth so deeper congestion advises longer
    /// backoff.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_shed_depth: 0,
            max_inflight_global: 0,
            max_inflight_per_conn: 64,
            retry_after_ms: 25,
        }
    }
}

/// The load snapshot an admission decision is made against.
#[derive(Clone, Copy, Debug)]
pub struct LoadSnapshot {
    pub queue_depth: usize,
    pub global_inflight: usize,
    pub conn_inflight: usize,
}

/// The admission controller: a pure, deterministic state machine
/// (scripted directly by the regression gate) whose only state is the
/// monotone shed sequence shared with `busy` refusals.
pub struct Admission {
    cfg: AdmissionConfig,
    shed_seq: u64,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission { cfg, shed_seq: 0 }
    }

    /// Sheds this request? `Some(overloaded response)` when a threshold
    /// is exceeded, `None` to proceed to the queue.
    pub fn admit(&mut self, load: LoadSnapshot) -> Option<Response> {
        let per_conn = self.cfg.max_inflight_per_conn.max(1);
        let shed = load.conn_inflight >= per_conn
            || (self.cfg.queue_shed_depth > 0 && load.queue_depth >= self.cfg.queue_shed_depth)
            || (self.cfg.max_inflight_global > 0
                && load.global_inflight >= self.cfg.max_inflight_global);
        if !shed {
            return None;
        }
        self.shed_seq += 1;
        Some(Response::Overloaded {
            queue_depth: load.queue_depth as u64,
            in_flight: load.global_inflight as u64,
            shed_seq: self.shed_seq,
            retry_after_ms: self.retry_after_hint(load.queue_depth),
        })
    }

    /// The `busy` refusal for a queue that was full (or closed) at push
    /// time; draws from the same monotone sequence as sheds.
    pub fn busy(&mut self, queue_depth: usize) -> Response {
        self.shed_seq += 1;
        Response::Busy { queue_depth: queue_depth as u64, shed_seq: self.shed_seq }
    }

    /// Sheds issued so far (busy + overloaded).
    pub fn shed_seq(&self) -> u64 {
        self.shed_seq
    }

    fn retry_after_hint(&self, queue_depth: usize) -> u64 {
        self.cfg.retry_after_ms.max(1) + queue_depth as u64
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub jobs: usize,
    /// Bounded queue capacity; pushes beyond it answer `busy`.
    pub queue_cap: usize,
    /// LSH index shards for the resident corpus.
    pub shards: usize,
    /// Fingerprint family for the resident corpus.
    pub backend: BackendKind,
    /// Extra multi-probe LSH perturbations per candidate query
    /// (0 = classic single-probe).
    pub probes: usize,
    /// `Some(bytes)` restores the snapshot through the mmap-resident
    /// fingerprint store instead of a bulk read, keeping at most this
    /// many pool bytes hot (0 = map everything, spill nothing). `None`
    /// keeps the bulk O(file) restore.
    pub resident_budget: Option<u64>,
    /// Readiness backend (`Auto` = epoll where available).
    pub poller: PollerKind,
    /// Admission-control thresholds.
    pub admission: AdmissionConfig,
    /// Drop a connection that has held an *incomplete* frame this long
    /// (slowloris defense). 0 disables.
    pub read_deadline_ms: u64,
    /// Drop a connection with no traffic and nothing in flight after
    /// this long. 0 disables.
    pub idle_timeout_ms: u64,
    /// Index snapshot file: loaded at bind if present (so a restart is
    /// O(file size) instead of a re-ingest), saved on shutdown. A stale
    /// snapshot (entry stamps newer than its header epoch) falls back to
    /// re-ingesting the module sources it carries; an unreadable one
    /// starts empty.
    pub snapshot_path: Option<PathBuf>,
    /// Flat-JSON metrics artefact written on shutdown.
    pub metrics_path: Option<PathBuf>,
    /// Chrome-trace artefact written on shutdown.
    pub trace_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            queue_cap: 64,
            shards: 8,
            backend: BackendKind::MinHash,
            probes: 0,
            resident_budget: None,
            poller: PollerKind::Auto,
            admission: AdmissionConfig::default(),
            read_deadline_ms: 30_000,
            idle_timeout_ms: 300_000,
            snapshot_path: None,
            metrics_path: None,
            trace_path: None,
        }
    }
}

/// How the resident corpus came to be at bind time.
#[derive(Clone, Copy, Debug, Default)]
struct SnapshotStatus {
    /// Wall-clock of the restore (or the rebuild fallback), in ms.
    load_ms: u64,
    /// The snapshot restored directly (O(load), no re-fingerprinting).
    loaded: bool,
    /// The snapshot was stale; the corpus was rebuilt from its sources.
    rebuilt: bool,
    /// Live entries resident right after startup.
    entries: u64,
}

/// One unit of accepted work, owned by a worker between pop and
/// completion.
struct Job {
    /// Event-loop token of the connection owed the response.
    token: u64,
    id: Option<u64>,
    deadline_ms: Option<u64>,
    body: Request,
    enqueued: Instant,
}

/// A finished job's rendered response, traveling back to the event loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    /// This completion answered the `shutdown` request.
    shutdown: bool,
}

/// State shared by the event loop and the workers.
struct Shared {
    corpus: Corpus,
    queue: BoundedQueue<Job>,
    counters: Mutex<ServerCounters>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    shutting_down: AtomicBool,
    tracer: Option<Tracer>,
    snapshot: SnapshotStatus,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
    poller: Box<dyn Poller>,
    waker_source: Option<WakerSource>,
}

impl Server {
    /// Binds the listener and builds the resident corpus — empty, or
    /// restored from `snapshot_path` when one is present.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let corpus_cfg = CorpusConfig {
            params: MergeParams::static_default()
                .with_backend(cfg.backend)
                .with_probes(cfg.probes),
            shards: cfg.shards.max(1),
            jobs: cfg.jobs.max(1),
        };
        let (corpus, snapshot) = open_corpus(&cfg, corpus_cfg);
        let (poller, waker, waker_source) = new_poller(cfg.poller);
        let shared = Arc::new(Shared {
            corpus,
            queue: BoundedQueue::new(cfg.queue_cap),
            counters: Mutex::new(ServerCounters::default()),
            completions: Mutex::new(Vec::new()),
            waker,
            shutting_down: AtomicBool::new(false),
            tracer: cfg.trace_path.as_ref().map(|_| Tracer::new()),
            snapshot,
        });
        Ok(Server { cfg, listener, shared, poller, waker_source })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The readiness backend actually in use (`epoll` or `fallback`).
    pub fn poller_backend(&self) -> &'static str {
        self.poller.backend_name()
    }

    /// Serves until a `shutdown` request completes; returns after the
    /// queue is drained, responses are flushed, workers have joined, and
    /// artefacts are flushed.
    pub fn run(self) -> std::io::Result<()> {
        let Server { cfg, listener, shared, poller, waker_source } = self;
        let mut workers = Vec::new();
        for _ in 0..cfg.jobs.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let result = EventLoop::new(&cfg, &shared, listener, poller, waker_source).run();
        // Normally `shutdown` already closed the queue; if the event
        // loop died early (poller failure) close it here so workers
        // blocked in `pop` drain the residue and exit instead of
        // hanging the join below. `close` is idempotent.
        shared.shutting_down.store(true, Ordering::Release);
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        flush_artifacts(&cfg, &shared);
        result
    }
}

/// The event-loop tick: upper bound on how long readiness `wait` may
/// block before the deadline sweep runs again.
const TICK: Duration = Duration::from_millis(25);

/// Fairness quantum: frames parsed per connection per loop turn.
const FRAMES_PER_TURN: usize = 8;

/// After shutdown's queue drain, how long stragglers get to accept their
/// buffered responses before being dropped (and counted `slow_closes`).
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(3);

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

struct EventLoop<'a> {
    cfg: &'a ServeConfig,
    shared: &'a Arc<Shared>,
    listener: TcpListener,
    poller: Box<dyn Poller>,
    waker_source: Option<WakerSource>,
    conns: HashMap<u64, Connection>,
    /// Round-robin parse order (tokens; stale entries skipped lazily).
    rr: Vec<u64>,
    rr_cursor: usize,
    next_token: u64,
    admission: Admission,
    /// Requests admitted and not yet completed, across all connections.
    global_inflight: usize,
    accepting: bool,
    /// Set when the shutdown completion has been delivered; starts the
    /// drain-flush clock.
    drain_started: Option<Instant>,
    scratch: Vec<u8>,
}

impl<'a> EventLoop<'a> {
    fn new(
        cfg: &'a ServeConfig,
        shared: &'a Arc<Shared>,
        listener: TcpListener,
        poller: Box<dyn Poller>,
        waker_source: Option<WakerSource>,
    ) -> EventLoop<'a> {
        EventLoop {
            cfg,
            shared,
            listener,
            poller,
            waker_source,
            conns: HashMap::new(),
            rr: Vec::new(),
            rr_cursor: 0,
            next_token: FIRST_CONN_TOKEN,
            admission: Admission::new(cfg.admission),
            global_inflight: 0,
            accepting: true,
            drain_started: None,
            scratch: vec![0u8; 64 * 1024],
        }
    }

    fn run(mut self) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            self.poller.register(self.listener.as_raw_fd(), LISTENER_TOKEN, false)?;
            if let Some(src) = &self.waker_source {
                self.poller.register(src.fd(), WAKER_TOKEN, false)?;
            }
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            // Zero timeout while parsed-but-unprocessed input remains so
            // the fairness quantum never adds latency.
            let timeout = if self.has_parse_backlog() { Duration::ZERO } else { TICK };
            self.poller.wait(&mut events, timeout)?;
            if !events.is_empty() {
                self.shared.counters.lock().unwrap().readiness_wakeups += 1;
            }
            let now = Instant::now();
            for ev in events.drain(..) {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(now),
                    WAKER_TOKEN => {
                        if let Some(src) = &self.waker_source {
                            src.drain();
                        }
                    }
                    token => self.socket_ready(token, ev, now),
                }
            }
            self.drain_completions(now);
            self.parse_turn(now);
            self.sweep_deadlines(now);
            self.reap(now);
            if self.shutdown_complete(now) {
                break;
            }
        }
        Ok(())
    }

    /// Unparsed complete frames are waiting in some connection buffer.
    /// Connections already marked close-after-flush never parse again,
    /// so their residue is not a backlog (counting it would pin the
    /// poller at zero-timeout waits forever).
    fn has_parse_backlog(&self) -> bool {
        self.conns.values().any(|c| !c.close_after_flush && c.has_complete_frame(MAX_FRAME))
    }

    fn accept_ready(&mut self, now: Instant) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are one small frame each; Nagle would add
                    // a delayed-ACK round trip to every synchronous
                    // request.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    #[cfg(unix)]
                    {
                        use std::os::fd::AsRawFd;
                        if self.poller.register(stream.as_raw_fd(), token, false).is_err() {
                            continue;
                        }
                    }
                    self.conns.insert(token, Connection::new(stream, now));
                    self.rr.push(token);
                    let mut c = self.shared.counters.lock().unwrap();
                    c.conns_total += 1;
                    c.conns_open = self.conns.len() as u64;
                    c.conns_open_hwm = c.conns_open_hwm.max(c.conns_open);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn socket_ready(&mut self, token: u64, ev: PollEvent, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if ev.readable && !conn.read_closed {
            match conn.fill(&mut self.scratch, MAX_FRAME, now) {
                FillOutcome::Progress => {}
                FillOutcome::Eof => conn.read_closed = true,
                FillOutcome::Broken => {
                    conn.read_closed = true;
                    conn.request_close(now);
                }
            }
        }
        if ev.writable {
            // A full drain must drop writable interest, or a
            // level-triggered poller reports this socket writable on
            // every wait and the loop busy-spins.
            match conn.flush(now) {
                Ok(true) => self.set_writable_interest(token, false),
                Ok(false) => {}
                Err(_) => self.drop_conn(token),
            }
        }
    }

    /// One fairness turn: round-robin over connections, at most
    /// [`FRAMES_PER_TURN`] frames each.
    fn parse_turn(&mut self, now: Instant) {
        if self.rr.is_empty() {
            return;
        }
        let turn_order: Vec<u64> = {
            let n = self.rr.len();
            let start = self.rr_cursor % n;
            (0..n).map(|i| self.rr[(start + i) % n]).collect()
        };
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        for token in turn_order {
            for _ in 0..FRAMES_PER_TURN {
                let Some(conn) = self.conns.get_mut(&token) else { break };
                if conn.close_after_flush {
                    break;
                }
                match conn.take_frame(MAX_FRAME, now) {
                    TakeFrame::Pending => break,
                    TakeFrame::Oversized(len) => {
                        // The payload was never consumed, so the stream is
                        // no longer at a frame boundary: answer, flush,
                        // drop.
                        let message = format!("frame length {len} exceeds maximum {MAX_FRAME}");
                        self.respond_inline(token, None, &Response::Error { message }, now);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.request_close(now);
                        }
                        break;
                    }
                    TakeFrame::Frame(payload) => {
                        self.shared.counters.lock().unwrap().frames_reassembled += 1;
                        self.dispatch_frame(token, &payload, now);
                    }
                }
            }
        }
    }

    /// Parses one frame and routes it: inline error, admission shed,
    /// queue push, or `busy`.
    fn dispatch_frame(&mut self, token: u64, payload: &[u8], now: Instant) {
        let env = match parse_request(payload) {
            Ok(env) => env,
            Err(message) => {
                self.respond_inline(token, None, &Response::Error { message }, now);
                return;
            }
        };
        let conn_inflight = self.conns.get(&token).map_or(0, |c| c.in_flight);
        let load = LoadSnapshot {
            queue_depth: self.shared.queue.len(),
            global_inflight: self.global_inflight,
            conn_inflight,
        };
        if let Some(shed) = self.admission.admit(load) {
            let mut c = self.shared.counters.lock().unwrap();
            c.sheds += 1;
            c.shed_seq = self.admission.shed_seq();
            drop(c);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.sheds += 1;
            }
            self.respond_inline(token, env.id, &shed, now);
            return;
        }
        let job = Job {
            token,
            id: env.id,
            deadline_ms: env.deadline_ms,
            body: env.body,
            enqueued: now,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.global_inflight += 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.in_flight += 1;
                }
            }
            Err(e) => {
                let depth = self.shared.queue.len();
                let busy = self.admission.busy(depth);
                let mut c = self.shared.counters.lock().unwrap();
                if e == PushError::Full {
                    c.rejects_busy += 1;
                }
                c.shed_seq = self.admission.shed_seq();
                drop(c);
                self.respond_inline(token, env.id, &busy, now);
            }
        }
    }

    /// Renders and queues a response produced by the event loop itself
    /// (parse errors, sheds, busy) and attempts an eager flush.
    fn respond_inline(&mut self, token: u64, id: Option<u64>, resp: &Response, now: Instant) {
        if matches!(resp, Response::Error { .. }) {
            self.shared.counters.lock().unwrap().errors += 1;
        }
        let text = render_response(id, resp);
        self.queue_bytes(token, text.as_bytes(), now);
    }

    fn queue_bytes(&mut self, token: u64, payload: &[u8], now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.push_response(payload);
        match conn.flush(now) {
            Ok(true) => self.set_writable_interest(token, false),
            Ok(false) => self.set_writable_interest(token, true),
            Err(_) => self.drop_conn(token),
        }
    }

    fn set_writable_interest(&mut self, token: u64, want: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.writable_interest == want {
            return;
        }
        conn.writable_interest = want;
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.modify(fd, token, want);
        }
    }

    /// Moves finished jobs' bytes into their connections' write buffers.
    fn drain_completions(&mut self, now: Instant) {
        let done: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for completion in done {
            if completion.shutdown {
                self.begin_shutdown();
                self.drain_started = Some(now);
            }
            if let Some(conn) = self.conns.get_mut(&completion.token) {
                // Orphaned jobs (connection already dropped) were given
                // back to `global_inflight` wholesale in `drop_conn`;
                // decrementing them again here would undercount and
                // weaken `max_inflight_global` admission.
                self.global_inflight = self.global_inflight.saturating_sub(1);
                conn.in_flight = conn.in_flight.saturating_sub(1);
                conn.push_response(&completion.bytes);
            }
            // Flush through queue_bytes' interest logic.
            match self.conns.get_mut(&completion.token).map(|c| c.flush(now)) {
                Some(Ok(true)) => self.set_writable_interest(completion.token, false),
                Some(Ok(false)) => self.set_writable_interest(completion.token, true),
                Some(Err(_)) => self.drop_conn(completion.token),
                None => {} // client gone; response dropped
            }
        }
    }

    fn begin_shutdown(&mut self) {
        if !self.accepting {
            return;
        }
        self.accepting = false;
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let _ = self.poller.deregister(self.listener.as_raw_fd());
        }
    }

    /// Slowloris and idle sweeps.
    fn sweep_deadlines(&mut self, now: Instant) {
        let read_deadline = Duration::from_millis(self.cfg.read_deadline_ms);
        let idle_timeout = Duration::from_millis(self.cfg.idle_timeout_ms);
        let mut victims = Vec::new();
        for (&token, conn) in &self.conns {
            // A connection we already decided to drop gets a bounded
            // window to accept its final response; a peer that stops
            // reading cannot pin it (it is exempt from the idle and
            // slowloris sweeps below and never parses again).
            if conn.close_after_flush {
                if let Some(since) = conn.closing_since {
                    if now.duration_since(since) >= DRAIN_FLUSH_DEADLINE {
                        victims.push(token);
                        continue;
                    }
                }
            }
            if self.cfg.read_deadline_ms > 0 {
                if let Some(since) = conn.partial_since {
                    // A complete frame waiting its fairness turn is a
                    // backlog, not a slowloris.
                    if !conn.has_complete_frame(MAX_FRAME)
                        && now.duration_since(since) >= read_deadline
                    {
                        victims.push(token);
                        continue;
                    }
                }
            }
            if self.cfg.idle_timeout_ms > 0
                && conn.in_flight == 0
                && !conn.has_buffered_input()
                && conn.flushed()
                && now.duration_since(conn.last_activity) >= idle_timeout
            {
                victims.push(token);
            }
        }
        for token in victims {
            self.shared.counters.lock().unwrap().slow_closes += 1;
            self.drop_conn(token);
        }
    }

    /// Reaps connections that are finished (peer closed, nothing owed).
    fn reap(&mut self, _now: Instant) {
        let done: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.reapable()).map(|(&t, _)| t).collect();
        let flushed_closers: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.close_after_flush && c.flushed())
            .map(|(&t, _)| t)
            .collect();
        for token in done.into_iter().chain(flushed_closers) {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        // In-flight jobs for a dead client still run (corpus effects are
        // real); their completions find no connection and are dropped.
        self.global_inflight = self.global_inflight.saturating_sub(conn.in_flight);
        self.rr.retain(|&t| t != token);
        let mut c = self.shared.counters.lock().unwrap();
        c.conns_open = self.conns.len() as u64;
    }

    /// After shutdown: queue drained, all completions applied, all
    /// buffers flushed (or the drain deadline expired).
    fn shutdown_complete(&mut self, now: Instant) -> bool {
        let Some(started) = self.drain_started else { return false };
        if self.global_inflight > 0 || self.has_parse_backlog() {
            // Still owed responses (or have accepted frames to answer
            // with `busy` against the closed queue).
            if now.duration_since(started) < DRAIN_FLUSH_DEADLINE {
                return false;
            }
        }
        let all_flushed = self.conns.values().all(|c| c.flushed());
        if all_flushed || now.duration_since(started) >= DRAIN_FLUSH_DEADLINE {
            let stragglers = self.conns.values().filter(|c| !c.flushed()).count() as u64;
            if stragglers > 0 {
                self.shared.counters.lock().unwrap().slow_closes += stragglers;
            }
            return true;
        }
        false
    }
}

/// Saves the index snapshot and writes the metrics and trace artefacts,
/// if configured.
fn flush_artifacts(cfg: &ServeConfig, shared: &Shared) {
    let snapshot_saved = cfg.snapshot_path.as_ref().map(|path| {
        match shared.corpus.save_snapshot(path) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("f3m-serve: failed to save snapshot {}: {e}", path.display());
                false
            }
        }
    });
    if let Some(path) = &cfg.metrics_path {
        let dump = render_metrics(shared, cfg, snapshot_saved);
        if let Err(e) = write_with_dirs(path, &dump) {
            eprintln!("f3m-serve: failed to write metrics {}: {e}", path.display());
        }
    }
    if let (Some(path), Some(tracer)) = (&cfg.trace_path, &shared.tracer) {
        if let Err(e) = write_with_dirs(path, &tracer.to_chrome_json()) {
            eprintln!("f3m-serve: failed to write trace {}: {e}", path.display());
        }
    }
}

/// Builds the resident corpus: restored from the configured snapshot
/// when one is present and trustworthy (through the mmap-resident store
/// when `resident_budget` is set, a bulk read otherwise), rebuilt from
/// the snapshot's module sources when its index is stale, empty
/// otherwise.
fn open_corpus(cfg: &ServeConfig, corpus_cfg: CorpusConfig) -> (Corpus, SnapshotStatus) {
    let mut status = SnapshotStatus::default();
    let Some(path) = cfg.snapshot_path.as_ref().filter(|p| p.exists()) else {
        return (Corpus::new(corpus_cfg), status);
    };
    let t0 = Instant::now();
    let loaded = match cfg.resident_budget {
        Some(budget) => {
            Corpus::load_snapshot_resident(path, corpus_cfg.clone(), PagerKind::Auto, budget)
        }
        None => Corpus::load_snapshot(path, corpus_cfg.clone()),
    };
    match loaded {
        Ok(corpus) => {
            status.load_ms = t0.elapsed().as_millis() as u64;
            status.loaded = true;
            status.entries = corpus.stats().functions_live as u64;
            let pager = corpus
                .residency()
                .map(|(name, _)| format!(" (resident, pager={name})"))
                .unwrap_or_default();
            eprintln!(
                "f3m-serve: restored {} functions at epoch {} from {} in {}ms{pager}",
                status.entries,
                corpus.epoch(),
                path.display(),
                status.load_ms
            );
            (corpus, status)
        }
        Err(e @ SnapshotError::StaleEpoch { .. }) => {
            // The packed index cannot be trusted, but the module sources
            // in the payload still can: re-ingest them from scratch.
            eprintln!("f3m-serve: snapshot {}: {e}; rebuilding from sources", path.display());
            let corpus = Corpus::new(corpus_cfg);
            match Corpus::snapshot_sources(path) {
                Ok(sources) => {
                    for (name, src) in sources {
                        let ingested = parse_module(&src)
                            .map_err(|err| format!("does not parse: {err}"))
                            .and_then(|m| corpus.ingest(m).map(|_| ()));
                        if let Err(err) = ingested {
                            eprintln!("f3m-serve: rebuild of module `{name}` failed: {err}");
                        }
                    }
                    status.rebuilt = true;
                    status.load_ms = t0.elapsed().as_millis() as u64;
                    status.entries = corpus.stats().functions_live as u64;
                }
                Err(err) => {
                    eprintln!("f3m-serve: rebuild failed ({err}); starting empty");
                }
            }
            (corpus, status)
        }
        Err(e) => {
            eprintln!("f3m-serve: snapshot {} unusable ({e}); starting empty", path.display());
            (Corpus::new(corpus_cfg), status)
        }
    }
}

/// Renders the daemon's metrics registry: request counters, refusal and
/// event-loop counters, queue high-water mark, corpus epoch, snapshot
/// lifecycle, and per-shard index occupancy.
fn render_metrics(shared: &Shared, cfg: &ServeConfig, snapshot_saved: Option<bool>) -> String {
    let counters = shared.counters.lock().unwrap().clone();
    let stats = shared.corpus.stats();
    let mut reg = MetricsRegistry::new();
    for (i, ty) in REQUEST_TYPES.iter().enumerate() {
        let c = reg.counter(&format!("serve.requests.{ty}"), "requests", true);
        reg.set(c, counters.requests[i]);
    }
    let det_pairs: [(&str, u64); 7] = [
        ("serve.errors", counters.errors),
        ("serve.epoch", stats.epoch),
        ("serve.jobs", cfg.jobs as u64),
        // Incremental-recompute counters: jobs-invariant (and, for a
        // synchronous client, fully deterministic — they ride the stats
        // response, which the determinism tests compare byte-for-byte).
        ("serve.corpus.memo_hits", stats.memo_hits),
        ("serve.corpus.memo_misses", stats.memo_misses),
        ("serve.corpus.funcs_invalidated", stats.funcs_invalidated),
        ("serve.corpus.queries_superseded", stats.queries_superseded),
    ];
    for (name, v) in det_pairs {
        let c = reg.counter(name, "count", true);
        reg.set(c, v);
    }
    // Timing- and environment-dependent: how full the queue got, what
    // was refused or shed, connection churn, the poller's wakeup count,
    // and the snapshot lifecycle (load time is wall-clock;
    // loaded/rebuilt/entries depend on what was on disk at startup).
    let snap = &shared.snapshot;
    // Residency counters ride along here too: fault/spill totals depend
    // on worker interleaving when `jobs > 1`, so they are observability,
    // not determinism, surface (the regression gate collects its own
    // single-threaded residency scenario).
    let nondet_pairs: [(&str, u64); 19] = [
        ("serve.resident.active", u64::from(stats.resident_pager.is_some())),
        ("serve.resident.bytes", stats.resident_bytes),
        ("serve.resident.faults", stats.shard_faults),
        ("serve.resident.spills", stats.shard_spills),
        ("serve.rejects_busy", counters.rejects_busy),
        ("serve.rejects_deadline", counters.rejects_deadline),
        ("serve.queue_depth_hwm", counters.queue_depth_hwm),
        ("serve.conns_open", counters.conns_open),
        ("serve.conns_open_hwm", counters.conns_open_hwm),
        ("serve.conns_total", counters.conns_total),
        ("serve.frames_reassembled", counters.frames_reassembled),
        ("serve.sheds", counters.sheds),
        ("serve.slow_closes", counters.slow_closes),
        ("serve.readiness_wakeups", counters.readiness_wakeups),
        ("serve.snapshot.load_ms", snap.load_ms),
        ("serve.snapshot.loaded", u64::from(snap.loaded)),
        ("serve.snapshot.rebuilt", u64::from(snap.rebuilt)),
        ("serve.snapshot.entries", snap.entries),
        ("serve.snapshot.saved", snapshot_saved.map_or(0, u64::from)),
    ];
    for (name, v) in nondet_pairs {
        let c = reg.counter(name, "count", false);
        reg.set(c, v);
    }
    let occ = [
        ("serve.index.buckets", stats.index_buckets as u64),
        ("serve.index.max_bucket", stats.index_max_bucket as u64),
        ("serve.index.entries", stats.entries_total as u64),
    ];
    for (name, v) in occ {
        let c = reg.counter(name, "buckets", true);
        reg.set(c, v);
    }
    for (i, s) in stats.shards.iter().enumerate() {
        let b = reg.counter(&format!("serve.shard{i}.buckets"), "buckets", true);
        reg.set(b, s.num_buckets as u64);
        let e = reg.counter(&format!("serve.shard{i}.entries"), "entries", true);
        reg.set(e, s.entries as u64);
        let m = reg.counter(&format!("serve.shard{i}.max_bucket"), "entries", true);
        reg.set(m, s.max_bucket_size as u64);
    }
    reg.to_json()
}

/// Worker: pop, enforce the queue-wait deadline, dispatch, complete.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if let Some(d) = job.deadline_ms {
            if job.enqueued.elapsed() >= Duration::from_millis(d) {
                shared.counters.lock().unwrap().rejects_deadline += 1;
                let message = format!("deadline of {d}ms expired while queued");
                complete(shared, job.token, job.id, &Response::Error { message }, false);
                continue;
            }
        }
        let type_name = job.body.type_name();
        let span = span_on(shared.tracer.as_ref(), "serve", format!("req.{type_name}"));
        let resp = match catch_unwind(AssertUnwindSafe(|| handle(shared, &job.body))) {
            Ok(resp) => resp,
            Err(_) => Response::Error { message: format!("internal panic handling `{type_name}`") },
        };
        drop(span);
        {
            let mut c = shared.counters.lock().unwrap();
            c.count_request(type_name);
            c.queue_depth_hwm = c.queue_depth_hwm.max(shared.queue.high_water_mark() as u64);
        }
        complete(shared, job.token, job.id, &resp, matches!(job.body, Request::Shutdown));
    }
}

/// Hands one rendered response back to the event loop and wakes it.
fn complete(shared: &Shared, token: u64, id: Option<u64>, resp: &Response, shutdown: bool) {
    if matches!(resp, Response::Error { .. }) {
        shared.counters.lock().unwrap().errors += 1;
    }
    let text = render_response(id, resp);
    shared
        .completions
        .lock()
        .unwrap()
        .push(Completion { token, bytes: text.into_bytes(), shutdown });
    shared.waker.wake();
}

/// How many times a cancellable module query is restarted after being
/// epoch-superseded before the client is answered `superseded`.
const QUERY_RESTARTS: usize = 2;

/// Dispatches one request against the resident corpus.
fn handle(shared: &Shared, req: &Request) -> Response {
    match req {
        Request::Ingest { name, ir } => {
            let mut module = match parse_module(ir) {
                Ok(m) => m,
                Err(e) => return Response::Error { message: format!("ingest parse: {e}") },
            };
            if let Some(n) = name {
                module.name = n.clone();
            }
            match shared.corpus.ingest(module) {
                Ok(s) => Response::Ingested(s),
                Err(message) => Response::Error { message },
            }
        }
        Request::Evict { name } => match shared.corpus.evict(name) {
            Ok(s) => Response::Evicted(s),
            Err(message) => Response::Error { message },
        },
        Request::Query { module, func, k, if_epoch } => {
            // Epoch precondition: a stale client pin is answered
            // `superseded` without doing any ranking work.
            if let Some(want) = if_epoch {
                if shared.corpus.epoch() != *want {
                    // Counted through the corpus so the miss shows up in
                    // `queries_superseded` like any other supersession.
                    if let QueryOutcome::Superseded { started, epoch } =
                        shared.corpus.superseded(*want)
                    {
                        return Response::Superseded { started, epoch };
                    }
                }
            }
            match func {
                Some(f) => match shared.corpus.query_function(module, f, *k) {
                    Ok((epoch, r)) => Response::Candidates { epoch, results: vec![r] },
                    Err(message) => Response::Error { message },
                },
                // Module queries run cancellable: concurrent mutations
                // abort and restart them a bounded number of times, then
                // the client is told its answer was superseded rather
                // than being handed a torn snapshot.
                None => {
                    let mut last = (0, 0);
                    for _ in 0..=QUERY_RESTARTS {
                        let outcome = shared.corpus.query_module_cancellable(module, *k, |pin| {
                            shared.corpus.epoch() != pin
                        });
                        match outcome {
                            Ok(QueryOutcome::Complete { epoch, results }) => {
                                return Response::Candidates { epoch, results }
                            }
                            Ok(QueryOutcome::Superseded { started, epoch }) => {
                                last = (started, epoch);
                            }
                            Err(message) => return Response::Error { message },
                        }
                    }
                    Response::Superseded { started: last.0, epoch: last.1 }
                }
            }
        }
        Request::Update { module, func, ir } => {
            match shared.corpus.update_function(module, func, ir.as_deref()) {
                Ok(s) => Response::Updated(s),
                Err(message) => Response::Error { message },
            }
        }
        Request::Merge { strategy, jobs } => {
            let mut cfg = match strategy.as_str() {
                "f3m" => PassConfig::f3m(),
                "hyfm" => PassConfig::hyfm(),
                "f3m-adaptive" => PassConfig::f3m_adaptive(),
                other => {
                    return Response::Error { message: format!("unknown strategy `{other}`") }
                }
            };
            if let Some(j) = jobs {
                cfg = cfg.with_jobs(*j);
            }
            match shared.corpus.merge(&cfg) {
                Ok((mut report, _merged)) => {
                    // Wall-clock fields vary run to run; zero them so the
                    // response is a pure function of corpus state.
                    report.strip_wall_clock();
                    Response::Report { epoch: shared.corpus.epoch(), report: report.to_json() }
                }
                Err(message) => Response::Error { message },
            }
        }
        Request::GlobalMerge { jobs, if_epoch } => {
            // Epoch precondition, mirroring `query`: a stale pin is
            // answered `superseded` before any planning work, counted
            // through the corpus like every other supersession.
            if let Some(want) = if_epoch {
                if shared.corpus.epoch() != *want {
                    if let QueryOutcome::Superseded { started, epoch } =
                        shared.corpus.superseded(*want)
                    {
                        return Response::Superseded { started, epoch };
                    }
                }
            }
            let mut cfg = GlobalPlanConfig::default();
            if let Some(j) = jobs {
                cfg = cfg.with_jobs(*j);
            }
            let planner = GlobalMergePlanner::new(&shared.corpus, cfg);
            match planner.run() {
                Ok((report, _merged, pinned)) => {
                    // A mutation that landed while the planner ran makes
                    // the plan stale; supersede it rather than publish.
                    if shared.corpus.epoch() != pinned {
                        if let QueryOutcome::Superseded { started, epoch } =
                            shared.corpus.superseded(pinned)
                        {
                            return Response::Superseded { started, epoch };
                        }
                    }
                    Response::Report { epoch: pinned, report: report.to_json() }
                }
                Err(message) => Response::Error { message },
            }
        }
        Request::Stats => {
            let mut server = shared.counters.lock().unwrap().clone();
            server.queue_depth_hwm =
                server.queue_depth_hwm.max(shared.queue.high_water_mark() as u64);
            Response::Stats { corpus: Box::new(shared.corpus.stats()), server: Box::new(server) }
        }
        Request::Ping => Response::Pong,
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            Response::Slept { ms: *ms }
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::Release);
            shared.queue.close();
            Response::Bye
        }
    }
}

/// Convenience used by the CLI: bind, announce on stderr, run.
pub fn serve(cfg: ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(cfg)?;
    let addr = server.local_addr()?;
    let mut err = std::io::stderr();
    let _ = writeln!(err, "f3m-serve: listening on {addr} ({})", server.poller_backend());
    server.run()
}
