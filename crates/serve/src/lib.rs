//! # f3m-serve — the resident merge daemon
//!
//! Merging as a service: instead of re-fingerprinting and re-indexing a
//! corpus for every invocation, a long-lived daemon keeps the sharded
//! LSH index (and the modules behind it) resident and answers requests
//! over TCP. Ingestion is incremental and epoch-versioned — adding or
//! evicting one module touches only that module's bucket entries, never
//! a full rebuild — which is the paper's "fast, focused" economics
//! extended across process boundaries.
//!
//! - [`protocol`] — length-prefixed JSON frames, the typed
//!   request/response vocabulary, and deterministic response rendering,
//! - [`poll`] — the std-only readiness abstraction ([`poll::Poller`]):
//!   an epoll backend on Linux, a portable polling fallback elsewhere,
//! - [`conn`] — the per-connection state machine: non-blocking frame
//!   reassembly, write buffering, and the slowloris partial-frame clock,
//! - [`queue`] — the bounded MPMC queue that implements backpressure
//!   (`busy` refusals, never unbounded growth),
//! - [`server`] — the readiness event loop: non-blocking accept,
//!   round-robin per-client fairness, admission control (typed
//!   `overloaded` sheds distinct from `busy`), per-connection idle/read
//!   deadlines, a worker pool with per-request queue-wait deadlines, and
//!   graceful shutdown with metrics and trace artefact flushing,
//! - [`client`] — a synchronous client (the `f3m client` subcommand).
//!
//! The resident corpus itself lives in [`f3m_core::corpus`]; this crate
//! is the transport and scheduling shell around it.

pub mod client;
pub mod conn;
pub mod poll;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use poll::PollerKind;
pub use protocol::{Request, RequestEnvelope, Response};
pub use queue::BoundedQueue;
pub use server::{serve, Admission, AdmissionConfig, LoadSnapshot, ServeConfig, Server};
