//! A bounded MPMC queue: the backpressure point of the daemon.
//!
//! Connection readers `try_push`; when the queue is at capacity they get
//! [`PushError::Full`] back immediately and answer the client with a
//! `busy` frame — the queue never grows beyond its bound and a slow
//! worker pool cannot accumulate unbounded request memory. Workers block
//! in [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! *and* drained, which is exactly the graceful-shutdown contract:
//! close, then every already-accepted request still gets its response.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — caller should answer `busy`.
    Full,
    /// Shutting down — no new work accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Highest depth ever observed (exported as a server metric).
    hwm: usize,
}

/// Fixed-capacity FIFO shared by connection readers and the worker pool.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false, hwm: 0 }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        s.hwm = s.hwm.max(s.items.len());
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is both
    /// closed and empty (worker exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Stops accepting new items; blocked `pop`s drain the remainder and
    /// then return `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth observed since creation.
    pub fn high_water_mark(&self) -> usize {
        self.state.lock().unwrap().hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo_and_full_rejects() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.high_water_mark(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    loop {
                        match q.try_push(p * 1000 + i) {
                            Ok(()) => break,
                            Err(PushError::Full) => std::thread::yield_now(),
                            Err(PushError::Closed) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        // Wait for the consumers to drain before closing so no item is
        // stranded between a pop and the close.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        assert!(q.high_water_mark() <= 8);
    }
}
