//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! ## Framing
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by exactly that many bytes of UTF-8 JSON. Lengths above
//! [`MAX_FRAME`] are rejected before any payload is read, so a malicious
//! or corrupt prefix cannot make the server allocate unboundedly.
//!
//! ## Grammar
//!
//! Requests are JSON objects dispatched on `"type"`:
//!
//! ```json
//! {"type":"ingest","ir":"module \"m\" { ... }","name":"m2"}
//! {"type":"evict","name":"m"}
//! {"type":"query","module":"m","func":"f0_0","k":3,"if_epoch":7}
//! {"type":"update","module":"m","func":"f0_0","ir":"module \"p\" { ... }"}
//! {"type":"merge","strategy":"f3m","jobs":2}
//! {"type":"global_merge","jobs":2,"if_epoch":7}
//! {"type":"stats"}  {"type":"ping"}  {"type":"shutdown"}
//! {"type":"sleep","ms":100}
//! ```
//!
//! `update` replaces one resident function's body in place (no module
//! evict; only the changed function is re-fingerprinted and only its
//! band-collision neighborhood is invalidated); omitting `"ir"` makes it
//! a *touch* — re-fingerprint and invalidate without changing IR. A
//! `query` carrying `"if_epoch"` is answered with `superseded` instead
//! of candidates when the corpus epoch has moved past that value — the
//! incremental client's cheap way to notice its snapshot is stale.
//! `global_merge` runs the two-phase cross-module
//! [`GlobalMergePlanner`](f3m_core::GlobalMergePlanner) over the whole
//! resident corpus; it honours `"if_epoch"` with the same `superseded`
//! semantics as `query` (both before planning and after — a mutation
//! that lands while the planner runs supersedes the stale plan rather
//! than publishing it).
//!
//! Any request may carry `"id"` (an opaque integer echoed in the
//! response, for correlating pipelined requests) and `"deadline_ms"`
//! (maximum queue wait; expired requests answer an error instead of
//! occupying a worker). Responses mirror the request types (`ingested`,
//! `evicted`, `candidates`, `updated`, `report`, `stats`, `pong`,
//! `slept`, `bye`), plus `superseded` for epoch-conditional or cancelled
//! queries and three refusals:
//!
//! - `busy` — the bounded queue itself was full at enqueue time. Carries
//!   the observed `queue_depth` and a monotone `shed_seq` so a client
//!   (or a test) can order refusals and prove a retry-after-drain
//!   succeeded.
//! - `overloaded` — the admission controller refused *before* touching
//!   the queue (queue-depth or in-flight thresholds exceeded). Carries
//!   `queue_depth`, `in_flight`, `shed_seq` and a `retry_after_ms` hint.
//! - `error` — parse or handler failure, with a `message`.
//!
//! All response rendering uses fixed field order, so responses to the
//! same corpus state are byte-identical — the determinism tests compare
//! raw frames across `--jobs` settings.

use std::io::{Read, Write};

use f3m_core::corpus::{CorpusStats, EvictSummary, IngestSummary, QueryResult, UpdateSummary};
use f3m_trace::json::{self, escape, fmt_f64, Json};

/// Maximum frame payload size (64 MiB) — comfortably above any workload
/// module text, far below memory exhaustion.
pub const MAX_FRAME: u32 = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Transport error, including truncation mid-frame.
    Io(std::io::Error),
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME}")
            }
        }
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "payload exceeds u32")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary;
/// truncation mid-frame is an [`FrameError::Io`] with `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean close between frames shows up as EOF on the first byte.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..]).map_err(FrameError::Io)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

/// A request body.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a module (IR text). `name` overrides the module's own
    /// name as the corpus qualification prefix.
    Ingest { name: Option<String>, ir: String },
    /// Drop a resident module.
    Evict { name: String },
    /// Top-k candidates for one function (`func` set) or every function
    /// of a module (`func` absent). With `if_epoch` set, answered
    /// `superseded` when the corpus epoch no longer matches.
    Query { module: String, func: Option<String>, k: usize, if_epoch: Option<u64> },
    /// Replace one resident function's body (`ir` set) or merely touch
    /// it (`ir` absent): re-fingerprint, invalidate the band-collision
    /// neighborhood, leave the rest of the module resident.
    Update { module: String, func: String, ir: Option<String> },
    /// Run the full pass over the combined resident corpus.
    Merge { strategy: String, jobs: Option<usize> },
    /// Run the two-phase cross-module global merge planner over the
    /// resident corpus. With `if_epoch` set, answered `superseded` when
    /// the corpus epoch no longer matches (checked both before planning
    /// and again before publishing the result).
    GlobalMerge { jobs: Option<usize>, if_epoch: Option<u64> },
    Stats,
    Ping,
    /// Hold a worker for `ms` milliseconds (testing aid for backpressure
    /// and deadline behaviour).
    Sleep { ms: u64 },
    /// Graceful shutdown: drain the queue, flush metrics, exit 0.
    Shutdown,
}

impl Request {
    /// The wire `"type"` tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Ingest { .. } => "ingest",
            Request::Evict { .. } => "evict",
            Request::Query { .. } => "query",
            Request::Update { .. } => "update",
            Request::Merge { .. } => "merge",
            Request::GlobalMerge { .. } => "global_merge",
            Request::Stats => "stats",
            Request::Ping => "ping",
            Request::Sleep { .. } => "sleep",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its per-request metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestEnvelope {
    /// Echoed verbatim in the response, if present.
    pub id: Option<u64>,
    /// Maximum time the request may wait in the queue before being
    /// answered with an error instead of processed.
    pub deadline_ms: Option<u64>,
    pub body: Request,
}

impl RequestEnvelope {
    /// Bare envelope (no id, no deadline).
    pub fn of(body: Request) -> RequestEnvelope {
        RequestEnvelope { id: None, deadline_ms: None, body }
    }
}

/// Default `k` for `query` requests that omit it.
pub const DEFAULT_QUERY_K: usize = 3;

/// Parses a request frame payload.
///
/// # Errors
///
/// Returns a message naming the first syntax or schema problem; the
/// server relays it in an `error` response rather than dropping the
/// connection.
pub fn parse_request(payload: &[u8]) -> Result<RequestEnvelope, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
    let v = json::parse(text)?;
    let ty = v.get("type").and_then(Json::as_str).ok_or("missing `type` field")?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!("`{ty}` request: missing string field `{name}`"))
    };
    let opt_str = |name: &str| v.get(name).and_then(Json::as_str).map(str::to_string);
    let opt_u64 = |name: &str| -> Result<Option<u64>, String> {
        match v.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or(format!("`{ty}` request: `{name}` must be a non-negative integer")),
        }
    };
    let body = match ty {
        "ingest" => Request::Ingest { name: opt_str("name"), ir: str_field("ir")? },
        "evict" => Request::Evict { name: str_field("name")? },
        "query" => Request::Query {
            module: str_field("module")?,
            func: opt_str("func"),
            k: opt_u64("k")?.map(|k| k as usize).unwrap_or(DEFAULT_QUERY_K),
            if_epoch: opt_u64("if_epoch")?,
        },
        "update" => Request::Update {
            module: str_field("module")?,
            func: str_field("func")?,
            ir: opt_str("ir"),
        },
        "merge" => Request::Merge {
            strategy: opt_str("strategy").unwrap_or_else(|| "f3m".to_string()),
            jobs: opt_u64("jobs")?.map(|j| j as usize),
        },
        "global_merge" => Request::GlobalMerge {
            jobs: opt_u64("jobs")?.map(|j| j as usize),
            if_epoch: opt_u64("if_epoch")?,
        },
        "stats" => Request::Stats,
        "ping" => Request::Ping,
        "sleep" => Request::Sleep {
            ms: opt_u64("ms")?.ok_or("`sleep` request: missing `ms`")?,
        },
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown request type `{other}`")),
    };
    Ok(RequestEnvelope { id: opt_u64("id")?, deadline_ms: opt_u64("deadline_ms")?, body })
}

/// Renders a request envelope (the client half of the round trip).
pub fn render_request(env: &RequestEnvelope) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"type\":\"{}\"", env.body.type_name()));
    if let Some(id) = env.id {
        out.push_str(&format!(",\"id\":{id}"));
    }
    if let Some(d) = env.deadline_ms {
        out.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    match &env.body {
        Request::Ingest { name, ir } => {
            if let Some(n) = name {
                out.push_str(&format!(",\"name\":\"{}\"", escape(n)));
            }
            out.push_str(&format!(",\"ir\":\"{}\"", escape(ir)));
        }
        Request::Evict { name } => out.push_str(&format!(",\"name\":\"{}\"", escape(name))),
        Request::Query { module, func, k, if_epoch } => {
            out.push_str(&format!(",\"module\":\"{}\"", escape(module)));
            if let Some(f) = func {
                out.push_str(&format!(",\"func\":\"{}\"", escape(f)));
            }
            out.push_str(&format!(",\"k\":{k}"));
            if let Some(e) = if_epoch {
                out.push_str(&format!(",\"if_epoch\":{e}"));
            }
        }
        Request::Update { module, func, ir } => {
            out.push_str(&format!(
                ",\"module\":\"{}\",\"func\":\"{}\"",
                escape(module),
                escape(func)
            ));
            if let Some(text) = ir {
                out.push_str(&format!(",\"ir\":\"{}\"", escape(text)));
            }
        }
        Request::Merge { strategy, jobs } => {
            out.push_str(&format!(",\"strategy\":\"{}\"", escape(strategy)));
            if let Some(j) = jobs {
                out.push_str(&format!(",\"jobs\":{j}"));
            }
        }
        Request::GlobalMerge { jobs, if_epoch } => {
            if let Some(j) = jobs {
                out.push_str(&format!(",\"jobs\":{j}"));
            }
            if let Some(e) = if_epoch {
                out.push_str(&format!(",\"if_epoch\":{e}"));
            }
        }
        Request::Sleep { ms } => out.push_str(&format!(",\"ms\":{ms}")),
        Request::Stats | Request::Ping | Request::Shutdown => {}
    }
    out.push('}');
    out
}

/// Server-side request/work counters included in `stats` responses and
/// the exported metrics.
///
/// Everything here except `readiness_wakeups` is a pure function of the
/// request history for a synchronous single-connection client, so the
/// `stats` rendering below is part of the daemon's determinism key (the
/// byte-identity tests compare raw stats frames across `--jobs`
/// settings). `readiness_wakeups` counts poller returns — pure timing —
/// and is therefore exported only through the wall-clock-tagged metrics
/// artefact, never rendered into a response.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Completed requests by type, in the fixed order of
    /// [`REQUEST_TYPES`].
    pub requests: [u64; REQUEST_TYPES.len()],
    /// Requests refused with `busy` (bounded queue full).
    pub rejects_busy: u64,
    /// Requests expired in the queue past their `deadline_ms`.
    pub rejects_deadline: u64,
    /// Requests answered with an `error` response (parse or handler).
    pub errors: u64,
    /// Highest queue depth observed.
    pub queue_depth_hwm: u64,
    /// Currently open connections.
    pub conns_open: u64,
    /// Highest simultaneous connection count observed.
    pub conns_open_hwm: u64,
    /// Connections accepted over the daemon's lifetime.
    pub conns_total: u64,
    /// Complete frames reassembled from the byte stream.
    pub frames_reassembled: u64,
    /// Requests refused with `overloaded` by the admission controller.
    pub sheds: u64,
    /// Connections dropped by the read-deadline (slowloris) or idle
    /// sweeps.
    pub slow_closes: u64,
    /// Poller wakeups that delivered at least one readiness event.
    /// Timing-dependent: metrics artefact only, never in `stats`.
    pub readiness_wakeups: u64,
    /// Monotone sequence number shared by `busy` and `overloaded`
    /// refusals (so interleaved refusals are totally ordered).
    pub shed_seq: u64,
}

/// Wire request types in counter order.
pub const REQUEST_TYPES: &[&str] = &[
    "ingest",
    "evict",
    "query",
    "update",
    "merge",
    "global_merge",
    "stats",
    "ping",
    "sleep",
    "shutdown",
];

impl ServerCounters {
    /// Bumps the per-type completion counter.
    pub fn count_request(&mut self, type_name: &str) {
        if let Some(i) = REQUEST_TYPES.iter().position(|t| *t == type_name) {
            self.requests[i] += 1;
        }
    }
}

/// A response body. Rendering (see [`render_response`]) uses fixed field
/// order and deterministic number formatting.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Ingested(IngestSummary),
    Evicted(EvictSummary),
    Updated(UpdateSummary),
    Candidates { epoch: u64, results: Vec<QueryResult> },
    /// A query pinned at epoch `started` was overtaken by a mutation (or
    /// its `if_epoch` precondition already failed); `epoch` is current.
    Superseded { started: u64, epoch: u64 },
    /// `report` is the pre-rendered `MergeReport::to_json` object (spliced
    /// verbatim; the pass serializer already emits deterministic JSON).
    Report { epoch: u64, report: String },
    /// Boxed: the two stat blocks dwarf every other variant, and
    /// responses spend their life behind one match before rendering.
    Stats { corpus: Box<CorpusStats>, server: Box<ServerCounters> },
    Pong,
    Slept { ms: u64 },
    Bye,
    /// The bounded queue was full (or closed during shutdown) when this
    /// request reached it.
    Busy { queue_depth: u64, shed_seq: u64 },
    /// The admission controller refused before the queue was attempted:
    /// queue-depth or in-flight thresholds exceeded, or this connection
    /// has too many requests in flight.
    Overloaded { queue_depth: u64, in_flight: u64, shed_seq: u64, retry_after_ms: u64 },
    Error { message: String },
}

impl Response {
    /// The wire `"type"` tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            Response::Ingested(_) => "ingested",
            Response::Evicted(_) => "evicted",
            Response::Updated(_) => "updated",
            Response::Candidates { .. } => "candidates",
            Response::Superseded { .. } => "superseded",
            Response::Report { .. } => "report",
            Response::Stats { .. } => "stats",
            Response::Pong => "pong",
            Response::Slept { .. } => "slept",
            Response::Bye => "bye",
            Response::Busy { .. } => "busy",
            Response::Overloaded { .. } => "overloaded",
            Response::Error { .. } => "error",
        }
    }
}

/// Renders a response, echoing the request `id` when present.
pub fn render_response(id: Option<u64>, resp: &Response) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"type\":\"{}\"", resp.type_name()));
    if let Some(id) = id {
        out.push_str(&format!(",\"id\":{id}"));
    }
    match resp {
        Response::Ingested(s) => out.push_str(&format!(
            ",\"module\":\"{}\",\"functions\":{},\"skipped\":{},\"epoch\":{}",
            escape(&s.module),
            s.functions,
            s.skipped,
            s.epoch
        )),
        Response::Evicted(s) => out.push_str(&format!(
            ",\"module\":\"{}\",\"functions\":{},\"epoch\":{}",
            escape(&s.module),
            s.functions,
            s.epoch
        )),
        Response::Updated(s) => out.push_str(&format!(
            ",\"module\":\"{}\",\"func\":\"{}\",\"epoch\":{},\"changed\":{},\
             \"funcs_invalidated\":{}",
            escape(&s.module),
            escape(&s.func),
            s.epoch,
            s.changed,
            s.funcs_invalidated
        )),
        Response::Superseded { started, epoch } => {
            out.push_str(&format!(",\"started\":{started},\"epoch\":{epoch}"));
        }
        Response::Candidates { epoch, results } => {
            out.push_str(&format!(",\"epoch\":{epoch},\"results\":["));
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"func\":\"{}\",\"candidates\":[", escape(&r.func)));
                for (j, c) in r.candidates.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"func\":\"{}\",\"similarity\":{}}}",
                        escape(&c.func),
                        fmt_f64(c.similarity)
                    ));
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        Response::Report { epoch, report } => {
            out.push_str(&format!(",\"epoch\":{epoch},\"report\":{report}"));
        }
        Response::Stats { corpus, server } => {
            out.push_str(&format!(
                ",\"corpus\":{{\"epoch\":{},\"modules_live\":{},\"modules_total\":{},\
                 \"functions_live\":{},\"entries_total\":{},\"index_buckets\":{},\
                 \"index_max_bucket\":{},\"memo_hits\":{},\"memo_misses\":{},\
                 \"funcs_invalidated\":{},\"queries_superseded\":{},\
                 \"resident_pager\":{},\"resident_bytes\":{},\"shard_faults\":{},\
                 \"shard_spills\":{},\"shards\":[",
                corpus.epoch,
                corpus.modules_live,
                corpus.modules_total,
                corpus.functions_live,
                corpus.entries_total,
                corpus.index_buckets,
                corpus.index_max_bucket,
                corpus.memo_hits,
                corpus.memo_misses,
                corpus.funcs_invalidated,
                corpus.queries_superseded,
                match corpus.resident_pager {
                    Some(p) => format!("\"{p}\""),
                    None => "null".to_string(),
                },
                corpus.resident_bytes,
                corpus.shard_faults,
                corpus.shard_spills
            ));
            for (i, s) in corpus.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"num_buckets\":{},\"max_bucket_size\":{},\"entries\":{}}}",
                    s.num_buckets, s.max_bucket_size, s.entries
                ));
            }
            out.push_str("]},\"server\":{\"requests\":{");
            for (i, t) in REQUEST_TYPES.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{t}\":{}", server.requests[i]));
            }
            out.push_str(&format!(
                "}},\"rejects_busy\":{},\"rejects_deadline\":{},\"errors\":{},\
                 \"queue_depth_hwm\":{},\"conns_open\":{},\"conns_open_hwm\":{},\
                 \"conns_total\":{},\"frames_reassembled\":{},\"sheds\":{},\
                 \"slow_closes\":{}}}",
                server.rejects_busy,
                server.rejects_deadline,
                server.errors,
                server.queue_depth_hwm,
                server.conns_open,
                server.conns_open_hwm,
                server.conns_total,
                server.frames_reassembled,
                server.sheds,
                server.slow_closes
            ));
        }
        Response::Slept { ms } => out.push_str(&format!(",\"ms\":{ms}")),
        Response::Busy { queue_depth, shed_seq } => {
            out.push_str(&format!(",\"queue_depth\":{queue_depth},\"shed_seq\":{shed_seq}"));
        }
        Response::Overloaded { queue_depth, in_flight, shed_seq, retry_after_ms } => {
            out.push_str(&format!(
                ",\"queue_depth\":{queue_depth},\"in_flight\":{in_flight},\
                 \"shed_seq\":{shed_seq},\"retry_after_ms\":{retry_after_ms}"
            ));
        }
        Response::Error { message } => {
            out.push_str(&format!(",\"message\":\"{}\"", escape(message)));
        }
        Response::Pong | Response::Bye => {}
    }
    out.push('}');
    out
}

/// Parses a response frame into generic [`Json`] (clients pick fields
/// out of the document rather than reconstructing typed values).
pub fn parse_response(payload: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
    json::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_render_parse_round_trips_every_type() {
        let reqs = [
            RequestEnvelope {
                id: Some(7),
                deadline_ms: Some(250),
                body: Request::Ingest {
                    name: Some("m2".into()),
                    ir: "module \"m\" {\n}\n".into(),
                },
            },
            RequestEnvelope::of(Request::Ingest { name: None, ir: "x".into() }),
            RequestEnvelope::of(Request::Evict { name: "m".into() }),
            RequestEnvelope {
                id: Some(1),
                deadline_ms: None,
                body: Request::Query {
                    module: "m".into(),
                    func: Some("f".into()),
                    k: 5,
                    if_epoch: None,
                },
            },
            RequestEnvelope::of(Request::Query {
                module: "m".into(),
                func: None,
                k: 3,
                if_epoch: Some(12),
            }),
            RequestEnvelope::of(Request::Update {
                module: "m".into(),
                func: "f".into(),
                ir: Some("module \"p\" {\n}\n".into()),
            }),
            RequestEnvelope::of(Request::Update { module: "m".into(), func: "f".into(), ir: None }),
            RequestEnvelope::of(Request::Merge { strategy: "f3m".into(), jobs: Some(2) }),
            RequestEnvelope::of(Request::Merge { strategy: "hyfm".into(), jobs: None }),
            RequestEnvelope::of(Request::GlobalMerge { jobs: Some(2), if_epoch: Some(9) }),
            RequestEnvelope::of(Request::GlobalMerge { jobs: None, if_epoch: None }),
            RequestEnvelope::of(Request::Stats),
            RequestEnvelope::of(Request::Ping),
            RequestEnvelope::of(Request::Sleep { ms: 12 }),
            RequestEnvelope::of(Request::Shutdown),
        ];
        for req in reqs {
            let text = render_request(&req);
            let parsed = parse_request(text.as_bytes()).unwrap();
            assert_eq!(parsed, req, "round trip failed for {text}");
        }
    }

    #[test]
    fn query_k_defaults_when_omitted() {
        let env = parse_request(br#"{"type":"query","module":"m"}"#).unwrap();
        assert_eq!(
            env.body,
            Request::Query { module: "m".into(), func: None, k: DEFAULT_QUERY_K, if_epoch: None }
        );
    }

    #[test]
    fn update_without_ir_is_a_touch() {
        let env = parse_request(br#"{"type":"update","module":"m","func":"f"}"#).unwrap();
        assert_eq!(env.body, Request::Update { module: "m".into(), func: "f".into(), ir: None });
        assert!(parse_request(br#"{"type":"update","module":"m"}"#).is_err(), "func is required");
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"type\":\"warp\"}",
            b"{\"type\":\"evict\"}",
            b"{\"type\":\"query\"}",
            b"{\"type\":\"sleep\"}",
            b"{\"type\":\"query\",\"module\":\"m\",\"k\":-1}",
            b"{\"type\":\"ping\",\"id\":1.5}",
            b"\xff\xfe",
        ] {
            assert!(parse_request(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn response_rendering_round_trips_through_json() {
        use f3m_core::corpus::RankedCandidate;
        let resps = [
            Response::Ingested(IngestSummary {
                module: "m".into(),
                functions: 9,
                skipped: 1,
                epoch: 3,
            }),
            Response::Evicted(EvictSummary { module: "m".into(), functions: 9, epoch: 4 }),
            Response::Updated(UpdateSummary {
                module: "m".into(),
                func: "f".into(),
                epoch: 6,
                changed: true,
                funcs_invalidated: 4,
            }),
            Response::Superseded { started: 5, epoch: 7 },
            Response::Candidates {
                epoch: 4,
                results: vec![QueryResult {
                    func: "m.f".into(),
                    candidates: vec![RankedCandidate { func: "m.g".into(), similarity: 0.75 }],
                }],
            },
            Response::Report { epoch: 2, report: "{\"stats\":{},\"attempts\":[]}".into() },
            Response::Stats {
                corpus: Box::new(CorpusStats {
                    epoch: 5,
                    modules_live: 2,
                    modules_total: 3,
                    functions_live: 18,
                    entries_total: 27,
                    index_buckets: 40,
                    index_max_bucket: 4,
                    shards: vec![Default::default(); 2],
                    memo_hits: 11,
                    memo_misses: 5,
                    funcs_invalidated: 3,
                    queries_superseded: 1,
                    resident_pager: Some("mmap"),
                    resident_bytes: 4096,
                    shard_faults: 2,
                    shard_spills: 1,
                }),
                server: Box::new(ServerCounters { rejects_busy: 1, ..Default::default() }),
            },
            Response::Pong,
            Response::Slept { ms: 5 },
            Response::Bye,
            Response::Busy { queue_depth: 7, shed_seq: 3 },
            Response::Overloaded { queue_depth: 8, in_flight: 12, shed_seq: 4, retry_after_ms: 25 },
            Response::Error { message: "boom \"quoted\"".into() },
        ];
        for resp in &resps {
            let text = render_response(Some(9), resp);
            let v = parse_response(text.as_bytes()).unwrap();
            assert_eq!(v.get("type").and_then(Json::as_str), Some(resp.type_name()), "{text}");
            assert_eq!(v.get("id").and_then(Json::as_u64), Some(9), "{text}");
        }
        // Spot-check nested payloads survive.
        let cand = render_response(None, &resps[4]);
        let v = parse_response(cand.as_bytes()).unwrap();
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("func").and_then(Json::as_str), Some("m.f"));
        let c0 = &results[0].get("candidates").and_then(Json::as_array).unwrap()[0];
        assert_eq!(c0.get("similarity").and_then(Json::as_f64), Some(0.75));
        let up = render_response(None, &resps[2]);
        let v = parse_response(up.as_bytes()).unwrap();
        assert_eq!(v.get("changed").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("funcs_invalidated").and_then(Json::as_u64), Some(4));
        let sup = render_response(None, &resps[3]);
        let v = parse_response(sup.as_bytes()).unwrap();
        assert_eq!(v.get("started").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(7));
        let stats = render_response(None, &resps[6]);
        let v = parse_response(stats.as_bytes()).unwrap();
        let corpus = v.get("corpus").unwrap();
        assert_eq!(corpus.get("memo_hits").and_then(Json::as_u64), Some(11));
        assert_eq!(corpus.get("queries_superseded").and_then(Json::as_u64), Some(1));
        assert_eq!(corpus.get("resident_pager").and_then(Json::as_str), Some("mmap"));
        assert_eq!(corpus.get("resident_bytes").and_then(Json::as_u64), Some(4096));
        assert_eq!(corpus.get("shard_faults").and_then(Json::as_u64), Some(2));
        assert_eq!(corpus.get("shard_spills").and_then(Json::as_u64), Some(1));
        let err = render_response(None, &resps[12]);
        let v = parse_response(err.as_bytes()).unwrap();
        assert_eq!(v.get("message").and_then(Json::as_str), Some("boom \"quoted\""));
        // Refusals carry their observability payloads.
        let busy = render_response(None, &resps[10]);
        let v = parse_response(busy.as_bytes()).unwrap();
        assert_eq!(v.get("queue_depth").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("shed_seq").and_then(Json::as_u64), Some(3));
        let over = render_response(None, &resps[11]);
        let v = parse_response(over.as_bytes()).unwrap();
        assert_eq!(v.get("in_flight").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_u64), Some(25));
        // New server counters ride the stats response (deterministic
        // subset only — readiness_wakeups is timing and must NOT leak).
        let stats = render_response(None, &resps[6]);
        for key in
            ["conns_open", "conns_open_hwm", "conns_total", "frames_reassembled", "sheds",
             "slow_closes"]
        {
            assert!(stats.contains(&format!("\"{key}\":")), "stats missing {key}: {stats}");
        }
        assert!(
            !stats.contains("readiness_wakeups"),
            "timing-dependent counter leaked into the deterministic stats response"
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversized_and_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"type\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"{}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"type\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{}");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at boundary");

        // Oversized prefix: rejected before any payload allocation.
        let huge = (MAX_FRAME + 1).to_be_bytes();
        match read_frame(&mut &huge[..]) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }

        // Truncated payload: io error, not a hang or panic.
        let mut trunc = Vec::new();
        trunc.extend_from_slice(&10u32.to_be_bytes());
        trunc.extend_from_slice(b"abc");
        match read_frame(&mut &trunc[..]) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected Io, got {other:?}"),
        }

        // Truncated length prefix itself.
        let stub = [0u8, 0];
        assert!(matches!(read_frame(&mut &stub[..]), Err(FrameError::Io(_))));
    }
}
