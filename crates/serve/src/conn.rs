//! Per-connection state machine: non-blocking frame reassembly on the
//! way in, buffered writes on the way out, and the bookkeeping the event
//! loop's fairness and deadline policies read.
//!
//! A connection moves through a small set of states, all encoded in
//! plain fields rather than an enum so partially-overlapping conditions
//! (read side closed while responses are still flushing) compose:
//!
//! ```text
//!             bytes in                frame complete
//!   [idle] ──────────────▶ [reassembling] ───────────▶ frames queued
//!      ▲                        │ read_deadline                │
//!      │                        ▼                              ▼
//!      │                  [slow-closed]                  admission →
//!      │                                                 queue / shed
//!      │   outbox drained, in_flight == 0                      │
//!      └───────────────────────────────────────◀── [flushing] ◀┘
//! ```
//!
//! The reassembly buffer is bounded: a frame's length prefix is vetted
//! against `MAX_FRAME` before its payload accumulates, and `fill` stops
//! reading once a whole oversized-free frame could be buffered, so one
//! connection can never hold more than ~one maximum frame plus a read
//! quantum of kernel-delivered pipeline.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Cap on bytes a single `fill` call may leave unparsed — one maximal
/// frame plus its prefix. Pipelined requests beyond it stay in the
/// kernel buffer until the parser catches up (which is also what keeps
/// per-connection memory bounded under flood).
fn read_buffer_cap(max_frame: u32) -> usize {
    max_frame as usize + 4
}

/// What `fill` observed on the socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// Socket drained into the buffer (possibly zero new bytes).
    Progress,
    /// Orderly EOF from the peer: no more inbound frames will arrive.
    Eof,
    /// Transport error: the connection is dead.
    Broken,
}

/// One reassembled inbound frame, or the reason there isn't one.
#[derive(Debug, PartialEq, Eq)]
pub enum TakeFrame {
    /// Not enough buffered bytes for a complete frame yet.
    Pending,
    /// A complete payload (length prefix already stripped).
    Frame(Vec<u8>),
    /// The length prefix exceeds the cap; the stream can never
    /// resynchronize, so the caller answers and closes.
    Oversized(u32),
}

/// Per-connection state owned by the event loop.
pub struct Connection {
    pub stream: TcpStream,
    /// Unparsed inbound bytes (length prefixes and payloads).
    buf: VecDeque<u8>,
    /// Rendered-but-unsent response bytes.
    outbox: Vec<u8>,
    /// How much of `outbox` has reached the kernel.
    sent: usize,
    /// Requests admitted from this connection and not yet answered.
    pub in_flight: usize,
    /// Sheds charged to this connection (fairness accounting).
    pub sheds: u64,
    /// Set when the peer half-closed or errored: no more reads, flush
    /// what's pending, then reap.
    pub read_closed: bool,
    /// Set when the server decided to drop the peer after the current
    /// outbox flushes (oversized frame, shed-and-close policies).
    pub close_after_flush: bool,
    /// When `close_after_flush` was first requested — bounds how long a
    /// peer that refuses to read its final response can keep the
    /// connection alive.
    pub closing_since: Option<Instant>,
    /// Whether the poller currently has writable interest registered.
    pub writable_interest: bool,
    /// Last moment bytes moved in either direction (idle tracking).
    pub last_activity: Instant,
    /// When the currently-buffered *incomplete* frame started pending —
    /// the slowloris clock. `None` while the buffer holds no partial
    /// frame.
    pub partial_since: Option<Instant>,
}

impl Connection {
    pub fn new(stream: TcpStream, now: Instant) -> Connection {
        Connection {
            stream,
            buf: VecDeque::new(),
            outbox: Vec::new(),
            sent: 0,
            in_flight: 0,
            sheds: 0,
            read_closed: false,
            close_after_flush: false,
            closing_since: None,
            writable_interest: false,
            last_activity: now,
            partial_since: None,
        }
    }

    /// Marks the connection for drop-after-flush and starts the clock
    /// that bounds how long the final flush may take.
    pub fn request_close(&mut self, now: Instant) {
        self.close_after_flush = true;
        if self.closing_since.is_none() {
            self.closing_since = Some(now);
        }
    }

    /// Drains the socket into the reassembly buffer without blocking.
    pub fn fill(&mut self, scratch: &mut [u8], max_frame: u32, now: Instant) -> FillOutcome {
        let cap = read_buffer_cap(max_frame);
        loop {
            if self.buf.len() >= cap {
                return FillOutcome::Progress;
            }
            match self.stream.read(scratch) {
                Ok(0) => return FillOutcome::Eof,
                Ok(n) => {
                    self.buf.extend(&scratch[..n]);
                    self.last_activity = now;
                    // A fresh partial frame starts its slowloris clock at
                    // first byte; progress on an existing one does not
                    // reset it (that is the whole defense).
                    if self.partial_since.is_none() {
                        self.partial_since = Some(now);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return FillOutcome::Progress
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FillOutcome::Broken,
            }
        }
    }

    /// Pops one complete frame off the reassembly buffer.
    pub fn take_frame(&mut self, max_frame: u32, now: Instant) -> TakeFrame {
        if self.buf.len() < 4 {
            if self.buf.is_empty() {
                self.partial_since = None;
            }
            return TakeFrame::Pending;
        }
        let mut prefix = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            prefix[i] = *b;
        }
        let len = u32::from_be_bytes(prefix);
        if len > max_frame {
            return TakeFrame::Oversized(len);
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return TakeFrame::Pending;
        }
        self.buf.drain(..4);
        let payload: Vec<u8> = self.buf.drain(..len as usize).collect();
        // Frame completed: restart (or clear) the partial clock for
        // whatever trails it.
        self.partial_since = if self.buf.is_empty() { None } else { Some(now) };
        TakeFrame::Frame(payload)
    }

    /// Whether unparsed bytes remain (complete or partial frames).
    pub fn has_buffered_input(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Whether the buffer holds at least one complete frame ready to
    /// parse (used to distinguish "pipelined backlog" from "slowloris
    /// dribble" in the deadline sweep).
    pub fn has_complete_frame(&self, max_frame: u32) -> bool {
        if self.buf.len() < 4 {
            return false;
        }
        let mut prefix = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            prefix[i] = *b;
        }
        let len = u32::from_be_bytes(prefix);
        len > max_frame || self.buf.len() >= 4 + len as usize
    }

    /// Queues one response frame (length prefix + payload) for writing.
    pub fn push_response(&mut self, payload: &[u8]) {
        let len = payload.len() as u32;
        self.outbox.extend_from_slice(&len.to_be_bytes());
        self.outbox.extend_from_slice(payload);
    }

    /// Flushes as much of the outbox as the socket accepts. `Ok(true)`
    /// means fully drained; `Err` means the peer is gone.
    pub fn flush(&mut self, now: Instant) -> std::io::Result<bool> {
        while self.sent < self.outbox.len() {
            match self.stream.write(&self.outbox[self.sent..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.sent += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.outbox.clear();
        self.sent = 0;
        Ok(true)
    }

    /// Whether every queued response byte has reached the kernel.
    pub fn flushed(&self) -> bool {
        self.sent == self.outbox.len()
    }

    /// A connection is reapable when its read side is finished, nothing
    /// is owed to it, and nothing is waiting to be written.
    pub fn reapable(&self) -> bool {
        self.read_closed && self.in_flight == 0 && self.flushed() && !self.has_buffered_input()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    const MAX: u32 = 1 << 20;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        (Connection::new(server_side, Instant::now()), peer)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn reassembles_frames_split_at_every_boundary() {
        let (mut conn, mut peer) = pair();
        let wire = [frame(b"{\"type\":\"ping\"}"), frame(b"{}")].concat();
        let mut scratch = vec![0u8; 4096];
        // Dribble one byte at a time — worst-case fragmentation.
        for b in &wire {
            use std::io::Write;
            peer.write_all(&[*b]).unwrap();
            peer.flush().unwrap();
            // Wait for the byte to land server-side.
            let deadline = Instant::now() + std::time::Duration::from_secs(5);
            let before = conn.buf.len();
            while conn.buf.len() == before {
                assert_eq!(conn.fill(&mut scratch, MAX, Instant::now()), FillOutcome::Progress);
                assert!(Instant::now() < deadline, "byte never arrived");
            }
        }
        let now = Instant::now();
        assert_eq!(conn.take_frame(MAX, now), TakeFrame::Frame(b"{\"type\":\"ping\"}".to_vec()));
        assert_eq!(conn.take_frame(MAX, now), TakeFrame::Frame(b"{}".to_vec()));
        assert_eq!(conn.take_frame(MAX, now), TakeFrame::Pending);
        assert!(conn.partial_since.is_none(), "empty buffer clears the partial clock");
    }

    #[test]
    fn oversized_prefix_is_flagged_before_payload_arrives() {
        let (mut conn, mut peer) = pair();
        use std::io::Write;
        peer.write_all(&(MAX + 1).to_be_bytes()).unwrap();
        peer.flush().unwrap();
        let mut scratch = vec![0u8; 4096];
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while conn.buf.len() < 4 {
            conn.fill(&mut scratch, MAX, Instant::now());
            assert!(Instant::now() < deadline);
        }
        assert_eq!(conn.take_frame(MAX, Instant::now()), TakeFrame::Oversized(MAX + 1));
    }

    #[test]
    fn partial_clock_tracks_incomplete_frames_only() {
        let (mut conn, mut peer) = pair();
        use std::io::Write;
        let mut scratch = vec![0u8; 4096];

        // Half a frame: clock starts.
        let full = frame(b"{\"type\":\"ping\"}");
        peer.write_all(&full[..6]).unwrap();
        peer.flush().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while conn.buf.len() < 6 {
            conn.fill(&mut scratch, MAX, Instant::now());
            assert!(Instant::now() < deadline);
        }
        assert_eq!(conn.take_frame(MAX, Instant::now()), TakeFrame::Pending);
        let started = conn.partial_since.expect("partial frame starts the clock");

        // More dribble does NOT reset the clock.
        peer.write_all(&full[6..8]).unwrap();
        peer.flush().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while conn.buf.len() < 8 {
            conn.fill(&mut scratch, MAX, Instant::now());
            assert!(Instant::now() < deadline);
        }
        assert_eq!(conn.partial_since, Some(started), "dribble must not reset the clock");

        // Completing the frame clears it.
        peer.write_all(&full[8..]).unwrap();
        peer.flush().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while conn.buf.len() < full.len() {
            conn.fill(&mut scratch, MAX, Instant::now());
            assert!(Instant::now() < deadline);
        }
        assert!(matches!(conn.take_frame(MAX, Instant::now()), TakeFrame::Frame(_)));
        assert!(conn.partial_since.is_none());
    }

    #[test]
    fn eof_and_reapability() {
        let (mut conn, peer) = pair();
        drop(peer);
        let mut scratch = vec![0u8; 64];
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match conn.fill(&mut scratch, MAX, Instant::now()) {
                FillOutcome::Eof | FillOutcome::Broken => break,
                FillOutcome::Progress => assert!(Instant::now() < deadline, "EOF never seen"),
            }
        }
        conn.read_closed = true;
        assert!(conn.reapable());
        conn.in_flight = 1;
        assert!(!conn.reapable(), "owed responses keep the connection alive");
    }

    #[test]
    fn outbox_buffers_and_flushes() {
        let (mut conn, mut peer) = pair();
        peer.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        conn.push_response(b"{\"type\":\"pong\"}");
        conn.push_response(b"{\"type\":\"bye\"}");
        assert!(!conn.flushed());
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while !conn.flush(Instant::now()).unwrap() {
            assert!(Instant::now() < deadline);
        }
        assert!(conn.flushed());
        use std::io::Read;
        let mut got = Vec::new();
        let expect = [frame(b"{\"type\":\"pong\"}"), frame(b"{\"type\":\"bye\"}")].concat();
        let mut byte = [0u8; 256];
        while got.len() < expect.len() {
            let n = peer.read(&mut byte).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&byte[..n]);
        }
        assert_eq!(got, expect);
    }
}
