//! Flat memory model.
//!
//! One linear byte array serves globals and the stack. Addresses below
//! [`Memory::BASE`] are invalid (so null-pointer dereferences trap), and
//! function "addresses" live in a disjoint high region
//! ([`Memory::FUNC_SPACE`]) so indirect calls can be resolved.

use crate::trap::Trap;

/// Flat byte-addressed memory with bump allocation.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Next free address (bump pointer).
    top: u64,
    limit: u64,
}

impl Memory {
    /// Lowest valid data address; `0..BASE` traps (null page).
    pub const BASE: u64 = 0x1000;
    /// Function addresses are `FUNC_SPACE + func_index`.
    pub const FUNC_SPACE: u64 = 1 << 48;

    /// Creates a memory with the given capacity in bytes.
    pub fn new(limit: u64) -> Memory {
        Memory { bytes: Vec::new(), top: Self::BASE, limit: Self::BASE + limit }
    }

    /// Address of function `idx` in the function address space.
    pub fn func_addr(idx: usize) -> u64 {
        Self::FUNC_SPACE + idx as u64
    }

    /// Reverse of [`Memory::func_addr`].
    pub fn addr_to_func(addr: u64) -> Option<usize> {
        addr.checked_sub(Self::FUNC_SPACE).map(|i| i as usize)
    }

    /// Current bump pointer (used to roll back frames).
    pub fn watermark(&self) -> u64 {
        self.top
    }

    /// Rolls the bump pointer back to a previous watermark.
    pub fn rollback(&mut self, mark: u64) {
        debug_assert!(mark <= self.top);
        self.top = mark;
    }

    /// Allocates `size` bytes (8-byte aligned), zero-initialized.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::OutOfMemory`] if the limit would be exceeded.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let addr = self.top;
        let size = size.max(1).div_ceil(8) * 8;
        let new_top = addr.checked_add(size).ok_or(Trap::OutOfMemory)?;
        if new_top > self.limit {
            return Err(Trap::OutOfMemory);
        }
        self.top = new_top;
        let need = (new_top - Self::BASE) as usize;
        if self.bytes.len() < need {
            self.bytes.resize(need, 0);
        }
        // Always clear the allocation, including memory reused after a
        // frame rollback: uninitialized reads must observe deterministic
        // zeros regardless of execution history, or differential testing
        // of transformed modules (whose stack layouts differ) would flag
        // spurious mismatches.
        let start = (addr - Self::BASE) as usize;
        self.bytes[start..need].fill(0);
        Ok(addr)
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, Trap> {
        if addr < Self::BASE || addr.saturating_add(len) > self.top {
            return Err(Trap::MemoryFault { addr });
        }
        Ok((addr - Self::BASE) as usize)
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::MemoryFault`] on out-of-bounds access.
    pub fn read(&self, addr: u64, len: u64) -> Result<&[u8], Trap> {
        let off = self.check(addr, len)?;
        Ok(&self.bytes[off..off + len as usize])
    }

    /// Writes bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::MemoryFault`] on out-of-bounds access.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        let off = self.check(addr, data.len() as u64)?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads a little-endian unsigned integer of `len` (≤ 8) bytes.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    pub fn read_uint(&self, addr: u64, len: u64) -> Result<u64, Trap> {
        let bytes = self.read(addr, len)?;
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian unsigned integer of `len` (≤ 8) bytes.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    pub fn write_uint(&mut self, addr: u64, value: u64, len: u64) -> Result<(), Trap> {
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..len as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_round_trip() {
        let mut mem = Memory::new(1 << 16);
        let a = mem.alloc(16).unwrap();
        assert!(a >= Memory::BASE);
        mem.write_uint(a, 0xDEADBEEF, 8).unwrap();
        assert_eq!(mem.read_uint(a, 8).unwrap(), 0xDEADBEEF);
        mem.write_uint(a + 8, 0x42, 4).unwrap();
        assert_eq!(mem.read_uint(a + 8, 4).unwrap(), 0x42);
    }

    #[test]
    fn null_deref_traps() {
        let mem = Memory::new(1 << 16);
        assert!(matches!(mem.read_uint(0, 8), Err(Trap::MemoryFault { .. })));
        assert!(matches!(mem.read_uint(8, 4), Err(Trap::MemoryFault { .. })));
    }

    #[test]
    fn oob_read_traps() {
        let mut mem = Memory::new(1 << 16);
        let a = mem.alloc(8).unwrap();
        assert!(mem.read_uint(a + 8, 8).is_err(), "reading past allocation end");
    }

    #[test]
    fn out_of_memory_traps() {
        let mut mem = Memory::new(64);
        assert!(mem.alloc(32).is_ok());
        assert!(matches!(mem.alloc(64), Err(Trap::OutOfMemory)));
    }

    #[test]
    fn rollback_releases_stack() {
        let mut mem = Memory::new(128);
        let mark = mem.watermark();
        mem.alloc(64).unwrap();
        mem.rollback(mark);
        assert!(mem.alloc(64).is_ok(), "space reusable after rollback");
    }

    #[test]
    fn reused_stack_memory_is_rezeroed() {
        let mut mem = Memory::new(128);
        let mark = mem.watermark();
        let a = mem.alloc(8).unwrap();
        mem.write_uint(a, 0xFFFF_FFFF, 8).unwrap();
        mem.rollback(mark);
        let b = mem.alloc(8).unwrap();
        assert_eq!(a, b, "same slot reused");
        assert_eq!(mem.read_uint(b, 8).unwrap(), 0, "must not leak prior frame");
    }

    #[test]
    fn func_addr_round_trip() {
        let a = Memory::func_addr(17);
        assert_eq!(Memory::addr_to_func(a), Some(17));
        assert_eq!(Memory::addr_to_func(Memory::BASE), None);
    }

    #[test]
    fn alignment_is_eight_bytes() {
        let mut mem = Memory::new(1 << 12);
        let a = mem.alloc(1).unwrap();
        let b = mem.alloc(1).unwrap();
        assert_eq!((b - a) % 8, 0);
        assert!(b > a);
    }
}
