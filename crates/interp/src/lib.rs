//! # f3m-interp — IR interpreter with dynamic instruction counting
//!
//! Executes [`f3m_ir`] modules over a flat memory model. Used by the F3M
//! reproduction in two roles:
//!
//! - **differential testing**: a merged module must behave identically to
//!   the original module (same return values and `ext_sink` checksums),
//! - **Fig. 17**: merged functions carry guard/select overhead; the
//!   dynamic instruction count measures the runtime impact of merging
//!   without needing native codegen.
//!
//! External functions follow a naming convention: `ext_src*` are
//! deterministic pure value sources, `ext_sink*` accumulate a checksum.
//! Anything else traps, keeping workloads honest.

pub mod interp;
pub mod memory;
pub mod oracle;
pub mod trap;
pub mod value;

pub use interp::{Interpreter, Limits, Outcome};
pub use oracle::{observe, Observation};
pub use trap::Trap;
pub use value::Val;
