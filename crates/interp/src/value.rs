//! Runtime values.

use f3m_ir::types::{TypeId, TypeKind, TypeStore};
use f3m_ir::value::normalize_int;

/// A runtime value held in a register or memory cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Val {
    /// Integer of some width; payload normalized (sign-extended from the
    /// type's width).
    Int(i64),
    /// Floating-point value (used for both `f32` and `f64`; `f32`
    /// operations round through `f32`).
    Float(f64),
    /// Pointer (byte address in the interpreter's flat memory, or a
    /// function address in the function address space).
    Ptr(u64),
    /// Undefined value. Using it in arithmetic yields `Undef`; branching or
    /// addressing with it traps.
    Undef,
}

impl Val {
    /// The integer payload.
    ///
    /// # Errors
    ///
    /// Returns `None` if the value is not an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(x) => Some(x),
            _ => None,
        }
    }

    /// The float payload.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Val::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The pointer payload.
    pub fn as_ptr(self) -> Option<u64> {
        match self {
            Val::Ptr(x) => Some(x),
            _ => None,
        }
    }

    /// Folds the value into a 64-bit checksum (used by `ext_sink`).
    pub fn checksum(self) -> u64 {
        match self {
            Val::Int(x) => x as u64,
            Val::Float(f) => f.to_bits(),
            Val::Ptr(p) => p ^ 0x9E37_79B9_7F4A_7C15,
            Val::Undef => 0xDEAD_BEEF_DEAD_BEEF,
        }
    }

    /// Default zero value of a type.
    pub fn zero_of(ts: &TypeStore, ty: TypeId) -> Val {
        match ts.kind(ty) {
            TypeKind::Int(_) => Val::Int(0),
            TypeKind::F32 | TypeKind::F64 => Val::Float(0.0),
            TypeKind::Ptr => Val::Ptr(0),
            _ => Val::Undef,
        }
    }

    /// Normalizes an integer value to the width of `ty`.
    pub fn normalize(self, ts: &TypeStore, ty: TypeId) -> Val {
        match (self, ts.int_bits(ty)) {
            (Val::Int(x), Some(bits)) => Val::Int(normalize_int(x, bits)),
            _ => self,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Val::Int(3).as_int(), Some(3));
        assert_eq!(Val::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Val::Ptr(8).as_ptr(), Some(8));
        assert_eq!(Val::Int(3).as_float(), None);
        assert_eq!(Val::Undef.as_int(), None);
    }

    #[test]
    fn normalize_wraps() {
        let mut ts = TypeStore::new();
        let i8t = ts.int(8);
        assert_eq!(Val::Int(300).normalize(&ts, i8t), Val::Int(44));
        assert_eq!(Val::Int(200).normalize(&ts, i8t), Val::Int(-56));
    }

    #[test]
    fn checksums_are_stable_and_distinct() {
        assert_ne!(Val::Int(1).checksum(), Val::Int(2).checksum());
        assert_eq!(Val::Float(1.5).checksum(), Val::Float(1.5).checksum());
        assert_ne!(Val::Undef.checksum(), Val::Int(0).checksum());
    }

    #[test]
    fn zero_of_matches_type() {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let f64t = ts.f64();
        let p = ts.ptr();
        assert_eq!(Val::zero_of(&ts, i32t), Val::Int(0));
        assert_eq!(Val::zero_of(&ts, f64t), Val::Float(0.0));
        assert_eq!(Val::zero_of(&ts, p), Val::Ptr(0));
    }
}
