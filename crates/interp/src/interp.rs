//! The interpreter proper.
//!
//! Executes IR functions over the flat [`Memory`] model, counting every
//! dynamically executed instruction. The count is the architecture-neutral
//! stand-in for runtime used by the Fig. 17 experiment: merged functions
//! execute extra guards/selects/branches, and that overhead shows up
//! directly in the step count.

use f3m_ir::ids::{BlockId, FuncId, ValueId};
use f3m_ir::inst::{FloatPredicate, Instruction, IntPredicate, Opcode, Predicate};
use f3m_ir::function::Function;
use f3m_ir::module::Module;
use f3m_ir::types::{TypeId, TypeKind};
use f3m_ir::value::{normalize_int, ValueKind};

use crate::memory::Memory;
use crate::trap::Trap;
use crate::value::Val;

/// Tunable execution limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum dynamically executed instructions.
    pub fuel: u64,
    /// Maximum bytes of data memory.
    pub memory: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { fuel: 50_000_000, memory: 1 << 24, max_depth: 256 }
    }
}

/// Result of a top-level call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// Return value (`None` for `void`).
    pub ret: Option<Val>,
    /// Instructions executed by this call (including callees).
    pub steps: u64,
    /// Checksum accumulated by `ext_sink` calls during this call.
    pub checksum: u64,
}

/// An interpreter instance bound to a module.
///
/// # Examples
///
/// ```
/// use f3m_ir::parser::parse_module;
/// use f3m_interp::interp::Interpreter;
/// use f3m_interp::value::Val;
///
/// let m = parse_module(r#"
/// module "t" {
/// define @double(i32 %0) -> i32 {
/// bb0:
///   %1 = add i32 %0, %0
///   ret i32 %1
/// }
/// }
/// "#).unwrap();
/// let mut interp = Interpreter::new(&m);
/// let out = interp.call_by_name("double", &[Val::Int(21)]).unwrap();
/// assert_eq!(out.ret, Some(Val::Int(42)));
/// assert_eq!(out.steps, 2);
/// ```
pub struct Interpreter<'m> {
    module: &'m Module,
    mem: Memory,
    limits: Limits,
    fuel_left: u64,
    steps: u64,
    checksum: u64,
    per_func: Vec<u64>,
    global_addrs: Vec<u64>,
    depth: usize,
    /// Set when the globals did not fit the memory limit at construction;
    /// every subsequent call reports this trap instead of running.
    init_error: Option<Trap>,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with default limits; globals are allocated
    /// and initialized immediately.
    pub fn new(module: &'m Module) -> Self {
        Self::with_limits(module, Limits::default())
    }

    /// Creates an interpreter with explicit limits. If the module's globals
    /// do not fit within `limits.memory`, construction still succeeds and
    /// every call returns [`Trap::OutOfMemory`] (callers treat that like
    /// any other resource trap instead of a panic).
    pub fn with_limits(module: &'m Module, limits: Limits) -> Self {
        let mut mem = Memory::new(limits.memory);
        let mut global_addrs = Vec::new();
        let mut init_error = None;
        for (_, g) in module.globals() {
            let size = module.types.size_of(g.ty).max(g.init.len() as u64);
            match mem.alloc(size).and_then(|addr| mem.write(addr, &g.init).map(|()| addr)) {
                Ok(addr) => global_addrs.push(addr),
                Err(t) => {
                    init_error.get_or_insert(t);
                    global_addrs.push(0);
                }
            }
        }
        Interpreter {
            module,
            mem,
            limits,
            fuel_left: limits.fuel,
            steps: 0,
            checksum: 0,
            per_func: vec![0; module.num_functions()],
            global_addrs,
            depth: 0,
            init_error,
        }
    }

    /// Cumulative instructions executed by all calls so far.
    pub fn total_steps(&self) -> u64 {
        self.steps
    }

    /// Instructions executed inside the body of `f` (not counting callees).
    pub fn func_steps(&self, f: FuncId) -> u64 {
        self.per_func[f.index()]
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Traps propagate; an unknown name is a [`Trap::UnknownExternal`].
    pub fn call_by_name(&mut self, name: &str, args: &[Val]) -> Result<Outcome, Trap> {
        let fid = self
            .module
            .lookup_function(name)
            .ok_or_else(|| Trap::UnknownExternal { name: name.to_string() })?;
        self.call(fid, args)
    }

    /// Calls a function by id.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn call(&mut self, fid: FuncId, args: &[Val]) -> Result<Outcome, Trap> {
        if let Some(t) = &self.init_error {
            return Err(t.clone());
        }
        let steps_before = self.steps;
        let sum_before = self.checksum;
        let ret = self.run(fid, args)?;
        Ok(Outcome {
            ret,
            steps: self.steps - steps_before,
            checksum: self.checksum.wrapping_sub(sum_before),
        })
    }

    fn run(&mut self, fid: FuncId, args: &[Val]) -> Result<Option<Val>, Trap> {
        let f = self.module.function(fid);
        if f.is_declaration {
            return self.external(f, args);
        }
        if args.len() != f.params.len() {
            return Err(Trap::CallMismatch {
                detail: format!("@{} called with {} args", f.name, args.len()),
            });
        }
        if self.depth >= self.limits.max_depth {
            return Err(Trap::StackOverflow);
        }
        self.depth += 1;
        let watermark = self.mem.watermark();
        let result = self.run_body(fid, f, args);
        self.mem.rollback(watermark);
        self.depth -= 1;
        result
    }

    fn run_body(&mut self, fid: FuncId, f: &'m Function, args: &[Val]) -> Result<Option<Val>, Trap> {
        let mut regs: Vec<Option<Val>> = vec![None; f.num_values()];
        for (i, &a) in args.iter().enumerate() {
            regs[f.arg(i).index()] = Some(a.normalize(&self.module.types, f.params[i]));
        }
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;
        'blocks: loop {
            let insts = &f.block(block).insts;
            // Phis evaluate in parallel against the incoming edge.
            let first_non_phi = f.first_non_phi(block);
            if first_non_phi > 0 {
                let from = prev.expect("phi in entry block");
                let mut staged: Vec<(ValueId, Val)> = Vec::with_capacity(first_non_phi);
                for &iid in &insts[..first_non_phi] {
                    let inst = f.inst(iid);
                    self.tick(fid)?;
                    let mut picked = None;
                    for (bb, v) in inst.phi_incomings() {
                        if bb == from {
                            picked = Some(self.eval(f, &regs, v)?);
                            break;
                        }
                    }
                    let val = picked.ok_or(Trap::CallMismatch {
                        detail: format!("phi in {:?} missing incoming for {:?}", block, from),
                    })?;
                    staged.push((inst.result.expect("phi result"), val));
                }
                for (r, v) in staged {
                    regs[r.index()] = Some(v.normalize(&self.module.types, f.value(r).ty));
                }
            }
            for &iid in &insts[first_non_phi..] {
                let inst = f.inst(iid);
                self.tick(fid)?;
                match inst.op {
                    Opcode::Ret => {
                        return if let Some(&v) = inst.operands.first() {
                            Ok(Some(self.eval(f, &regs, v)?))
                        } else {
                            Ok(None)
                        };
                    }
                    Opcode::Br => {
                        prev = Some(block);
                        block = inst.blocks[0];
                        continue 'blocks;
                    }
                    Opcode::CondBr => {
                        let c = self.eval(f, &regs, inst.operands[0])?;
                        let taken = match c {
                            Val::Int(x) => x != 0,
                            Val::Undef => {
                                return Err(Trap::UndefUsed { context: "branch condition" })
                            }
                            _ => {
                                return Err(Trap::CallMismatch {
                                    detail: "non-integer branch condition".into(),
                                })
                            }
                        };
                        prev = Some(block);
                        block = if taken { inst.blocks[0] } else { inst.blocks[1] };
                        continue 'blocks;
                    }
                    Opcode::Unreachable => return Err(Trap::UnreachableExecuted),
                    Opcode::Invoke => {
                        let v = self.exec_call(f, &regs, inst)?;
                        if let (Some(r), Some(v)) = (inst.result, v) {
                            regs[r.index()] = Some(v);
                        }
                        // Invokes never unwind in this model.
                        prev = Some(block);
                        block = inst.blocks[0];
                        continue 'blocks;
                    }
                    Opcode::Call => {
                        let v = self.exec_call(f, &regs, inst)?;
                        if let (Some(r), Some(v)) = (inst.result, v) {
                            regs[r.index()] = Some(v);
                        }
                    }
                    _ => {
                        let v = self.exec_simple(f, &regs, inst)?;
                        if let Some(r) = inst.result {
                            regs[r.index()] =
                                Some(v.normalize(&self.module.types, f.value(r).ty));
                        }
                    }
                }
            }
            // A verified function never falls through (last inst is a
            // terminator handled above).
            unreachable!("block fell through without terminator");
        }
    }

    fn tick(&mut self, fid: FuncId) -> Result<(), Trap> {
        if self.fuel_left == 0 {
            return Err(Trap::OutOfFuel);
        }
        self.fuel_left -= 1;
        self.steps += 1;
        self.per_func[fid.index()] += 1;
        Ok(())
    }

    fn eval(&self, f: &Function, regs: &[Option<Val>], v: ValueId) -> Result<Val, Trap> {
        let val = f.value(v);
        Ok(match val.kind {
            ValueKind::Arg(_) | ValueKind::Inst(_) => {
                regs[v.index()].ok_or(Trap::UndefUsed { context: "unassigned register" })?
            }
            ValueKind::ConstInt(x) => Val::Int(x),
            ValueKind::ConstFloat(bits) => Val::Float(f64::from_bits(bits)),
            ValueKind::Undef => Val::Undef,
            ValueKind::FuncRef(fid) => Val::Ptr(Memory::func_addr(fid.index())),
            ValueKind::GlobalRef(gid) => Val::Ptr(self.global_addrs[gid.index()]),
        })
    }

    fn exec_call(
        &mut self,
        f: &Function,
        regs: &[Option<Val>],
        inst: &Instruction,
    ) -> Result<Option<Val>, Trap> {
        let callee = self.eval(f, regs, inst.operands[0])?;
        let addr = match callee {
            Val::Ptr(a) => a,
            Val::Undef => return Err(Trap::UndefUsed { context: "call target" }),
            _ => return Err(Trap::BadIndirectCall { addr: 0 }),
        };
        let idx = Memory::addr_to_func(addr).ok_or(Trap::BadIndirectCall { addr })?;
        if idx >= self.module.num_functions() {
            return Err(Trap::BadIndirectCall { addr });
        }
        let mut args = Vec::with_capacity(inst.operands.len() - 1);
        for &a in &inst.operands[1..] {
            args.push(self.eval(f, regs, a)?);
        }
        self.run(FuncId::from_index(idx), &args)
    }

    fn exec_simple(
        &mut self,
        f: &Function,
        regs: &[Option<Val>],
        inst: &Instruction,
    ) -> Result<Val, Trap> {
        let ts = &self.module.types;
        let op = |i: usize| self.eval(f, regs, inst.operands[i]);
        match inst.op {
            o if o.is_int_binary() => {
                let (a, b) = (op(0)?, op(1)?);
                let bits = ts.int_bits(inst.ty).unwrap_or(64);
                int_binary(o, a, b, bits)
            }
            o if o.is_float_binary() => {
                let (a, b) = (op(0)?, op(1)?);
                let (x, y) = match (a, b) {
                    (Val::Float(x), Val::Float(y)) => (x, y),
                    (Val::Undef, _) | (_, Val::Undef) => return Ok(Val::Undef),
                    _ => {
                        return Err(Trap::CallMismatch { detail: "float op on non-float".into() })
                    }
                };
                let r = match o {
                    Opcode::FAdd => x + y,
                    Opcode::FSub => x - y,
                    Opcode::FMul => x * y,
                    Opcode::FDiv => x / y,
                    Opcode::FRem => x % y,
                    _ => unreachable!(),
                };
                Ok(Val::Float(round_to(ts, inst.ty, r)))
            }
            Opcode::FNeg => match op(0)? {
                Val::Float(x) => Ok(Val::Float(-x)),
                Val::Undef => Ok(Val::Undef),
                _ => Err(Trap::CallMismatch { detail: "fneg on non-float".into() }),
            },
            Opcode::ICmp => {
                let (a, b) = (op(0)?, op(1)?);
                let pred = match inst.pred {
                    Some(Predicate::Int(p)) => p,
                    _ => return Err(Trap::CallMismatch { detail: "icmp without predicate".into() }),
                };
                let src_ty = f.value(inst.operands[0]).ty;
                icmp(ts, src_ty, pred, a, b)
            }
            Opcode::FCmp => {
                let (a, b) = (op(0)?, op(1)?);
                let pred = match inst.pred {
                    Some(Predicate::Float(p)) => p,
                    _ => return Err(Trap::CallMismatch { detail: "fcmp without predicate".into() }),
                };
                let (x, y) = match (a, b) {
                    (Val::Float(x), Val::Float(y)) => (x, y),
                    _ => return Ok(Val::Undef),
                };
                let r = match pred {
                    FloatPredicate::Oeq => x == y,
                    FloatPredicate::One => x != y && !x.is_nan() && !y.is_nan(),
                    FloatPredicate::Ogt => x > y,
                    FloatPredicate::Oge => x >= y,
                    FloatPredicate::Olt => x < y,
                    FloatPredicate::Ole => x <= y,
                };
                Ok(Val::Int(bool_val(r)))
            }
            Opcode::Select => {
                let c = op(0)?;
                match c {
                    Val::Int(x) => {
                        if x != 0 {
                            op(1)
                        } else {
                            op(2)
                        }
                    }
                    Val::Undef => Err(Trap::UndefUsed { context: "select condition" }),
                    _ => Err(Trap::CallMismatch { detail: "select on non-i1".into() }),
                }
            }
            Opcode::Alloca => {
                let size = ts.size_of(inst.aux_ty.expect("alloca type"));
                Ok(Val::Ptr(self.mem.alloc(size)?))
            }
            Opcode::Load => {
                let addr = ptr_of(op(0)?, "load address")?;
                load_typed(ts, &self.mem, inst.ty, addr)
            }
            Opcode::Store => {
                let v = op(0)?;
                let addr = ptr_of(op(1)?, "store address")?;
                let ty = f.value(inst.operands[0]).ty;
                store_typed(ts, &mut self.mem, ty, addr, v)?;
                Ok(Val::Undef) // no result; ignored by caller
            }
            Opcode::Gep => {
                let base = ptr_of(op(0)?, "gep base")?;
                let idx = match op(1)? {
                    Val::Int(x) => x,
                    Val::Undef => return Err(Trap::UndefUsed { context: "gep index" }),
                    _ => return Err(Trap::CallMismatch { detail: "gep index not int".into() }),
                };
                let elem = ts.size_of(inst.aux_ty.expect("gep type")) as i64;
                Ok(Val::Ptr((base as i64).wrapping_add(idx.wrapping_mul(elem)) as u64))
            }
            o if o.is_cast() => {
                let x = op(0)?;
                let from_ty = f.value(inst.operands[0]).ty;
                cast(ts, o, x, from_ty, inst.ty)
            }
            o => Err(Trap::CallMismatch { detail: format!("unhandled opcode {o:?}") }),
        }
    }

    /// Dispatches a call to an external declaration.
    ///
    /// Two families of intrinsics are recognized:
    /// - `ext_src*`: deterministic pure sources mixing their integer/float
    ///   inputs into a value of the return type,
    /// - `ext_sink*`: accumulate operands into the interpreter checksum.
    fn external(&mut self, f: &'m Function, args: &[Val]) -> Result<Option<Val>, Trap> {
        if f.name.starts_with("ext_sink") {
            for a in args {
                self.checksum = mix(self.checksum ^ a.checksum());
            }
            return Ok(None);
        }
        if f.name.starts_with("ext_src") {
            let mut h = 0xA076_1D64_78BD_642Fu64;
            for (i, a) in args.iter().enumerate() {
                h = mix(h ^ a.checksum().wrapping_add(i as u64));
            }
            let ts = &self.module.types;
            let v = match ts.kind(f.ret_ty) {
                TypeKind::Int(bits) => Val::Int(normalize_int(h as i64, *bits)),
                TypeKind::F32 | TypeKind::F64 => {
                    Val::Float(round_to(ts, f.ret_ty, (h >> 11) as f64 / (1u64 << 53) as f64))
                }
                TypeKind::Void => return Ok(None),
                _ => Val::Undef,
            };
            return Ok(Some(v));
        }
        Err(Trap::UnknownExternal { name: f.name.clone() })
    }
}

/// SplitMix64 finalizer; the deterministic mixing used by externals.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bool_val(b: bool) -> i64 {
    // i1 true is all-ones in the normalized representation.
    if b {
        normalize_int(1, 1)
    } else {
        0
    }
}

fn ptr_of(v: Val, context: &'static str) -> Result<u64, Trap> {
    match v {
        Val::Ptr(a) => Ok(a),
        Val::Undef => Err(Trap::UndefUsed { context }),
        Val::Int(x) => Ok(x as u64), // inttoptr round trips
        Val::Float(_) => Err(Trap::CallMismatch { detail: format!("float as {context}") }),
    }
}

fn unsigned(x: i64, bits: u32) -> u64 {
    if bits >= 64 {
        x as u64
    } else {
        (x as u64) & ((1u64 << bits) - 1)
    }
}

fn int_binary(op: Opcode, a: Val, b: Val, bits: u32) -> Result<Val, Trap> {
    let (x, y) = match (a, b) {
        (Val::Int(x), Val::Int(y)) => (x, y),
        (Val::Undef, _) | (_, Val::Undef) => return Ok(Val::Undef),
        _ => return Err(Trap::CallMismatch { detail: "int op on non-int".into() }),
    };
    let r = match op {
        Opcode::Add => x.wrapping_add(y),
        Opcode::Sub => x.wrapping_sub(y),
        Opcode::Mul => x.wrapping_mul(y),
        Opcode::UDiv => {
            if y == 0 {
                return Err(Trap::DivideByZero);
            }
            (unsigned(x, bits) / unsigned(y, bits)) as i64
        }
        Opcode::SDiv => {
            if y == 0 {
                return Err(Trap::DivideByZero);
            }
            x.wrapping_div(y)
        }
        Opcode::URem => {
            if y == 0 {
                return Err(Trap::DivideByZero);
            }
            (unsigned(x, bits) % unsigned(y, bits)) as i64
        }
        Opcode::SRem => {
            if y == 0 {
                return Err(Trap::DivideByZero);
            }
            x.wrapping_rem(y)
        }
        Opcode::Shl => x.wrapping_shl(shift_amt(y, bits)),
        Opcode::LShr => (unsigned(x, bits) >> shift_amt(y, bits)) as i64,
        Opcode::AShr => x >> shift_amt(y, bits),
        Opcode::And => x & y,
        Opcode::Or => x | y,
        Opcode::Xor => x ^ y,
        _ => unreachable!(),
    };
    Ok(Val::Int(normalize_int(r, bits)))
}

/// Deterministic total semantics for shifts: the amount is taken modulo the
/// width (LLVM would make over-shifts poison; we need reproducible results
/// for differential testing).
fn shift_amt(y: i64, bits: u32) -> u32 {
    (y as u64 % bits as u64) as u32
}

fn icmp(
    ts: &f3m_ir::types::TypeStore,
    src_ty: TypeId,
    pred: IntPredicate,
    a: Val,
    b: Val,
) -> Result<Val, Trap> {
    let bits = ts.int_bits(src_ty).unwrap_or(64);
    let (x, y) = match (a, b) {
        (Val::Int(x), Val::Int(y)) => (x, y),
        (Val::Ptr(x), Val::Ptr(y)) => (x as i64, y as i64),
        (Val::Ptr(x), Val::Int(y)) | (Val::Int(y), Val::Ptr(x)) => (x as i64, y),
        (Val::Undef, _) | (_, Val::Undef) => {
            return Err(Trap::UndefUsed { context: "icmp operand" })
        }
        _ => return Err(Trap::CallMismatch { detail: "icmp on floats".into() }),
    };
    let (ux, uy) = (unsigned(x, bits), unsigned(y, bits));
    let r = match pred {
        IntPredicate::Eq => x == y,
        IntPredicate::Ne => x != y,
        IntPredicate::Ugt => ux > uy,
        IntPredicate::Uge => ux >= uy,
        IntPredicate::Ult => ux < uy,
        IntPredicate::Ule => ux <= uy,
        IntPredicate::Sgt => x > y,
        IntPredicate::Sge => x >= y,
        IntPredicate::Slt => x < y,
        IntPredicate::Sle => x <= y,
    };
    Ok(Val::Int(bool_val(r)))
}

fn round_to(ts: &f3m_ir::types::TypeStore, ty: TypeId, x: f64) -> f64 {
    match ts.kind(ty) {
        TypeKind::F32 => x as f32 as f64,
        _ => x,
    }
}

fn cast(
    ts: &f3m_ir::types::TypeStore,
    op: Opcode,
    x: Val,
    from: TypeId,
    to: TypeId,
) -> Result<Val, Trap> {
    if matches!(x, Val::Undef) {
        return Ok(Val::Undef);
    }
    let to_bits = ts.int_bits(to);
    let from_bits = ts.int_bits(from);
    Ok(match op {
        Opcode::Trunc => Val::Int(normalize_int(
            x.as_int().ok_or(Trap::CallMismatch { detail: "trunc non-int".into() })?,
            to_bits.unwrap_or(64),
        )),
        Opcode::ZExt => {
            let v = x.as_int().ok_or(Trap::CallMismatch { detail: "zext non-int".into() })?;
            Val::Int(normalize_int(
                unsigned(v, from_bits.unwrap_or(64)) as i64,
                to_bits.unwrap_or(64),
            ))
        }
        Opcode::SExt => Val::Int(normalize_int(
            x.as_int().ok_or(Trap::CallMismatch { detail: "sext non-int".into() })?,
            to_bits.unwrap_or(64),
        )),
        Opcode::FPTrunc | Opcode::FPExt => Val::Float(round_to(
            ts,
            to,
            x.as_float().ok_or(Trap::CallMismatch { detail: "fp cast non-float".into() })?,
        )),
        Opcode::FPToUI | Opcode::FPToSI => {
            let f = x.as_float().ok_or(Trap::CallMismatch { detail: "fptoi non-float".into() })?;
            // Saturating conversion (total semantics).
            let v = if f.is_nan() { 0 } else { f as i64 };
            Val::Int(normalize_int(v, to_bits.unwrap_or(64)))
        }
        Opcode::UIToFP => {
            let v = x.as_int().ok_or(Trap::CallMismatch { detail: "itofp non-int".into() })?;
            Val::Float(round_to(ts, to, unsigned(v, from_bits.unwrap_or(64)) as f64))
        }
        Opcode::SIToFP => {
            let v = x.as_int().ok_or(Trap::CallMismatch { detail: "itofp non-int".into() })?;
            Val::Float(round_to(ts, to, v as f64))
        }
        Opcode::PtrToInt => Val::Int(normalize_int(
            x.as_ptr().ok_or(Trap::CallMismatch { detail: "ptrtoint non-ptr".into() })? as i64,
            to_bits.unwrap_or(64),
        )),
        Opcode::IntToPtr => Val::Ptr(
            x.as_int().ok_or(Trap::CallMismatch { detail: "inttoptr non-int".into() })? as u64,
        ),
        Opcode::BitCast => match x {
            Val::Int(v) => {
                if ts.is_float(to) {
                    Val::Float(f64::from_bits(v as u64))
                } else {
                    x
                }
            }
            Val::Float(fv) => {
                if ts.is_int(to) {
                    Val::Int(normalize_int(fv.to_bits() as i64, to_bits.unwrap_or(64)))
                } else {
                    x
                }
            }
            other => other,
        },
        _ => unreachable!("non-cast opcode"),
    })
}

fn load_typed(
    ts: &f3m_ir::types::TypeStore,
    mem: &Memory,
    ty: TypeId,
    addr: u64,
) -> Result<Val, Trap> {
    match ts.kind(ty) {
        TypeKind::Int(bits) => {
            let len = (*bits as u64).div_ceil(8);
            let raw = mem.read_uint(addr, len)?;
            Ok(Val::Int(normalize_int(raw as i64, *bits)))
        }
        TypeKind::F32 => {
            let raw = mem.read_uint(addr, 4)? as u32;
            Ok(Val::Float(f32::from_bits(raw) as f64))
        }
        TypeKind::F64 => Ok(Val::Float(f64::from_bits(mem.read_uint(addr, 8)?))),
        TypeKind::Ptr => Ok(Val::Ptr(mem.read_uint(addr, 8)?)),
        other => Err(Trap::CallMismatch { detail: format!("load of aggregate {other:?}") }),
    }
}

fn store_typed(
    ts: &f3m_ir::types::TypeStore,
    mem: &mut Memory,
    ty: TypeId,
    addr: u64,
    v: Val,
) -> Result<(), Trap> {
    match ts.kind(ty) {
        TypeKind::Int(bits) => {
            let len = (*bits as u64).div_ceil(8);
            let x = v.as_int().unwrap_or(0); // storing undef stores zero
            mem.write_uint(addr, x as u64, len)
        }
        TypeKind::F32 => {
            let x = v.as_float().unwrap_or(0.0) as f32;
            mem.write_uint(addr, x.to_bits() as u64, 4)
        }
        TypeKind::F64 => mem.write_uint(addr, v.as_float().unwrap_or(0.0).to_bits(), 8),
        TypeKind::Ptr => mem.write_uint(addr, v.as_ptr().unwrap_or(0), 8),
        other => Err(Trap::CallMismatch { detail: format!("store of aggregate {other:?}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::parser::parse_module;

    fn run(src: &str, f: &str, args: &[Val]) -> Result<Outcome, Trap> {
        let m = parse_module(src).unwrap();
        let mut i = Interpreter::new(&m);
        i.call_by_name(f, args)
    }

    #[test]
    fn arithmetic_and_branches() {
        let out = run(
            r#"
module "t" {
define @abs(i32 %0) -> i32 {
bb0:
  %1 = icmp slt i32 %0, 0
  condbr %1, bb1, bb2
bb1:
  %2 = sub i32 0, %0
  br bb2
bb2:
  %3 = phi i32 [ %2, bb1 ], [ %0, bb0 ]
  ret i32 %3
}
}
"#,
            "abs",
            &[Val::Int(-5)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(5)));
    }

    #[test]
    fn loop_sum() {
        let out = run(
            r#"
module "t" {
define @sum(i32 %0) -> i32 {
bb0:
  br bb1
bb1:
  %1 = phi i32 [ 0, bb0 ], [ %3, bb2 ]
  %2 = phi i32 [ 0, bb0 ], [ %4, bb2 ]
  %5 = icmp slt i32 %2, %0
  condbr %5, bb2, bb3
bb2:
  %3 = add i32 %1, %2
  %4 = add i32 %2, 1
  br bb1
bb3:
  ret i32 %1
}
}
"#,
            "sum",
            &[Val::Int(10)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(45)));
        assert!(out.steps > 30, "loop actually iterated: {}", out.steps);
    }

    #[test]
    fn memory_round_trip() {
        let out = run(
            r#"
module "t" {
define @mem(i32 %0) -> i32 {
bb0:
  %1 = alloca [4 x i32]
  %2 = gep i32, %1, i64 2
  store i32 %0, %2
  %3 = load i32, %2
  ret i32 %3
}
}
"#,
            "mem",
            &[Val::Int(77)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(77)));
    }

    #[test]
    fn divide_by_zero_traps() {
        let err = run(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  %1 = sdiv i32 %0, 0
  ret i32 %1
}
}
"#,
            "f",
            &[Val::Int(1)],
        )
        .unwrap_err();
        assert_eq!(err, Trap::DivideByZero);
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let m = parse_module(
            r#"
module "t" {
define @spin() -> void {
bb0:
  br bb1
bb1:
  br bb1
}
}
"#,
        )
        .unwrap();
        let mut i = Interpreter::with_limits(
            &m,
            Limits { fuel: 1000, memory: 1 << 16, max_depth: 16 },
        );
        assert_eq!(i.call_by_name("spin", &[]).unwrap_err(), Trap::OutOfFuel);
    }

    #[test]
    fn recursion_depth_limited() {
        let m = parse_module(
            r#"
module "t" {
define @r(i64 %0) -> i64 {
bb0:
  %1 = call i64 @r(i64 %0)
  ret i64 %1
}
}
"#,
        )
        .unwrap();
        let mut i = Interpreter::with_limits(
            &m,
            Limits { fuel: 1_000_000, memory: 1 << 16, max_depth: 32 },
        );
        assert_eq!(i.call_by_name("r", &[Val::Int(0)]).unwrap_err(), Trap::StackOverflow);
    }

    #[test]
    fn calls_and_externals() {
        let out = run(
            r#"
module "t" {
declare @ext_src_i64(i64) -> i64
declare @ext_sink_i64(i64) -> void
define @go(i64 %0) -> i64 {
bb0:
  %1 = call i64 @ext_src_i64(i64 %0)
  call void @ext_sink_i64(i64 %1)
  ret i64 %1
}
}
"#,
            "go",
            &[Val::Int(3)],
        )
        .unwrap();
        assert!(out.ret.is_some());
        assert_ne!(out.checksum, 0, "sink recorded the value");
        // Determinism.
        let out2 = run(
            r#"
module "t" {
declare @ext_src_i64(i64) -> i64
declare @ext_sink_i64(i64) -> void
define @go(i64 %0) -> i64 {
bb0:
  %1 = call i64 @ext_src_i64(i64 %0)
  call void @ext_sink_i64(i64 %1)
  ret i64 %1
}
}
"#,
            "go",
            &[Val::Int(3)],
        )
        .unwrap();
        assert_eq!(out.ret, out2.ret);
        assert_eq!(out.checksum, out2.checksum);
    }

    #[test]
    fn indirect_calls_through_function_pointers() {
        let out = run(
            r#"
module "t" {
define @target(i32 %0) -> i32 {
bb0:
  %1 = mul i32 %0, 3
  ret i32 %1
}
define @go(i32 %0) -> i32 {
bb0:
  %1 = alloca ptr
  store ptr @target, %1
  %2 = load ptr, %1
  %3 = call i32 %2(i32 %0)
  ret i32 %3
}
}
"#,
            "go",
            &[Val::Int(7)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(21)));
    }

    #[test]
    fn invoke_takes_normal_edge() {
        let out = run(
            r#"
module "t" {
define @callee(i32 %0) -> i32 {
bb0:
  ret i32 %0
}
define @f(i32 %0) -> i32 {
bb0:
  %1 = invoke i32 @callee(i32 %0) to bb1 unwind bb2
bb1:
  ret i32 %1
bb2:
  ret i32 -1
}
}
"#,
            "f",
            &[Val::Int(9)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(9)));
    }

    #[test]
    fn unknown_external_traps() {
        let err = run(
            r#"
module "t" {
declare @mystery() -> void
define @f() -> void {
bb0:
  call void @mystery()
  ret
}
}
"#,
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, Trap::UnknownExternal { .. }));
    }

    #[test]
    fn globals_are_initialized() {
        let out = run(
            r#"
module "t" {
global @g : i32 = [42, 0, 0, 0]
define @f() -> i32 {
bb0:
  %1 = load i32, @g
  ret i32 %1
}
}
"#,
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(42)));
    }

    #[test]
    fn casts_behave() {
        let out = run(
            r#"
module "t" {
define @f(i64 %0) -> i64 {
bb0:
  %1 = trunc i64 %0 to i8
  %2 = zext i8 %1 to i64
  %3 = sext i8 %1 to i64
  %4 = add i64 %2, %3
  ret i64 %4
}
}
"#,
            "f",
            &[Val::Int(0xFF)],
        )
        .unwrap();
        // trunc 0xFF -> i8 = -1; zext -> 255; sext -> -1; sum = 254.
        assert_eq!(out.ret, Some(Val::Int(254)));
    }

    #[test]
    fn float_ops() {
        let out = run(
            r#"
module "t" {
define @f(f64 %0) -> f64 {
bb0:
  %1 = fmul f64 %0, %0
  %2 = fadd f64 %1, 0f3FF0000000000000
  ret f64 %2
}
}
"#,
            "f",
            &[Val::Float(3.0)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Float(10.0)));
    }

    #[test]
    fn step_counting_attributes_to_functions() {
        let m = parse_module(
            r#"
module "t" {
define @leaf(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  ret i32 %1
}
define @top(i32 %0) -> i32 {
bb0:
  %1 = call i32 @leaf(i32 %0)
  ret i32 %1
}
}
"#,
        )
        .unwrap();
        let mut i = Interpreter::new(&m);
        let out = i.call_by_name("top", &[Val::Int(0)]).unwrap();
        assert_eq!(out.steps, 4);
        let leaf = m.lookup_function("leaf").unwrap();
        let top = m.lookup_function("top").unwrap();
        assert_eq!(i.func_steps(leaf), 2);
        assert_eq!(i.func_steps(top), 2);
    }
}
