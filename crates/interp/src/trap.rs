//! Execution traps.

use std::fmt;

/// Abnormal termination of interpretation.
#[derive(Clone, Debug, PartialEq)]
pub enum Trap {
    /// The fuel budget ran out (probable infinite loop).
    OutOfFuel,
    /// Memory limit exceeded.
    OutOfMemory,
    /// Out-of-bounds or null memory access.
    MemoryFault {
        /// Faulting address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A branch condition, address or callee was `undef`.
    UndefUsed {
        /// What kind of use trapped.
        context: &'static str,
    },
    /// Indirect call to an address that is not a function.
    BadIndirectCall {
        /// The bad address.
        addr: u64,
    },
    /// Call to an external function with no registered semantics.
    UnknownExternal {
        /// Function name.
        name: String,
    },
    /// Call stack exceeded the depth limit.
    StackOverflow,
    /// `unreachable` was executed.
    UnreachableExecuted,
    /// Call arity/type mismatch detected at runtime.
    CallMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::OutOfMemory => write!(f, "out of memory"),
            Trap::MemoryFault { addr } => write!(f, "memory fault at {addr:#x}"),
            Trap::DivideByZero => write!(f, "integer division by zero"),
            Trap::UndefUsed { context } => write!(f, "undef used as {context}"),
            Trap::BadIndirectCall { addr } => write!(f, "indirect call to non-function {addr:#x}"),
            Trap::UnknownExternal { name } => write!(f, "unknown external function @{name}"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::UnreachableExecuted => write!(f, "executed unreachable"),
            Trap::CallMismatch { detail } => write!(f, "call mismatch: {detail}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(Trap::MemoryFault { addr: 0x10 }.to_string().contains("0x10"));
        assert!(Trap::UnknownExternal { name: "foo".into() }.to_string().contains("@foo"));
        assert_eq!(Trap::DivideByZero.to_string(), "integer division by zero");
    }
}
