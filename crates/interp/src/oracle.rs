//! Public observation entry point for differential oracles.
//!
//! A differential oracle needs a *total* notion of "what a call did" — a
//! plain `Result<Outcome, Trap>` is awkward to compare because resource
//! traps are legitimately perturbed by transformations: a merged function
//! executes extra guard instructions (fuel), carries both originals'
//! allocas (memory) and calls through thunks (stack depth). [`observe`]
//! folds a call into an [`Observation`] that classifies those traps
//! separately so callers can skip the comparison instead of reporting a
//! false mismatch, while genuine semantic traps (division by zero, memory
//! faults, undef uses...) remain comparable by class.

use f3m_ir::module::Module;

use crate::interp::{Interpreter, Limits};
use crate::trap::Trap;
use crate::value::Val;

/// What a single top-level call did, folded for comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Observation {
    /// The call returned normally.
    Completed {
        /// Return value (`None` for `void`).
        ret: Option<Val>,
        /// `ext_sink` checksum accumulated during the call.
        checksum: u64,
    },
    /// The call hit an execution limit (fuel, memory, or call depth).
    /// Transformations change resource consumption without changing
    /// semantics, so two observations are incomparable when either side
    /// is a resource limit.
    ResourceLimit(Trap),
    /// The call raised a semantic trap. Only the trap *class* is kept:
    /// payloads such as fault addresses shift when a transformation
    /// relayouts allocations, but the class of the first fault must be
    /// preserved.
    Trapped(&'static str),
}

impl Observation {
    /// True for [`Observation::ResourceLimit`].
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, Observation::ResourceLimit(_))
    }
}

/// The payload-free class of a trap, used by [`Observation::Trapped`].
pub fn trap_class(t: &Trap) -> &'static str {
    match t {
        Trap::OutOfFuel => "out-of-fuel",
        Trap::OutOfMemory => "out-of-memory",
        Trap::MemoryFault { .. } => "memory-fault",
        Trap::DivideByZero => "divide-by-zero",
        Trap::UndefUsed { .. } => "undef-used",
        Trap::BadIndirectCall { .. } => "bad-indirect-call",
        Trap::UnknownExternal { .. } => "unknown-external",
        Trap::StackOverflow => "stack-overflow",
        Trap::UnreachableExecuted => "unreachable-executed",
        Trap::CallMismatch { .. } => "call-mismatch",
    }
}

/// Runs `func(args)` on a fresh interpreter over `m` and folds the result
/// into an [`Observation`]. An unknown function name observes as a
/// `Trapped("unknown-external")`, keeping the function total over
/// arbitrary modules.
pub fn observe(m: &Module, func: &str, args: &[Val], limits: Limits) -> Observation {
    let mut interp = Interpreter::with_limits(m, limits);
    match interp.call_by_name(func, args) {
        Ok(out) => Observation::Completed { ret: out.ret, checksum: out.checksum },
        Err(t @ (Trap::OutOfFuel | Trap::OutOfMemory | Trap::StackOverflow)) => {
            Observation::ResourceLimit(t)
        }
        Err(t) => Observation::Trapped(trap_class(&t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::parser::parse_module;

    #[test]
    fn completion_and_traps_fold_into_observations() {
        let m = parse_module(
            r#"
module "t" {
define @ok(i64 %0) -> i64 {
bb0:
  ret i64 %0
}
define @boom(i64 %0) -> i64 {
bb0:
  %1 = sdiv i64 %0, 0
  ret i64 %1
}
}
"#,
        )
        .unwrap();
        let lim = Limits::default();
        assert_eq!(
            observe(&m, "ok", &[Val::Int(7)], lim),
            Observation::Completed { ret: Some(Val::Int(7)), checksum: 0 }
        );
        assert_eq!(observe(&m, "boom", &[Val::Int(1)], lim), Observation::Trapped("divide-by-zero"));
        assert_eq!(observe(&m, "missing", &[], lim), Observation::Trapped("unknown-external"));
    }

    #[test]
    fn resource_traps_are_incomparable_not_mismatches() {
        let m = parse_module(
            r#"
module "t" {
define @spin() -> void {
bb0:
  br bb1
bb1:
  br bb1
}
}
"#,
        )
        .unwrap();
        let obs = observe(
            &m,
            "spin",
            &[],
            Limits { fuel: 100, memory: 1 << 16, max_depth: 8 },
        );
        assert!(obs.is_resource_limit());
        assert_eq!(obs, Observation::ResourceLimit(Trap::OutOfFuel));
    }
}
