//! Resource-limit behaviour: every exhaustion path must surface as the
//! right [`Trap`] variant, never a panic. The fuzz oracle depends on this
//! taxonomy to tell resource limits (skipped) apart from genuine
//! behavioural divergence (reported).

use f3m_interp::{Interpreter, Limits, Trap, Val};
use f3m_ir::parser::parse_module;

fn module(text: &str) -> f3m_ir::module::Module {
    let m = parse_module(text).expect("test module parses");
    f3m_ir::verify::verify_module(&m).expect("test module verifies");
    m
}

#[test]
fn infinite_loop_exhausts_fuel() {
    let m = module(
        r#"
module "t" {
define @spin(i64 %0) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [ %0, bb0 ], [ %2, bb1 ]
  %2 = add i64 %1, 1
  br bb1
}
}
"#,
    );
    let mut i = Interpreter::with_limits(
        &m,
        Limits { fuel: 10_000, ..Limits::default() },
    );
    let err = i.call_by_name("spin", &[Val::Int(0)]).unwrap_err();
    assert_eq!(err, Trap::OutOfFuel);
}

#[test]
fn unbounded_recursion_overflows_the_stack() {
    let m = module(
        r#"
module "t" {
define @down(i64 %0) -> i64 {
bb0:
  %1 = icmp sle i64 %0, 0
  condbr %1, bb1, bb2
bb1:
  ret i64 0
bb2:
  %2 = sub i64 %0, 1
  %3 = call i64 @down(i64 %2)
  ret i64 %3
}
}
"#,
    );
    // Shallow recursion works; past the depth limit it must trap, not
    // blow the host stack.
    let mut ok = Interpreter::with_limits(&m, Limits { max_depth: 64, ..Limits::default() });
    assert_eq!(ok.call_by_name("down", &[Val::Int(10)]).unwrap().ret, Some(Val::Int(0)));
    let mut deep = Interpreter::with_limits(&m, Limits { max_depth: 64, ..Limits::default() });
    let err = deep.call_by_name("down", &[Val::Int(1_000_000)]).unwrap_err();
    assert_eq!(err, Trap::StackOverflow);
}

#[test]
fn out_of_bounds_access_is_a_memory_fault() {
    let m = module(
        r#"
module "t" {
define @oob(i64 %0) -> i64 {
bb0:
  %1 = alloca [4 x i64]
  %2 = gep i64, %1, i64 %0
  %3 = load i64, %2
  ret i64 %3
}
}
"#,
    );
    let mut inb = Interpreter::new(&m);
    assert!(inb.call_by_name("oob", &[Val::Int(3)]).is_ok());
    let mut out = Interpreter::new(&m);
    match out.call_by_name("oob", &[Val::Int(1 << 40)]).unwrap_err() {
        Trap::MemoryFault { .. } => {}
        other => panic!("expected MemoryFault, got {other:?}"),
    }
}

#[test]
fn oversized_alloca_is_out_of_memory() {
    let m = module(
        r#"
module "t" {
define @big() -> i64 {
bb0:
  %1 = alloca [100000 x i64]
  %2 = gep i64, %1, i64 0
  store i64 7, %2
  %3 = load i64, %2
  ret i64 %3
}
}
"#,
    );
    // Plenty of memory: runs fine.
    let mut ok = Interpreter::with_limits(&m, Limits { memory: 1 << 24, ..Limits::default() });
    assert_eq!(ok.call_by_name("big", &[]).unwrap().ret, Some(Val::Int(7)));
    // 64 KiB budget cannot hold an 800 KB frame object.
    let mut small = Interpreter::with_limits(&m, Limits { memory: 1 << 16, ..Limits::default() });
    assert_eq!(small.call_by_name("big", &[]).unwrap_err(), Trap::OutOfMemory);
}

#[test]
fn globals_beyond_the_memory_limit_trap_instead_of_panicking() {
    // 2048 bytes of initializer: first word is 1 (little-endian), rest 0.
    let mut text = String::from("module \"t\" {\nglobal @g : [256 x i64] = [");
    for i in 0..2048 {
        if i > 0 {
            text.push_str(", ");
        }
        text.push(if i == 0 { '1' } else { '0' });
    }
    text.push_str(
        "]\ndefine @get() -> i64 {\nbb0:\n  %1 = load i64, @g\n  ret i64 %1\n}\n}\n",
    );
    let m = module(&text);
    // Construction must not panic even though the globals cannot fit; the
    // failure is deferred to the first call as OutOfMemory.
    let mut i = Interpreter::with_limits(&m, Limits { memory: 1024, ..Limits::default() });
    assert_eq!(i.call_by_name("get", &[]).unwrap_err(), Trap::OutOfMemory);
    // Every subsequent call keeps reporting the same trap.
    assert_eq!(i.call_by_name("get", &[]).unwrap_err(), Trap::OutOfMemory);
    // With enough memory the same module runs.
    let mut ok = Interpreter::with_limits(&m, Limits { memory: 1 << 20, ..Limits::default() });
    assert_eq!(ok.call_by_name("get", &[]).unwrap().ret, Some(Val::Int(1)));
}

#[test]
fn fuel_is_shared_across_calls_in_one_interpreter() {
    let m = module(
        r#"
module "t" {
define @work(i64 %0) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [ 0, bb0 ], [ %2, bb1 ]
  %2 = add i64 %1, 1
  %3 = icmp slt i64 %2, %0
  condbr %3, bb1, bb2
bb2:
  ret i64 %2
}
}
"#,
    );
    let mut i = Interpreter::with_limits(&m, Limits { fuel: 5_000, ..Limits::default() });
    // Each call burns ~4 instructions per iteration; the budget survives a
    // few rounds and then runs dry rather than resetting per call.
    let mut saw_exhaustion = false;
    for _ in 0..20 {
        match i.call_by_name("work", &[Val::Int(100)]) {
            Ok(out) => assert_eq!(out.ret, Some(Val::Int(100))),
            Err(t) => {
                assert_eq!(t, Trap::OutOfFuel);
                saw_exhaustion = true;
                break;
            }
        }
    }
    assert!(saw_exhaustion, "20 x 100 iterations never exhausted 5000 fuel");
}
