//! Focused semantics tests for the interpreter: each documents one piece
//! of the deterministic total semantics that differential testing of
//! merged modules relies on.

use f3m_interp::{Interpreter, Limits, Trap, Val};
use f3m_ir::parser::parse_module;

fn run1(body: &str, sig: &str, args: &[Val]) -> Result<Option<Val>, Trap> {
    let src = format!("module \"t\" {{\ndefine @f{sig} {{\n{body}\n}}\n}}");
    let m = parse_module(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut i = Interpreter::with_limits(
        &m,
        Limits { fuel: 100_000, memory: 1 << 16, max_depth: 16 },
    );
    i.call_by_name("f", args).map(|o| o.ret)
}

#[test]
fn wrapping_add_at_width() {
    let r = run1(
        "bb0:\n  %1 = add i8 %0, 1\n  ret i8 %1",
        "(i8 %0) -> i8",
        &[Val::Int(127)],
    );
    assert_eq!(r, Ok(Some(Val::Int(-128))), "i8 overflow wraps");
}

#[test]
fn unsigned_division_uses_width() {
    // -1 as u8 is 255; 255 / 2 = 127.
    let r = run1(
        "bb0:\n  %1 = udiv i8 %0, 2\n  ret i8 %1",
        "(i8 %0) -> i8",
        &[Val::Int(-1)],
    );
    assert_eq!(r, Ok(Some(Val::Int(127))));
}

#[test]
fn signed_division_truncates_toward_zero() {
    let r = run1(
        "bb0:\n  %1 = sdiv i32 %0, 4\n  ret i32 %1",
        "(i32 %0) -> i32",
        &[Val::Int(-7)],
    );
    assert_eq!(r, Ok(Some(Val::Int(-1))));
}

#[test]
fn srem_sign_follows_dividend() {
    let r = run1(
        "bb0:\n  %1 = srem i32 %0, 4\n  ret i32 %1",
        "(i32 %0) -> i32",
        &[Val::Int(-7)],
    );
    assert_eq!(r, Ok(Some(Val::Int(-3))));
}

#[test]
fn shifts_take_amount_modulo_width() {
    // Documented total semantics: shift amounts reduce mod bit width.
    let r = run1(
        "bb0:\n  %1 = shl i32 %0, 33\n  ret i32 %1",
        "(i32 %0) -> i32",
        &[Val::Int(3)],
    );
    assert_eq!(r, Ok(Some(Val::Int(6))), "33 % 32 == 1");
}

#[test]
fn lshr_is_logical_at_width() {
    let r = run1(
        "bb0:\n  %1 = lshr i8 %0, 1\n  ret i8 %1",
        "(i8 %0) -> i8",
        &[Val::Int(-2)], // 0xFE
    );
    assert_eq!(r, Ok(Some(Val::Int(127)))); // 0x7F
}

#[test]
fn unsigned_comparison_at_width() {
    let r = run1(
        "bb0:\n  %1 = icmp ugt i8 %0, 1\n  %2 = zext i1 %1 to i32\n  ret i32 %2",
        "(i8 %0) -> i32",
        &[Val::Int(-1)], // 255 unsigned
    );
    assert_eq!(r, Ok(Some(Val::Int(1))));
}

#[test]
fn f32_arithmetic_rounds_through_f32() {
    // 1e8 + 1 is not representable in f32; f64 would keep the +1.
    let r = run1(
        "bb0:\n  %1 = fptrunc f64 %0 to f32\n  %2 = fadd f32 %1, 0f3FF0000000000000\n  %3 = fpext f32 %2 to f64\n  ret f64 %3",
        "(f64 %0) -> f64",
        &[Val::Float(1e8)],
    );
    assert_eq!(r, Ok(Some(Val::Float(1e8))), "f32 rounding applied");
}

#[test]
fn fptosi_saturates_nan_to_zero() {
    let r = run1(
        "bb0:\n  %1 = fdiv f64 %0, %0\n  %2 = fptosi f64 %1 to i32\n  ret i32 %2",
        "(f64 %0) -> i32",
        &[Val::Float(0.0)], // 0/0 = NaN
    );
    assert_eq!(r, Ok(Some(Val::Int(0))));
}

#[test]
fn float_division_by_zero_is_infinite_not_trapping() {
    let r = run1(
        "bb0:\n  %1 = fdiv f64 0f3FF0000000000000, %0\n  %2 = fcmp ogt f64 %1, 0f4059000000000000\n  %3 = zext i1 %2 to i32\n  ret i32 %3",
        "(f64 %0) -> i32",
        &[Val::Float(0.0)],
    );
    assert_eq!(r, Ok(Some(Val::Int(1))), "+inf compares greater");
}

#[test]
fn ptrtoint_inttoptr_round_trip() {
    let r = run1(
        "bb0:\n  %1 = alloca i64\n  store i64 %0, %1\n  %2 = ptrtoint ptr %1 to i64\n  %3 = inttoptr i64 %2 to ptr\n  %4 = load i64, %3\n  ret i64 %4",
        "(i64 %0) -> i64",
        &[Val::Int(0x1234_5678)],
    );
    assert_eq!(r, Ok(Some(Val::Int(0x1234_5678))));
}

#[test]
fn bitcast_between_int_and_float_preserves_bits() {
    let r = run1(
        "bb0:\n  %1 = bitcast i64 %0 to f64\n  %2 = bitcast f64 %1 to i64\n  ret i64 %2",
        "(i64 %0) -> i64",
        &[Val::Int(0x4037_0000_0000_0000)],
    );
    assert_eq!(r, Ok(Some(Val::Int(0x4037_0000_0000_0000))));
}

#[test]
fn gep_with_negative_index_moves_backwards() {
    let r = run1(
        "bb0:\n  %1 = alloca [4 x i32]\n  %2 = gep i32, %1, i64 2\n  store i32 %0, %2\n  %3 = gep i32, %2, i64 -1\n  %4 = gep i32, %3, i64 1\n  %5 = load i32, %4\n  ret i32 %5",
        "(i32 %0) -> i32",
        &[Val::Int(91)],
    );
    assert_eq!(r, Ok(Some(Val::Int(91))));
}

#[test]
fn select_evaluates_lazily_ignoring_undef_arm() {
    let r = run1(
        "bb0:\n  %1 = icmp sgt i32 %0, 0\n  %2 = select %1, i32 7, undef\n  ret i32 %2",
        "(i32 %0) -> i32",
        &[Val::Int(5)],
    );
    assert_eq!(r, Ok(Some(Val::Int(7))), "untaken undef arm is harmless");
}

#[test]
fn branching_on_undef_traps() {
    let r = run1(
        "bb0:\n  condbr undef, bb1, bb2\nbb1:\n  ret i32 1\nbb2:\n  ret i32 2",
        "(i32 %0) -> i32",
        &[Val::Int(0)],
    );
    assert_eq!(r, Err(Trap::UndefUsed { context: "branch condition" }));
}

#[test]
fn stores_of_undef_write_zero() {
    let r = run1(
        "bb0:\n  %1 = alloca i32\n  store i32 77, %1\n  store i32 undef, %1\n  %2 = load i32, %1\n  ret i32 %2",
        "(i32 %0) -> i32",
        &[Val::Int(0)],
    );
    assert_eq!(r, Ok(Some(Val::Int(0))), "undef stores canonicalize to zero");
}

#[test]
fn phi_chooses_by_incoming_edge_not_block_order() {
    let r = run1(
        "bb0:\n  %1 = icmp sgt i32 %0, 0\n  condbr %1, bb2, bb1\nbb1:\n  br bb3\nbb2:\n  br bb3\nbb3:\n  %2 = phi i32 [ 10, bb1 ], [ 20, bb2 ]\n  ret i32 %2",
        "(i32 %0) -> i32",
        &[Val::Int(5)],
    );
    assert_eq!(r, Ok(Some(Val::Int(20))));
}

#[test]
fn call_through_wrong_address_traps() {
    let r = run1(
        "bb0:\n  %1 = inttoptr i64 12345 to ptr\n  %2 = call i32 %1(i32 %0)\n  ret i32 %2",
        "(i32 %0) -> i32",
        &[Val::Int(0)],
    );
    assert!(matches!(r, Err(Trap::MemoryFault { .. }) | Err(Trap::BadIndirectCall { .. })));
}

#[test]
fn per_function_step_attribution_is_exclusive() {
    let m = parse_module(
        r#"
module "t" {
define @leaf(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 2
  ret i32 %2
}
define @mid(i32 %0) -> i32 {
bb0:
  %1 = call i32 @leaf(i32 %0)
  ret i32 %1
}
define @top(i32 %0) -> i32 {
bb0:
  %1 = call i32 @mid(i32 %0)
  %2 = call i32 @mid(i32 %1)
  ret i32 %2
}
}
"#,
    )
    .unwrap();
    let mut i = Interpreter::new(&m);
    let out = i.call_by_name("top", &[Val::Int(1)]).unwrap();
    let leaf = m.lookup_function("leaf").unwrap();
    let mid = m.lookup_function("mid").unwrap();
    let top = m.lookup_function("top").unwrap();
    assert_eq!(i.func_steps(top), 3);
    assert_eq!(i.func_steps(mid), 4, "two invocations of @mid");
    assert_eq!(i.func_steps(leaf), 6, "two invocations of @leaf");
    assert_eq!(out.steps, 13);
}

#[test]
fn fuel_is_shared_across_calls_of_one_interpreter() {
    let m = parse_module(
        r#"
module "t" {
define @burn(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = add i32 %1, 1
  %3 = add i32 %2, 1
  ret i32 %3
}
}
"#,
    )
    .unwrap();
    let mut i = Interpreter::with_limits(
        &m,
        Limits { fuel: 10, memory: 1 << 12, max_depth: 4 },
    );
    assert!(i.call_by_name("burn", &[Val::Int(0)]).is_ok()); // 4 steps
    assert!(i.call_by_name("burn", &[Val::Int(0)]).is_ok()); // 8 steps
    assert_eq!(
        i.call_by_name("burn", &[Val::Int(0)]).unwrap_err(),
        Trap::OutOfFuel,
        "third call exceeds the shared budget"
    );
}
