//! # f3m-prng — deterministic pseudo-randomness without external crates
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `rand` from a registry. This crate provides the small slice of the
//! `rand` API the workloads generator and the randomized tests actually
//! use — seeding, ranges, Bernoulli draws — backed by SplitMix64, whose
//! output is fixed forever (the generated benchmark suites are part of the
//! experimental record and must not drift between toolchain updates).
//!
//! The API intentionally mirrors `rand`'s method names (`seed_from_u64`,
//! `gen_range`, `gen_bool`) so call sites read identically.

/// A small, fast, deterministic generator (SplitMix64).
///
/// Not cryptographically secure; statistically solid for workload
/// generation and property-style tests. One draw consumes exactly one
/// state advance, so generation runs stay in lock-step across code paths
/// that draw the same number of times.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (mirrors
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        // Scramble the seed once so small consecutive seeds (0, 1, 2…)
        // do not produce correlated first draws.
        let mut rng = SmallRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)`,
    /// `rng.gen_range(-31..=31i64)`, `rng.gen_range(0.1..0.4)`.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(-31..=31i64);
            assert!((-31..=31).contains(&b));
            let c = rng.gen_range(0.1..0.4f64);
            assert!((0.1..0.4).contains(&c));
            let d = rng.gen_range(5..=5u32);
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }
}
