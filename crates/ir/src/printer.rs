//! Textual IR printer.
//!
//! The output is a stable, LLVM-flavoured syntax that
//! [`crate::parser`] parses back; `parse(print(m))` is structurally
//! equivalent to `m` (same blocks, instructions, operand structure), which
//! is checked by round-trip property tests.
//!
//! Instruction results and arguments are printed as `%N` in numbering
//! order: arguments first, then every value-producing instruction in block
//! order. Constants are printed inline at their use sites.

use std::fmt::Write as _;

use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{Instruction, Opcode, Predicate};
use crate::function::{Function, Linkage};
use crate::module::Module;
use crate::value::ValueKind;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\" {{", m.name);
    for (_, g) in m.globals() {
        let bytes: Vec<String> = g.init.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(
            out,
            "global @{} : {} = [{}]",
            g.name,
            m.types.display(g.ty),
            bytes.join(", ")
        );
    }
    if m.num_globals() > 0 {
        out.push('\n');
    }
    for (id, f) in m.functions() {
        if f.is_declaration {
            let params: Vec<String> = f.params.iter().map(|&p| m.types.display(p)).collect();
            let _ = writeln!(
                out,
                "declare @{}({}) -> {}",
                f.name,
                params.join(", "),
                m.types.display(f.ret_ty)
            );
        } else {
            out.push_str(&print_function(m, id));
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Prints one function definition.
pub fn print_function(m: &Module, id: FuncId) -> String {
    let f = m.function(id);
    let names = ValueNames::assign(f);
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, &p)| format!("{} %{}", m.types.display(p), i))
        .collect();
    let kw = match f.linkage {
        Linkage::External => "define",
        Linkage::Internal => "define internal",
    };
    let _ = writeln!(
        out,
        "{} @{}({}) -> {} {{",
        kw,
        f.name,
        params.join(", "),
        m.types.display(f.ret_ty)
    );
    for &bb in &f.block_order {
        let _ = writeln!(out, "bb{}:", bb.index());
        for (_, inst) in f.block_insts(bb) {
            let _ = writeln!(out, "  {}", print_inst(m, f, inst, &names));
        }
    }
    out.push_str("}\n");
    out
}

/// Assigns printable `%N` names to arguments and instruction results.
pub struct ValueNames {
    names: Vec<Option<u32>>,
}

impl ValueNames {
    /// Numbers the values of `f`: arguments first, then results in block
    /// order.
    pub fn assign(f: &Function) -> ValueNames {
        let mut names = vec![None; f.num_values()];
        let mut next = 0u32;
        for i in 0..f.num_args() {
            names[f.arg(i).index()] = Some(next);
            next += 1;
        }
        for (_, inst) in f.linked_insts() {
            if let Some(r) = inst.result {
                names[r.index()] = Some(next);
                next += 1;
            }
        }
        ValueNames { names }
    }

    /// Printable name of `v`, if it was assigned one.
    pub fn get(&self, v: ValueId) -> Option<u32> {
        self.names.get(v.index()).copied().flatten()
    }
}

fn operand(m: &Module, f: &Function, names: &ValueNames, v: ValueId) -> String {
    let val = f.value(v);
    match val.kind {
        ValueKind::Arg(_) | ValueKind::Inst(_) => match names.get(v) {
            Some(n) => format!("%{n}"),
            None => format!("%?{}", v.index()), // unlinked def; diagnostic only
        },
        ValueKind::ConstInt(x) => format!("{x}"),
        ValueKind::ConstFloat(bits) => format!("0f{bits:016X}"),
        ValueKind::Undef => "undef".to_string(),
        ValueKind::FuncRef(fid) => format!("@{}", m.function(fid).name),
        ValueKind::GlobalRef(gid) => format!("@{}", m.global(gid).name),
    }
}

fn bb(b: BlockId) -> String {
    format!("bb{}", b.index())
}

/// Prints a single instruction (without trailing newline).
pub fn print_inst(m: &Module, f: &Function, inst: &Instruction, names: &ValueNames) -> String {
    let op = |i: usize| operand(m, f, names, inst.operands[i]);
    let ty = |t| m.types.display(t);
    let res = inst
        .result
        .and_then(|r| names.get(r))
        .map(|n| format!("%{n} = "))
        .unwrap_or_default();
    match inst.op {
        Opcode::Ret => {
            if inst.operands.is_empty() {
                "ret".to_string()
            } else {
                format!("ret {} {}", ty(f.value(inst.operands[0]).ty), op(0))
            }
        }
        Opcode::Br => format!("br {}", bb(inst.blocks[0])),
        Opcode::CondBr => {
            format!("condbr {}, {}, {}", op(0), bb(inst.blocks[0]), bb(inst.blocks[1]))
        }
        Opcode::Unreachable => "unreachable".to_string(),
        Opcode::Invoke => {
            let args: Vec<String> = inst.operands[1..]
                .iter()
                .map(|&a| format!("{} {}", ty(f.value(a).ty), operand(m, f, names, a)))
                .collect();
            format!(
                "{res}invoke {} {}({}) to {} unwind {}",
                ty(inst.ty),
                op(0),
                args.join(", "),
                bb(inst.blocks[0]),
                bb(inst.blocks[1])
            )
        }
        Opcode::FNeg => format!("{res}fneg {} {}", ty(inst.ty), op(0)),
        o if o.is_binary() => {
            format!("{res}{} {} {}, {}", o.mnemonic(), ty(inst.ty), op(0), op(1))
        }
        Opcode::Alloca => format!("{res}alloca {}", ty(inst.aux_ty.expect("alloca aux_ty"))),
        Opcode::Load => format!("{res}load {}, {}", ty(inst.ty), op(0)),
        Opcode::Store => {
            format!("store {} {}, {}", ty(f.value(inst.operands[0]).ty), op(0), op(1))
        }
        Opcode::Gep => format!(
            "{res}gep {}, {}, {} {}",
            ty(inst.aux_ty.expect("gep aux_ty")),
            op(0),
            ty(f.value(inst.operands[1]).ty),
            op(1)
        ),
        o if o.is_cast() => format!(
            "{res}{} {} {} to {}",
            o.mnemonic(),
            ty(f.value(inst.operands[0]).ty),
            op(0),
            ty(inst.ty)
        ),
        Opcode::ICmp | Opcode::FCmp => {
            let pred = match inst.pred.expect("cmp predicate") {
                Predicate::Int(p) => p.mnemonic(),
                Predicate::Float(p) => p.mnemonic(),
            };
            format!(
                "{res}{} {} {} {}, {}",
                inst.op.mnemonic(),
                pred,
                ty(f.value(inst.operands[0]).ty),
                op(0),
                op(1)
            )
        }
        Opcode::Select => format!("{res}select {}, {} {}, {}", op(0), ty(inst.ty), op(1), op(2)),
        Opcode::Phi => {
            let arms: Vec<String> = inst
                .operands
                .iter()
                .zip(inst.blocks.iter())
                .map(|(&v, &b)| format!("[ {}, {} ]", operand(m, f, names, v), bb(b)))
                .collect();
            format!("{res}phi {} {}", ty(inst.ty), arms.join(", "))
        }
        Opcode::Call => {
            let args: Vec<String> = inst.operands[1..]
                .iter()
                .map(|&a| format!("{} {}", ty(f.value(a).ty), operand(m, f, names, a)))
                .collect();
            format!("{res}call {} {}({})", ty(inst.ty), op(0), args.join(", "))
        }
        o => unreachable!("unhandled opcode in printer: {o:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::IntPredicate;

    fn demo_module() -> Module {
        let mut m = Module::new("demo");
        let i32t = m.types.int(32);
        let mut f = Function::new("max", vec![i32t, i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let c = b.icmp(IntPredicate::Sgt, b.func().arg(0), b.func().arg(1));
            let r = b.select(c, b.func().arg(0), b.func().arg(1));
            b.ret(Some(r));
        }
        m.add_function(f);
        m
    }

    #[test]
    fn prints_expected_shape() {
        let m = demo_module();
        let text = print_module(&m);
        assert!(text.contains("define @max(i32 %0, i32 %1) -> i32 {"), "{text}");
        assert!(text.contains("%2 = icmp sgt i32 %0, %1"), "{text}");
        assert!(text.contains("%3 = select %2, i32 %0, %1"), "{text}");
        assert!(text.contains("ret i32 %3"), "{text}");
    }

    #[test]
    fn prints_constants_inline() {
        let mut m = Module::new("c");
        let i32t = m.types.int(32);
        let mut f = Function::new("inc", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let one = b.const_int(i32t, 1);
            let r = b.add(b.func().arg(0), one);
            b.ret(Some(r));
        }
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("%1 = add i32 %0, 1"), "{text}");
    }

    #[test]
    fn prints_declarations() {
        let mut m = Module::new("d");
        let i64t = m.types.int(64);
        m.add_function(Function::new_declaration("ext", vec![i64t], i64t));
        let text = print_module(&m);
        assert!(text.contains("declare @ext(i64) -> i64"), "{text}");
    }

    #[test]
    fn prints_float_constants_as_bits() {
        let mut m = Module::new("f");
        let f64t = m.types.f64();
        let mut f = Function::new("one", vec![], f64t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let one = b.const_float(f64t, 1.0);
            b.ret(Some(one));
        }
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("ret f64 0f3FF0000000000000"), "{text}");
    }
}
