//! Control-flow graph utilities: successors, predecessors, reachability and
//! reverse post-order.

use crate::ids::BlockId;
use crate::function::Function;

/// Predecessor/successor maps plus a reverse post-order for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry. Unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a declaration (has no blocks).
    pub fn compute(f: &Function) -> Cfg {
        let n = f.block_arena_len();
        assert!(f.num_blocks() > 0, "cannot compute CFG of a declaration");
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &bb in &f.block_order {
            if let Some((_, term)) = f.terminator(bb) {
                for &s in term.successors() {
                    succs[bb.index()].push(s);
                    preds[s.index()].push(bb);
                }
            }
        }
        // Iterative DFS computing post-order.
        let entry = f.entry();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        // Stack of (block, next successor index to visit).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
            let ss = &succs[bb.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![None; n];
        for (i, &bb) in post.iter().enumerate() {
            rpo_index[bb.index()] = Some(i as u32);
        }
        Cfg { preds, succs, rpo: post, rpo_index }
    }

    /// Predecessors of `bb` (with duplicates if a predecessor branches to
    /// `bb` on several edges).
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.index()]
    }

    /// Successors of `bb`.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.index()]
    }

    /// Whether `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index[bb.index()].is_some()
    }

    /// Position of `bb` in the reverse post-order, if reachable.
    pub fn rpo_index(&self, bb: BlockId) -> Option<u32> {
        self.rpo_index[bb.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::inst::IntPredicate;
    use crate::types::TypeStore;

    fn diamond() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let mut f = Function::new("d", vec![i32t, i32t], i32t);
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.position_at_end(entry);
        let c = b.icmp(IntPredicate::Slt, b.func().arg(0), b.func().arg(1));
        b.cond_br(c, t, e);
        b.position_at_end(t);
        let x = b.add(b.func().arg(0), b.func().arg(1));
        b.br(j);
        b.position_at_end(e);
        let y = b.sub(b.func().arg(0), b.func().arg(1));
        b.br(j);
        b.position_at_end(j);
        let p = b.phi(i32t, &[(x, t), (y, e)]);
        b.ret(Some(p));
        (f, entry, t, e, j)
    }

    #[test]
    fn diamond_edges() {
        let (f, entry, t, e, j) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.preds(j).len(), 2);
        assert!(cfg.preds(j).contains(&t) && cfg.preds(j).contains(&e));
        assert!(cfg.preds(entry).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let (f, entry, _, _, j) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo.first(), Some(&entry));
        assert_eq!(cfg.rpo.last(), Some(&j));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let mut f = Function::new("u", vec![], i32t);
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        let dead = b.create_block("dead");
        b.position_at_end(entry);
        let c0 = b.const_int(i32t, 1);
        b.ret(Some(c0));
        b.position_at_end(dead);
        b.unreachable();
        let cfg = Cfg::compute(&f);
        assert!(cfg.is_reachable(entry));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo_index(dead), None);
    }

    #[test]
    fn rpo_respects_topological_order_in_dags() {
        let (f, entry, t, e, j) = diamond();
        let cfg = Cfg::compute(&f);
        let idx = |b| cfg.rpo_index(b).unwrap();
        assert!(idx(entry) < idx(t));
        assert!(idx(entry) < idx(e));
        assert!(idx(t) < idx(j));
        assert!(idx(e) < idx(j));
    }
}
