//! Ergonomic construction of IR.
//!
//! [`FunctionBuilder`] keeps a current insertion block and exposes one
//! method per instruction kind, handling result-value creation and typing.
//!
//! # Examples
//!
//! ```
//! use f3m_ir::builder::FunctionBuilder;
//! use f3m_ir::function::Function;
//! use f3m_ir::types::TypeStore;
//!
//! let mut ts = TypeStore::new();
//! let i32t = ts.int(32);
//! let mut f = Function::new("add3", vec![i32t, i32t, i32t], i32t);
//! let mut b = FunctionBuilder::new(&mut ts, &mut f);
//! let entry = b.create_block("entry");
//! b.position_at_end(entry);
//! let t0 = b.add(b.func().arg(0), b.func().arg(1));
//! let t1 = b.add(t0, b.func().arg(2));
//! b.ret(Some(t1));
//! assert_eq!(f.num_linked_insts(), 3);
//! ```

use crate::ids::{BlockId, InstId, ValueId};
use crate::inst::{FloatPredicate, Instruction, IntPredicate, Opcode, Predicate};
use crate::function::Function;
use crate::types::{TypeId, TypeStore};

/// Builder for one function's body.
pub struct FunctionBuilder<'a> {
    ts: &'a mut TypeStore,
    f: &'a mut Function,
    cur: Option<BlockId>,
}

impl<'a> FunctionBuilder<'a> {
    /// Creates a builder over `f`, with no insertion point yet.
    pub fn new(ts: &'a mut TypeStore, f: &'a mut Function) -> Self {
        FunctionBuilder { ts, f, cur: None }
    }

    /// The function under construction.
    pub fn func(&self) -> &Function {
        self.f
    }

    /// Mutable access to the function under construction, for operations
    /// the builder does not wrap (constant interning, phi patching).
    pub fn func_mut(&mut self) -> &mut Function {
        self.f
    }

    /// The type store.
    pub fn types(&mut self) -> &mut TypeStore {
        self.ts
    }

    /// Appends a new block (does not change the insertion point).
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.f.add_block(name)
    }

    /// Sets the insertion point to the end of `bb`.
    pub fn position_at_end(&mut self, bb: BlockId) {
        self.cur = Some(bb);
    }

    /// Current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point was set.
    pub fn current_block(&self) -> BlockId {
        self.cur.expect("no insertion point set")
    }

    fn emit(&mut self, inst: Instruction) -> (InstId, Option<ValueId>) {
        let bb = self.current_block();
        self.f.append_inst(self.ts, bb, inst)
    }

    fn emit_valued(&mut self, inst: Instruction) -> ValueId {
        let op = inst.op;
        self.emit(inst).1.unwrap_or_else(|| panic!("{op:?} produced no value"))
    }

    fn inst(
        op: Opcode,
        ty: TypeId,
        operands: Vec<ValueId>,
        blocks: Vec<BlockId>,
    ) -> Instruction {
        Instruction {
            op,
            ty,
            operands,
            blocks,
            pred: None,
            aux_ty: None,
            parent: BlockId::from_index(0),
            result: None,
        }
    }

    // ---- constants (forwarded to the function, for convenience) ---------

    /// Integer constant of type `ty`.
    pub fn const_int(&mut self, ty: TypeId, v: i64) -> ValueId {
        self.f.const_int(self.ts, ty, v)
    }

    /// Float constant of type `ty`.
    pub fn const_float(&mut self, ty: TypeId, v: f64) -> ValueId {
        self.f.const_float(ty, v)
    }

    // ---- arithmetic -------------------------------------------------------

    /// Generic binary operation; the result type is the lhs type.
    pub fn binary(&mut self, op: Opcode, lhs: ValueId, rhs: ValueId) -> ValueId {
        assert!(op.is_binary(), "binary() with non-binary opcode {op:?}");
        let ty = self.f.value(lhs).ty;
        self.emit_valued(Self::inst(op, ty, vec![lhs, rhs], vec![]))
    }

    /// `add`.
    pub fn add(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::Add, l, r)
    }

    /// `sub`.
    pub fn sub(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::Sub, l, r)
    }

    /// `mul`.
    pub fn mul(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::Mul, l, r)
    }

    /// `fneg`.
    pub fn fneg(&mut self, x: ValueId) -> ValueId {
        let ty = self.f.value(x).ty;
        self.emit_valued(Self::inst(Opcode::FNeg, ty, vec![x], vec![]))
    }

    // ---- comparisons ------------------------------------------------------

    /// `icmp <pred>`; result is `i1`.
    pub fn icmp(&mut self, pred: IntPredicate, lhs: ValueId, rhs: ValueId) -> ValueId {
        let b = self.ts.bool();
        let mut i = Self::inst(Opcode::ICmp, b, vec![lhs, rhs], vec![]);
        i.pred = Some(Predicate::Int(pred));
        self.emit_valued(i)
    }

    /// `fcmp <pred>`; result is `i1`.
    pub fn fcmp(&mut self, pred: FloatPredicate, lhs: ValueId, rhs: ValueId) -> ValueId {
        let b = self.ts.bool();
        let mut i = Self::inst(Opcode::FCmp, b, vec![lhs, rhs], vec![]);
        i.pred = Some(Predicate::Float(pred));
        self.emit_valued(i)
    }

    /// `select cond, if_true, if_false`.
    pub fn select(&mut self, cond: ValueId, t: ValueId, e: ValueId) -> ValueId {
        let ty = self.f.value(t).ty;
        self.emit_valued(Self::inst(Opcode::Select, ty, vec![cond, t, e], vec![]))
    }

    // ---- memory -------------------------------------------------------------

    /// `alloca ty` — stack slot; result is `ptr`.
    pub fn alloca(&mut self, ty: TypeId) -> ValueId {
        let p = self.ts.ptr();
        let mut i = Self::inst(Opcode::Alloca, p, vec![], vec![]);
        i.aux_ty = Some(ty);
        self.emit_valued(i)
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, ty: TypeId, ptr: ValueId) -> ValueId {
        self.emit_valued(Self::inst(Opcode::Load, ty, vec![ptr], vec![]))
    }

    /// `store value, ptr`.
    pub fn store(&mut self, value: ValueId, ptr: ValueId) {
        let v = self.ts.void();
        self.emit(Self::inst(Opcode::Store, v, vec![value, ptr], vec![]));
    }

    /// `gep elem_ty, ptr, index` — computes `ptr + index * sizeof(elem_ty)`.
    pub fn gep(&mut self, elem_ty: TypeId, ptr: ValueId, index: ValueId) -> ValueId {
        let p = self.ts.ptr();
        let mut i = Self::inst(Opcode::Gep, p, vec![ptr, index], vec![]);
        i.aux_ty = Some(elem_ty);
        self.emit_valued(i)
    }

    // ---- casts ---------------------------------------------------------------

    /// Generic cast to `ty`.
    pub fn cast(&mut self, op: Opcode, x: ValueId, ty: TypeId) -> ValueId {
        assert!(op.is_cast(), "cast() with non-cast opcode {op:?}");
        self.emit_valued(Self::inst(op, ty, vec![x], vec![]))
    }

    // ---- control flow ----------------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        let v = self.ts.void();
        self.emit(Self::inst(Opcode::Br, v, vec![], vec![target]));
    }

    /// Conditional branch on an `i1`.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        let v = self.ts.void();
        self.emit(Self::inst(Opcode::CondBr, v, vec![cond], vec![then_bb, else_bb]));
    }

    /// Return (with a value, or `None` for `ret void`).
    pub fn ret(&mut self, value: Option<ValueId>) {
        let v = self.ts.void();
        let ops = value.into_iter().collect();
        self.emit(Self::inst(Opcode::Ret, v, ops, vec![]));
    }

    /// `unreachable`.
    pub fn unreachable(&mut self) {
        let v = self.ts.void();
        self.emit(Self::inst(Opcode::Unreachable, v, vec![], vec![]));
    }

    /// `phi ty [v, bb]...`.
    pub fn phi(&mut self, ty: TypeId, incomings: &[(ValueId, BlockId)]) -> ValueId {
        let (ops, bbs): (Vec<_>, Vec<_>) = incomings.iter().copied().unzip();
        self.emit_valued(Self::inst(Opcode::Phi, ty, ops, bbs))
    }

    /// Direct or indirect call; `ret_ty` is the callee's return type.
    /// Returns `None` when `ret_ty` is `void`.
    pub fn call(&mut self, callee: ValueId, args: &[ValueId], ret_ty: TypeId) -> Option<ValueId> {
        let mut ops = vec![callee];
        ops.extend_from_slice(args);
        self.emit(Self::inst(Opcode::Call, ret_ty, ops, vec![])).1
    }

    /// `invoke callee(args) to normal unwind exceptional`. Terminator.
    /// Returns the result value when `ret_ty` is first-class.
    pub fn invoke(
        &mut self,
        callee: ValueId,
        args: &[ValueId],
        ret_ty: TypeId,
        normal: BlockId,
        unwind: BlockId,
    ) -> Option<ValueId> {
        let mut ops = vec![callee];
        ops.extend_from_slice(args);
        self.emit(Self::inst(Opcode::Invoke, ret_ty, ops, vec![normal, unwind])).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TypeStore, Function) {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let f = Function::new("t", vec![i32t, i32t], i32t);
        (ts, f)
    }

    #[test]
    fn builds_diamond_cfg() {
        let (mut ts, mut f) = setup();
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        let then_bb = b.create_block("then");
        let else_bb = b.create_block("else");
        let join = b.create_block("join");
        b.position_at_end(entry);
        let c = b.icmp(IntPredicate::Slt, b.func().arg(0), b.func().arg(1));
        b.cond_br(c, then_bb, else_bb);
        b.position_at_end(then_bb);
        let x = b.add(b.func().arg(0), b.func().arg(1));
        b.br(join);
        b.position_at_end(else_bb);
        let y = b.sub(b.func().arg(0), b.func().arg(1));
        b.br(join);
        b.position_at_end(join);
        let p = b.phi(b.func().value(x).ty, &[(x, then_bb), (y, else_bb)]);
        b.ret(Some(p));
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_linked_insts(), 8);
        let term = f.terminator(f.entry()).unwrap().1;
        assert_eq!(term.op, Opcode::CondBr);
        assert_eq!(term.successors().len(), 2);
    }

    #[test]
    fn call_void_returns_none() {
        let (mut ts, mut f) = setup();
        let void = ts.void();
        let ptr = ts.ptr();
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        let callee = b.f.func_ref(crate::ids::FuncId::from_index(0), ptr);
        let r = b.call(callee, &[], void);
        assert!(r.is_none());
    }

    #[test]
    fn memory_ops_type_correctly() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        let slot = b.alloca(i32t);
        b.store(b.func().arg(0), slot);
        let v = b.load(i32t, slot);
        b.ret(Some(v));
        let slot_ty = b.func().value(slot).ty;
        let v_ty = b.func().value(v).ty;
        assert!(ts.is_ptr(slot_ty));
        assert_eq!(v_ty, i32t);
    }

    #[test]
    #[should_panic(expected = "non-binary opcode")]
    fn binary_rejects_non_binary() {
        let (mut ts, mut f) = setup();
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        b.binary(Opcode::ICmp, b.func().arg(0), b.func().arg(1));
    }
}
