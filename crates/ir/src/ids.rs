//! Lightweight entity handles.
//!
//! All IR entities live in per-function or per-module arenas and are referred
//! to by dense `u32` indices. Handles are only meaningful together with the
//! arena that produced them; mixing handles across functions is a logic error
//! that the verifier will catch (operand out of range / wrong parent).

use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Constructs a handle from a raw index.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("arena index overflow"))
            }

            /// Raw index of this handle inside its arena.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// Handle to a [`crate::value::Value`] inside a function.
    ValueId,
    "v"
);
entity_id!(
    /// Handle to an [`crate::inst::Instruction`] inside a function.
    InstId,
    "inst"
);
entity_id!(
    /// Handle to a basic block inside a function.
    BlockId,
    "bb"
);
entity_id!(
    /// Handle to a function inside a [`crate::module::Module`].
    FuncId,
    "fn"
);
entity_id!(
    /// Handle to a global variable inside a [`crate::module::Module`].
    GlobalId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let v = ValueId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v:?}"), "v42");
        let b = BlockId::from_index(7);
        assert_eq!(format!("{b:?}"), "bb7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(InstId::from_index(1) < InstId::from_index(2));
    }
}
