//! Textual IR parser.
//!
//! Parses the syntax produced by [`crate::printer`]. The parser is a
//! hand-written recursive-descent parser over a small token stream; function
//! bodies are built in two phases so that phi-nodes can reference values
//! defined later in the body (back edges).
//!
//! # Examples
//!
//! ```
//! use f3m_ir::parser::parse_module;
//!
//! let m = parse_module(r#"
//! module "demo" {
//! define @inc(i32 %0) -> i32 {
//! bb0:
//!   %1 = add i32 %0, 1
//!   ret i32 %1
//! }
//! }
//! "#).unwrap();
//! assert_eq!(m.num_functions(), 1);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::ids::{BlockId, ValueId};
use crate::inst::{FloatPredicate, Instruction, IntPredicate, Opcode, Predicate};
use crate::function::{Function, Linkage};
use crate::module::{Global, Module};
use crate::types::TypeId;
use crate::verify::verify_module;

/// Parse failure with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module and verifies it.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors; verifier failures are
/// reported as a parse error on line 0 listing the problems.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let m = parse_module_unverified(src)?;
    verify_module(&m).map_err(|errs| ParseError {
        line: 0,
        msg: format!(
            "verification failed: {}",
            errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ")
        ),
    })?;
    Ok(m)
}

/// Parses a module without running the verifier (useful in tests that
/// construct deliberately invalid IR).
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors.
pub fn parse_module_unverified(src: &str) -> Result<Module, ParseError> {
    Parser::new(src).module()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Bare word: mnemonics, type names, labels, `module`, `define`...
    Word(String),
    /// `%N` local value reference.
    Local(u32),
    /// `@name` symbol reference.
    Sym(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// `0fXXXXXXXXXXXXXXXX` float bit pattern.
    FloatBits(u64),
    /// Quoted string.
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Arrow,
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0;
    let err = |line: usize, msg: String| ParseError { line, msg };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                toks.push(SpannedTok { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                toks.push(SpannedTok { tok: Tok::RBrace, line });
                i += 1;
            }
            '(' => {
                toks.push(SpannedTok { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok { tok: Tok::RParen, line });
                i += 1;
            }
            '[' => {
                toks.push(SpannedTok { tok: Tok::LBracket, line });
                i += 1;
            }
            ']' => {
                toks.push(SpannedTok { tok: Tok::RBracket, line });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok { tok: Tok::Comma, line });
                i += 1;
            }
            ':' => {
                toks.push(SpannedTok { tok: Tok::Colon, line });
                i += 1;
            }
            '=' => {
                toks.push(SpannedTok { tok: Tok::Eq, line });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(SpannedTok { tok: Tok::Arrow, line });
                    i += 2;
                } else {
                    // negative integer
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(line, format!("bad integer `{text}`")))?;
                    toks.push(SpannedTok { tok: Tok::Int(v), line });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err(line, "unterminated string".into()));
                }
                toks.push(SpannedTok { tok: Tok::Str(src[start..j].to_string()), line });
                i = j + 1;
            }
            '%' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(err(line, "expected number after `%`".into()));
                }
                let v: u32 = src[start..j]
                    .parse()
                    .map_err(|_| err(line, "bad local number".into()))?;
                toks.push(SpannedTok { tok: Tok::Local(v), line });
                i = j;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    j += 1;
                }
                if j == start {
                    return Err(err(line, "expected name after `@`".into()));
                }
                toks.push(SpannedTok { tok: Tok::Sym(src[start..j].to_string()), line });
                i = j;
            }
            '0' if i + 1 < bytes.len() && bytes[i + 1] == b'f' => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
                    j += 1;
                }
                let v = u64::from_str_radix(&src[start..j], 16)
                    .map_err(|_| err(line, "bad float bits".into()))?;
                toks.push(SpannedTok { tok: Tok::FloatBits(v), line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| err(line, format!("integer overflow `{text}`")))?;
                toks.push(SpannedTok { tok: Tok::Int(v), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                toks.push(SpannedTok { tok: Tok::Word(src[start..i].to_string()), line });
            }
            other => return Err(err(line, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Operand placeholder resolved in phase B of body construction.
#[derive(Clone, Debug)]
enum RawOperand {
    Local(u32),
    Int(TypeId, i64),
    Float(TypeId, u64),
    Undef(TypeId),
    Sym(TypeId, String),
}

#[derive(Clone, Debug)]
struct RawInst {
    line: usize,
    op: Opcode,
    ty: TypeId,
    aux_ty: Option<TypeId>,
    pred: Option<Predicate>,
    operands: Vec<RawOperand>,
    blocks: Vec<String>,
    result_name: Option<u32>,
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Parser {
        match lex(src) {
            Ok(toks) => Parser { toks, pos: 0 },
            Err(e) => Parser {
                toks: vec![SpannedTok { tok: Tok::Str(e.msg.clone()), line: e.line }],
                pos: usize::MAX, // poisoned; module() surfaces the error
            },
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        if self.pos == usize::MAX {
            // Lexing failed; reproduce the error.
            let line = self.toks[0].line;
            if let Tok::Str(msg) = &self.toks[0].tok {
                return Err(ParseError { line, msg: msg.clone() });
            }
            unreachable!()
        }
        self.expect_word("module")?;
        let name = match self.next()? {
            (Tok::Str(s), _) => s,
            (_, line) => return Err(ParseError { line, msg: "expected module name".into() }),
        };
        self.expect(Tok::LBrace)?;
        let mut m = Module::new(name);

        // First pass over declarations so call operands can resolve symbols
        // lazily: we simply parse in order, but create constant FuncRef
        // operands by name at body-build time, when the whole symbol table
        // exists. To allow forward references, we scan the token stream for
        // all `define`/`declare` headers up front.
        self.predeclare(&mut m)?;

        loop {
            match self.peek()? {
                (Tok::RBrace, _) => {
                    self.next()?;
                    break;
                }
                (Tok::Word(w), _) if w == "global" => self.global(&mut m)?,
                (Tok::Word(w), _) if w == "declare" => self.declare_skip(&mut m)?,
                (Tok::Word(w), _) if w == "define" => self.define(&mut m)?,
                (_, line) => {
                    return Err(ParseError {
                        line,
                        msg: "expected `global`, `declare`, `define` or `}`".into(),
                    })
                }
            }
        }
        Ok(m)
    }

    /// Pre-scan: register every function (and global) symbol with its
    /// signature so that references resolve regardless of order.
    fn predeclare(&mut self, m: &mut Module) -> Result<(), ParseError> {
        let saved = self.pos;
        loop {
            match self.peek() {
                Err(_) => break,
                Ok((Tok::RBrace, _)) => break,
                Ok((Tok::Word(w), _)) if w == "global" => {
                    self.next()?;
                    let (name, line) = self.sym()?;
                    self.expect(Tok::Colon)?;
                    let ty = self.ty(m)?;
                    self.expect(Tok::Eq)?;
                    self.expect(Tok::LBracket)?;
                    let mut init = Vec::new();
                    loop {
                        match self.next()? {
                            (Tok::RBracket, _) => break,
                            (Tok::Int(v), _) => {
                                init.push(u8::try_from(v).map_err(|_| ParseError {
                                    line,
                                    msg: "global byte out of range".into(),
                                })?)
                            }
                            (Tok::Comma, _) => {}
                            (_, line) => {
                                return Err(ParseError { line, msg: "bad global init".into() })
                            }
                        }
                    }
                    m.add_global(Global { name, ty, init });
                }
                Ok((Tok::Word(w), _)) if w == "declare" || w == "define" => {
                    let is_decl = w == "declare";
                    self.next()?;
                    if !is_decl {
                        if let (Tok::Word(w2), _) = self.peek()? {
                            if w2 == "internal" {
                                self.next()?;
                            }
                        }
                    }
                    let (name, _) = self.sym()?;
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    loop {
                        match self.peek()? {
                            (Tok::RParen, _) => {
                                self.next()?;
                                break;
                            }
                            (Tok::Comma, _) => {
                                self.next()?;
                            }
                            _ => {
                                params.push(self.ty(m)?);
                                // Parameter name in definitions.
                                if let (Tok::Local(_), _) = self.peek()? {
                                    self.next()?;
                                }
                            }
                        }
                    }
                    self.expect(Tok::Arrow)?;
                    let ret = self.ty(m)?;
                    let f = if is_decl {
                        Function::new_declaration(name, params, ret)
                    } else {
                        Function::new(name, params, ret)
                    };
                    m.add_function(f);
                    // Skip over the body if present.
                    if let Ok((Tok::LBrace, _)) = self.peek() {
                        let mut depth = 0usize;
                        loop {
                            match self.next()? {
                                (Tok::LBrace, _) => depth += 1,
                                (Tok::RBrace, _) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
                Ok(_) => {
                    self.next()?;
                }
            }
        }
        self.pos = saved;
        Ok(())
    }

    /// Skips a `global` line in the main pass (already handled in predeclare).
    fn global(&mut self, m: &mut Module) -> Result<(), ParseError> {
        self.next()?; // global
        self.sym()?;
        self.expect(Tok::Colon)?;
        self.ty(m)?;
        self.expect(Tok::Eq)?;
        self.expect(Tok::LBracket)?;
        loop {
            if let (Tok::RBracket, _) = self.next()? {
                break;
            }
        }
        Ok(())
    }

    /// Skips a `declare` line in the main pass.
    fn declare_skip(&mut self, m: &mut Module) -> Result<(), ParseError> {
        self.next()?; // declare
        self.sym()?;
        self.expect(Tok::LParen)?;
        loop {
            match self.peek()? {
                (Tok::RParen, _) => {
                    self.next()?;
                    break;
                }
                (Tok::Comma, _) => {
                    self.next()?;
                }
                _ => {
                    self.ty(m)?;
                }
            }
        }
        self.expect(Tok::Arrow)?;
        self.ty(m)?;
        Ok(())
    }

    fn define(&mut self, m: &mut Module) -> Result<(), ParseError> {
        self.next()?; // define
        let mut linkage = Linkage::External;
        if let (Tok::Word(w), _) = self.peek()? {
            if w == "internal" {
                linkage = Linkage::Internal;
                self.next()?;
            }
        }
        let (name, line) = self.sym()?;
        // Header already registered during predeclare; skip to `{`.
        self.expect(Tok::LParen)?;
        loop {
            if let (Tok::RParen, _) = self.next()? { break }
        }
        self.expect(Tok::Arrow)?;
        self.ty(m)?;
        self.expect(Tok::LBrace)?;

        let fid = m.lookup_function(&name).ok_or_else(|| ParseError {
            line,
            msg: format!("function @{name} not predeclared"),
        })?;
        m.function_mut(fid).linkage = linkage;

        // Parse body: labels + raw instructions.
        let mut labels: Vec<String> = Vec::new();
        let mut body: Vec<(usize, Vec<RawInst>)> = Vec::new(); // (label idx, insts)
        loop {
            match self.peek()? {
                (Tok::RBrace, _) => {
                    self.next()?;
                    break;
                }
                (Tok::Word(w), line) => {
                    // Either a label `bbN:` or an instruction mnemonic.
                    if let (Tok::Colon, _) = self.peek_ahead(1)? {
                        if Opcode::from_mnemonic(&w).is_none() {
                            self.next()?;
                            self.next()?;
                            labels.push(w.clone());
                            body.push((labels.len() - 1, Vec::new()));
                            continue;
                        }
                    }
                    if body.is_empty() {
                        return Err(ParseError {
                            line,
                            msg: "instruction before first label".into(),
                        });
                    }
                    let inst = self.raw_inst(m, None)?;
                    body.last_mut().unwrap().1.push(inst);
                }
                (Tok::Local(n), _) => {
                    self.next()?;
                    self.expect(Tok::Eq)?;
                    if body.is_empty() {
                        return Err(ParseError {
                            line: self.cur_line(),
                            msg: "instruction before first label".into(),
                        });
                    }
                    let inst = self.raw_inst(m, Some(n))?;
                    body.last_mut().unwrap().1.push(inst);
                }
                (_, line) => {
                    return Err(ParseError { line, msg: "expected label or instruction".into() })
                }
            }
        }

        build_body(m, fid, &labels, &body)?;
        Ok(())
    }

    fn raw_inst(&mut self, m: &mut Module, result_name: Option<u32>) -> Result<RawInst, ParseError> {
        let (tok, line) = self.next()?;
        let word = match tok {
            Tok::Word(w) => w,
            _ => return Err(ParseError { line, msg: "expected instruction mnemonic".into() }),
        };
        let op = Opcode::from_mnemonic(&word)
            .ok_or_else(|| ParseError { line, msg: format!("unknown mnemonic `{word}`") })?;
        let void = m.types.void();
        let boolean = m.types.bool();
        let ptr = m.types.ptr();
        let mut inst = RawInst {
            line,
            op,
            ty: void,
            aux_ty: None,
            pred: None,
            operands: Vec::new(),
            blocks: Vec::new(),
            result_name,
        };
        match op {
            Opcode::Ret => {
                // `ret` or `ret T opnd` — lookahead: next token a type word?
                if self.at_type() {
                    let t = self.ty(m)?;
                    let o = self.operand(t)?;
                    inst.operands.push(o);
                }
            }
            Opcode::Br => inst.blocks.push(self.label()?),
            Opcode::CondBr => {
                inst.operands.push(self.operand(boolean)?);
                self.expect(Tok::Comma)?;
                inst.blocks.push(self.label()?);
                self.expect(Tok::Comma)?;
                inst.blocks.push(self.label()?);
            }
            Opcode::Unreachable => {}
            Opcode::Invoke | Opcode::Call => {
                let ret = self.ty(m)?;
                inst.ty = ret;
                inst.operands.push(self.operand(ptr)?); // callee
                self.expect(Tok::LParen)?;
                loop {
                    match self.peek()? {
                        (Tok::RParen, _) => {
                            self.next()?;
                            break;
                        }
                        (Tok::Comma, _) => {
                            self.next()?;
                        }
                        _ => {
                            let t = self.ty(m)?;
                            let o = self.operand(t)?;
                            inst.operands.push(o);
                        }
                    }
                }
                if op == Opcode::Invoke {
                    self.expect_word("to")?;
                    inst.blocks.push(self.label()?);
                    self.expect_word("unwind")?;
                    inst.blocks.push(self.label()?);
                }
            }
            Opcode::FNeg => {
                let t = self.ty(m)?;
                inst.ty = t;
                inst.operands.push(self.operand(t)?);
            }
            o if o.is_binary() => {
                let t = self.ty(m)?;
                inst.ty = t;
                inst.operands.push(self.operand(t)?);
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(t)?);
            }
            Opcode::Alloca => {
                let t = self.ty(m)?;
                inst.aux_ty = Some(t);
                inst.ty = ptr;
            }
            Opcode::Load => {
                let t = self.ty(m)?;
                inst.ty = t;
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(ptr)?);
            }
            Opcode::Store => {
                let t = self.ty(m)?;
                inst.operands.push(self.operand(t)?);
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(ptr)?);
            }
            Opcode::Gep => {
                let elem = self.ty(m)?;
                inst.aux_ty = Some(elem);
                inst.ty = ptr;
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(ptr)?);
                self.expect(Tok::Comma)?;
                let idx_t = self.ty(m)?;
                inst.operands.push(self.operand(idx_t)?);
            }
            o if o.is_cast() => {
                let from = self.ty(m)?;
                inst.operands.push(self.operand(from)?);
                self.expect_word("to")?;
                inst.ty = self.ty(m)?;
            }
            Opcode::ICmp | Opcode::FCmp => {
                let (ptok, pline) = self.next()?;
                let pw = match ptok {
                    Tok::Word(w) => w,
                    _ => return Err(ParseError { line: pline, msg: "expected predicate".into() }),
                };
                inst.pred = Some(if op == Opcode::ICmp {
                    Predicate::Int(IntPredicate::from_mnemonic(&pw).ok_or_else(|| ParseError {
                        line: pline,
                        msg: format!("bad int predicate `{pw}`"),
                    })?)
                } else {
                    Predicate::Float(FloatPredicate::from_mnemonic(&pw).ok_or_else(|| {
                        ParseError { line: pline, msg: format!("bad float predicate `{pw}`") }
                    })?)
                });
                let t = self.ty(m)?;
                inst.ty = boolean;
                inst.operands.push(self.operand(t)?);
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(t)?);
            }
            Opcode::Select => {
                inst.operands.push(self.operand(boolean)?);
                self.expect(Tok::Comma)?;
                let t = self.ty(m)?;
                inst.ty = t;
                inst.operands.push(self.operand(t)?);
                self.expect(Tok::Comma)?;
                inst.operands.push(self.operand(t)?);
            }
            Opcode::Phi => {
                let t = self.ty(m)?;
                inst.ty = t;
                loop {
                    self.expect(Tok::LBracket)?;
                    inst.operands.push(self.operand(t)?);
                    self.expect(Tok::Comma)?;
                    inst.blocks.push(self.label()?);
                    self.expect(Tok::RBracket)?;
                    if let (Tok::Comma, _) = self.peek()? {
                        self.next()?;
                    } else {
                        break;
                    }
                }
            }
            o => {
                return Err(ParseError { line, msg: format!("cannot parse opcode {o:?}") });
            }
        }
        Ok(inst)
    }

    // ---- token helpers ----------------------------------------------------

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        let t = self.toks.get(self.pos).cloned().ok_or(ParseError {
            line: self.cur_line(),
            msg: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok((t.tok, t.line))
    }

    fn peek(&self) -> Result<(Tok, usize), ParseError> {
        self.toks
            .get(self.pos)
            .cloned()
            .map(|t| (t.tok, t.line))
            .ok_or(ParseError { line: self.cur_line(), msg: "unexpected end of input".into() })
    }

    fn peek_ahead(&self, n: usize) -> Result<(Tok, usize), ParseError> {
        self.toks
            .get(self.pos + n)
            .cloned()
            .map(|t| (t.tok, t.line))
            .ok_or(ParseError { line: self.cur_line(), msg: "unexpected end of input".into() })
    }

    fn cur_line(&self) -> usize {
        self.toks.get(self.pos.saturating_sub(1)).map(|t| t.line).unwrap_or(0)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let (got, line) = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(ParseError { line, msg: format!("expected {want:?}, found {got:?}") })
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), ParseError> {
        let (got, line) = self.next()?;
        match got {
            Tok::Word(s) if s == w => Ok(()),
            other => Err(ParseError { line, msg: format!("expected `{w}`, found {other:?}") }),
        }
    }

    fn sym(&mut self) -> Result<(String, usize), ParseError> {
        let (got, line) = self.next()?;
        match got {
            Tok::Sym(s) => Ok((s, line)),
            other => Err(ParseError { line, msg: format!("expected `@name`, found {other:?}") }),
        }
    }

    fn label(&mut self) -> Result<String, ParseError> {
        let (got, line) = self.next()?;
        match got {
            Tok::Word(w) => Ok(w),
            other => Err(ParseError { line, msg: format!("expected label, found {other:?}") }),
        }
    }

    fn at_type(&self) -> bool {
        match self.peek() {
            Ok((Tok::Word(w), _)) => {
                w == "void"
                    || w == "ptr"
                    || w == "f32"
                    || w == "f64"
                    || w == "fn"
                    || (w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) && w.len() > 1)
            }
            Ok((Tok::LBracket, _)) | Ok((Tok::LBrace, _)) => true,
            _ => false,
        }
    }

    fn ty(&mut self, m: &mut Module) -> Result<TypeId, ParseError> {
        let (tok, line) = self.next()?;
        match tok {
            Tok::Word(w) => match w.as_str() {
                "void" => Ok(m.types.void()),
                "ptr" => Ok(m.types.ptr()),
                "f32" => Ok(m.types.f32()),
                "f64" => Ok(m.types.f64()),
                "fn" => {
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    loop {
                        match self.peek()? {
                            (Tok::RParen, _) => {
                                self.next()?;
                                break;
                            }
                            (Tok::Comma, _) => {
                                self.next()?;
                            }
                            _ => params.push(self.ty(m)?),
                        }
                    }
                    self.expect(Tok::Arrow)?;
                    let ret = self.ty(m)?;
                    Ok(m.types.func(params, ret))
                }
                _ if w.starts_with('i') => {
                    let bits: u32 = w[1..]
                        .parse()
                        .map_err(|_| ParseError { line, msg: format!("bad type `{w}`") })?;
                    if bits == 0 || bits > 128 {
                        return Err(ParseError { line, msg: format!("bad int width `{w}`") });
                    }
                    Ok(m.types.int(bits))
                }
                _ => Err(ParseError { line, msg: format!("unknown type `{w}`") }),
            },
            Tok::LBracket => {
                let (n, nline) = self.next()?;
                let len = match n {
                    Tok::Int(v) if v >= 0 => v as u64,
                    _ => return Err(ParseError { line: nline, msg: "bad array length".into() }),
                };
                self.expect_word("x")?;
                let elem = self.ty(m)?;
                self.expect(Tok::RBracket)?;
                Ok(m.types.array(elem, len))
            }
            Tok::LBrace => {
                let mut fields = Vec::new();
                loop {
                    match self.peek()? {
                        (Tok::RBrace, _) => {
                            self.next()?;
                            break;
                        }
                        (Tok::Comma, _) => {
                            self.next()?;
                        }
                        _ => fields.push(self.ty(m)?),
                    }
                }
                Ok(m.types.strukt(fields))
            }
            other => Err(ParseError { line, msg: format!("expected type, found {other:?}") }),
        }
    }

    fn operand(&mut self, ty: TypeId) -> Result<RawOperand, ParseError> {
        let (tok, line) = self.next()?;
        Ok(match tok {
            Tok::Local(n) => RawOperand::Local(n),
            Tok::Int(v) => RawOperand::Int(ty, v),
            Tok::FloatBits(b) => RawOperand::Float(ty, b),
            Tok::Word(w) if w == "undef" => RawOperand::Undef(ty),
            Tok::Sym(s) => RawOperand::Sym(ty, s),
            other => {
                return Err(ParseError { line, msg: format!("expected operand, found {other:?}") })
            }
        })
    }
}

/// Phase A+B body construction (see module docs).
fn build_body(
    m: &mut Module,
    fid: crate::ids::FuncId,
    labels: &[String],
    body: &[(usize, Vec<RawInst>)],
) -> Result<(), ParseError> {
    // Create blocks in label order.
    let mut label_map: HashMap<&str, BlockId> = HashMap::new();
    {
        let f = m.function_mut(fid);
        for label in labels {
            let bb = f.add_block(label.clone());
            label_map.insert(label.as_str(), bb);
        }
    }
    // Phase A: append instructions with placeholder operands, recording
    // result names.
    let mut name_map: HashMap<u32, ValueId> = HashMap::new();
    {
        for i in 0..m.function(fid).num_args() {
            let v = m.function(fid).arg(i);
            name_map.insert(i as u32, v);
        }
    }
    let mut created: Vec<(crate::ids::InstId, &RawInst)> = Vec::new();
    for (label_idx, insts) in body {
        let bb = label_map[labels[*label_idx].as_str()];
        for raw in insts {
            let blocks: Result<Vec<BlockId>, ParseError> = raw
                .blocks
                .iter()
                .map(|l| {
                    label_map.get(l.as_str()).copied().ok_or_else(|| ParseError {
                        line: raw.line,
                        msg: format!("unknown label `{l}`"),
                    })
                })
                .collect();
            let inst = Instruction {
                op: raw.op,
                ty: raw.ty,
                operands: Vec::new(),
                blocks: blocks?,
                pred: raw.pred,
                aux_ty: raw.aux_ty,
                parent: bb,
                result: None,
            };
            let (f, types) = m.func_mut_and_types(fid);
            let (iid, res) = f.append_inst(types, bb, inst);
            match (res, raw.result_name) {
                (Some(v), Some(n)) => {
                    if name_map.insert(n, v).is_some() {
                        return Err(ParseError {
                            line: raw.line,
                            msg: format!("%{n} defined twice"),
                        });
                    }
                }
                (Some(_), None) => {
                    // Value-producing instruction without a result name:
                    // tolerated (result is simply unused/unnamed).
                }
                (None, Some(n)) => {
                    return Err(ParseError {
                        line: raw.line,
                        msg: format!("%{n} = <void instruction>"),
                    });
                }
                (None, None) => {}
            }
            created.push((iid, raw));
        }
    }
    // Phase B: resolve operands.
    for (iid, raw) in created {
        let mut resolved = Vec::with_capacity(raw.operands.len());
        for o in &raw.operands {
            let v = match o {
                RawOperand::Local(n) => *name_map.get(n).ok_or_else(|| ParseError {
                    line: raw.line,
                    msg: format!("use of undefined value %{n}"),
                })?,
                RawOperand::Int(ty, v) => {
                    let (f, types) = m.func_mut_and_types(fid);
                    f.const_int(types, *ty, *v)
                }
                RawOperand::Float(ty, bits) => {
                    m.function_mut(fid).const_float(*ty, f64::from_bits(*bits))
                }
                RawOperand::Undef(ty) => m.function_mut(fid).undef(*ty),
                RawOperand::Sym(ty, name) => {
                    if let Some(callee) = m.lookup_function(name) {
                        m.function_mut(fid).func_ref(callee, *ty)
                    } else if let Some(g) = m.lookup_global(name) {
                        m.function_mut(fid).global_ref(g, *ty)
                    } else {
                        return Err(ParseError {
                            line: raw.line,
                            msg: format!("unknown symbol @{name}"),
                        });
                    }
                }
            };
            resolved.push(v);
        }
        m.function_mut(fid).inst_mut(iid).operands = resolved;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    #[test]
    fn parses_simple_function() {
        let m = parse_module(
            r#"
module "t" {
define @max(i32 %0, i32 %1) -> i32 {
bb0:
  %2 = icmp sgt i32 %0, %1
  %3 = select %2, i32 %0, %1
  ret i32 %3
}
}
"#,
        )
        .unwrap();
        let f = m.function(m.lookup_function("max").unwrap());
        assert_eq!(f.num_linked_insts(), 3);
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn parses_control_flow_and_phi() {
        let m = parse_module(
            r#"
module "t" {
define @abs(i32 %0) -> i32 {
bb0:
  %1 = icmp slt i32 %0, 0
  condbr %1, bb1, bb2
bb1:
  %2 = sub i32 0, %0
  br bb2
bb2:
  %3 = phi i32 [ %2, bb1 ], [ %0, bb0 ]
  ret i32 %3
}
}
"#,
        )
        .unwrap();
        let f = m.function(m.lookup_function("abs").unwrap());
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn parses_loops_with_back_edge_phi() {
        let m = parse_module(
            r#"
module "t" {
define @sum(i32 %0) -> i32 {
bb0:
  br bb1
bb1:
  %1 = phi i32 [ 0, bb0 ], [ %3, bb2 ]
  %2 = phi i32 [ 0, bb0 ], [ %4, bb2 ]
  %5 = icmp slt i32 %2, %0
  condbr %5, bb2, bb3
bb2:
  %3 = add i32 %1, %2
  %4 = add i32 %2, 1
  br bb1
bb3:
  ret i32 %1
}
}
"#,
        )
        .unwrap();
        let f = m.function(m.lookup_function("sum").unwrap());
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn parses_calls_and_declarations() {
        let m = parse_module(
            r#"
module "t" {
declare @sink(i64) -> void
define @go(i64 %0) -> i64 {
bb0:
  call void @sink(i64 %0)
  %1 = call i64 @go(i64 %0)
  ret i64 %1
}
}
"#,
        )
        .unwrap();
        assert_eq!(m.num_functions(), 2);
    }

    #[test]
    fn parses_memory_and_geps() {
        let m = parse_module(
            r#"
module "t" {
define @mem(i64 %0) -> i32 {
bb0:
  %1 = alloca [8 x i32]
  %2 = gep i32, %1, i64 %0
  store i32 7, %2
  %3 = load i32, %2
  ret i32 %3
}
}
"#,
        )
        .unwrap();
        let f = m.function(m.lookup_function("mem").unwrap());
        assert_eq!(f.num_linked_insts(), 5);
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
module "t" {
global @g : i64 = [1, 2, 3, 4, 5, 6, 7, 8]
declare @ext(f64) -> f64
define @poly(f64 %0) -> f64 {
bb0:
  %1 = fmul f64 %0, %0
  %2 = fadd f64 %1, 0f3FF0000000000000
  %3 = call f64 @ext(f64 %2)
  %4 = fcmp olt f64 %3, %0
  condbr %4, bb1, bb2
bb1:
  ret f64 %3
bb2:
  %5 = fneg f64 %3
  ret f64 %5
}
}
"#;
        let m1 = parse_module(src).unwrap();
        let p1 = print_module(&m1);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        assert_eq!(p1, p2, "printer must be a fixpoint under reparsing");
    }

    #[test]
    fn rejects_unknown_symbol() {
        let err = parse_module(
            r#"
module "t" {
define @f() -> void {
bb0:
  call void @missing()
  ret
}
}
"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown symbol"), "{err}");
    }

    #[test]
    fn rejects_double_definition_of_local() {
        let err = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %1 = add i32 %0, 2
  ret i32 %1
}
}
"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("defined twice"), "{err}");
    }

    #[test]
    fn rejects_syntax_error_with_line() {
        let err = parse_module("module \"t\" {\n???\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn verifier_runs_on_parse() {
        // Uses a value that does not dominate its use.
        let err = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  condbr 1, bb1, bb2
bb1:
  %1 = add i32 %0, 1
  br bb3
bb2:
  br bb3
bb3:
  ret i32 %1
}
}
"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("verification failed"), "{err}");
    }

    #[test]
    fn parses_invoke() {
        let m = parse_module(
            r#"
module "t" {
declare @may_throw(i32) -> i32
define @f(i32 %0) -> i32 {
bb0:
  %1 = invoke i32 @may_throw(i32 %0) to bb1 unwind bb2
bb1:
  ret i32 %1
bb2:
  ret i32 0
}
}
"#,
        )
        .unwrap();
        let f = m.function(m.lookup_function("f").unwrap());
        let term = f.terminator(f.entry()).unwrap().1;
        assert_eq!(term.op, Opcode::Invoke);
        assert_eq!(term.successors().len(), 2);
    }
}
