//! Type system for the F3M IR.
//!
//! Types are interned in a [`TypeStore`]; a [`TypeId`] is a cheap copyable
//! handle that is only meaningful together with the store that produced it.
//! The type language mirrors the subset of LLVM types that the function
//! merging pass cares about: `void`, arbitrary-width integers, two float
//! widths, an opaque pointer type (like modern LLVM), arrays, structs and
//! function types.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned type inside a [`TypeStore`].
///
/// The numeric value of a `TypeId` is stable for the lifetime of the store
/// and is used directly by the fingerprint encoding as the "unique number
/// assigned to each type" described in Section III-B of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index of this type inside its store.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable small integer used by the instruction encoding scheme.
    pub fn encoding_number(self) -> u32 {
        // Offset by a small prime so that multiplying operand type numbers
        // (as the paper does) never collapses to zero/one for real types.
        self.0 + 3
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// Structure of a type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// The `void` type: only valid as a function return type.
    Void,
    /// Integer type of the given bit width (1..=128).
    Int(u32),
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Opaque pointer (address space 0). Pointee types are carried by the
    /// instructions that need them (`alloca`, `load`, `gep`), as in LLVM's
    /// opaque-pointer mode.
    Ptr,
    /// Fixed-size array `[len x elem]`.
    Array { elem: TypeId, len: u64 },
    /// Anonymous struct `{ f0, f1, ... }`.
    Struct { fields: Vec<TypeId> },
    /// Function type `fn(params...) -> ret`.
    Func { params: Vec<TypeId>, ret: TypeId },
}

/// Interner for [`TypeKind`]s.
///
/// # Examples
///
/// ```
/// use f3m_ir::types::TypeStore;
///
/// let mut ts = TypeStore::new();
/// let i32a = ts.int(32);
/// let i32b = ts.int(32);
/// assert_eq!(i32a, i32b);
/// assert_ne!(ts.int(64), i32a);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TypeStore {
    kinds: Vec<TypeKind>,
    lookup: HashMap<TypeKind, TypeId>,
}

impl TypeStore {
    /// Creates an empty store. Common scalar types are pre-interned so that
    /// their `TypeId`s (and therefore encoding numbers) are stable across
    /// stores, which keeps fingerprints comparable between modules.
    pub fn new() -> Self {
        let mut ts = TypeStore { kinds: Vec::new(), lookup: HashMap::new() };
        // Pre-intern in a fixed order.
        ts.intern(TypeKind::Void);
        ts.intern(TypeKind::Int(1));
        ts.intern(TypeKind::Int(8));
        ts.intern(TypeKind::Int(16));
        ts.intern(TypeKind::Int(32));
        ts.intern(TypeKind::Int(64));
        ts.intern(TypeKind::F32);
        ts.intern(TypeKind::F64);
        ts.intern(TypeKind::Ptr);
        ts
    }

    /// Interns `kind`, returning the canonical id.
    pub fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.lookup.get(&kind) {
            return id;
        }
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.lookup.insert(kind, id);
        id
    }

    /// Returns the structure of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.0 as usize]
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the store has no types (never true: scalars are pre-interned).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    // ---- convenience constructors -------------------------------------

    /// The `void` type.
    pub fn void(&mut self) -> TypeId {
        self.intern(TypeKind::Void)
    }

    /// Integer type with `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 128.
    pub fn int(&mut self, bits: u32) -> TypeId {
        assert!((1..=128).contains(&bits), "unsupported integer width {bits}");
        self.intern(TypeKind::Int(bits))
    }

    /// The `i1` boolean type.
    pub fn bool(&mut self) -> TypeId {
        self.int(1)
    }

    /// 32-bit float type.
    pub fn f32(&mut self) -> TypeId {
        self.intern(TypeKind::F32)
    }

    /// 64-bit float type.
    pub fn f64(&mut self) -> TypeId {
        self.intern(TypeKind::F64)
    }

    /// Opaque pointer type.
    pub fn ptr(&mut self) -> TypeId {
        self.intern(TypeKind::Ptr)
    }

    /// Array type `[len x elem]`.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(TypeKind::Array { elem, len })
    }

    /// Struct type with the given field types.
    pub fn strukt(&mut self, fields: Vec<TypeId>) -> TypeId {
        self.intern(TypeKind::Struct { fields })
    }

    /// Function type.
    pub fn func(&mut self, params: Vec<TypeId>, ret: TypeId) -> TypeId {
        self.intern(TypeKind::Func { params, ret })
    }

    // ---- queries --------------------------------------------------------

    /// True if `id` is any integer type.
    pub fn is_int(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Int(_))
    }

    /// True if `id` is `i1`.
    pub fn is_bool(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Int(1))
    }

    /// True if `id` is a float type.
    pub fn is_float(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::F32 | TypeKind::F64)
    }

    /// True if `id` is the opaque pointer type.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Ptr)
    }

    /// True if `id` is `void`.
    pub fn is_void(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Void)
    }

    /// True if the type can be the result of an instruction
    /// (everything except `void` and function types).
    pub fn is_first_class(&self, id: TypeId) -> bool {
        !matches!(self.kind(id), TypeKind::Void | TypeKind::Func { .. })
    }

    /// Integer bit width, if `id` is an integer type.
    pub fn int_bits(&self, id: TypeId) -> Option<u32> {
        match self.kind(id) {
            TypeKind::Int(b) => Some(*b),
            _ => None,
        }
    }

    /// ABI size of the type in bytes, using an x86-64-like layout
    /// (pointers are 8 bytes, arrays/structs sum their members without
    /// padding — adequate for the size model and the interpreter).
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.kind(id) {
            TypeKind::Void => 0,
            TypeKind::Int(b) => (*b as u64).div_ceil(8),
            TypeKind::F32 => 4,
            TypeKind::F64 => 8,
            TypeKind::Ptr => 8,
            TypeKind::Array { elem, len } => self.size_of(*elem) * len,
            TypeKind::Struct { fields } => fields.iter().map(|f| self.size_of(*f)).sum(),
            TypeKind::Func { .. } => 8,
        }
    }

    /// Renders `id` in the textual IR syntax.
    pub fn display(&self, id: TypeId) -> String {
        match self.kind(id) {
            TypeKind::Void => "void".to_string(),
            TypeKind::Int(b) => format!("i{b}"),
            TypeKind::F32 => "f32".to_string(),
            TypeKind::F64 => "f64".to_string(),
            TypeKind::Ptr => "ptr".to_string(),
            TypeKind::Array { elem, len } => format!("[{} x {}]", len, self.display(*elem)),
            TypeKind::Struct { fields } => {
                let inner: Vec<String> = fields.iter().map(|f| self.display(*f)).collect();
                format!("{{{}}}", inner.join(", "))
            }
            TypeKind::Func { params, ret } => {
                let inner: Vec<String> = params.iter().map(|p| self.display(*p)).collect();
                format!("fn({}) -> {}", inner.join(", "), self.display(*ret))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut ts = TypeStore::new();
        let a = ts.int(32);
        let b = ts.int(32);
        assert_eq!(a, b);
        let arr1 = ts.array(a, 4);
        let arr2 = ts.array(b, 4);
        assert_eq!(arr1, arr2);
        let arr3 = ts.array(a, 5);
        assert_ne!(arr1, arr3);
    }

    #[test]
    fn prelude_types_are_stable_across_stores() {
        let mut a = TypeStore::new();
        let mut b = TypeStore::new();
        assert_eq!(a.int(32), b.int(32));
        assert_eq!(a.f64(), b.f64());
        assert_eq!(a.ptr(), b.ptr());
        assert_eq!(a.void(), b.void());
    }

    #[test]
    fn display_round_trips_structure() {
        let mut ts = TypeStore::new();
        let i8 = ts.int(8);
        let arr = ts.array(i8, 16);
        let ptr = ts.ptr();
        let st = ts.strukt(vec![arr, ptr]);
        assert_eq!(ts.display(st), "{[16 x i8], ptr}");
        let void = ts.void();
        let f = ts.func(vec![st, i8], void);
        assert_eq!(ts.display(f), "fn({[16 x i8], ptr}, i8) -> void");
    }

    #[test]
    fn size_of_matches_layout() {
        let mut ts = TypeStore::new();
        assert_eq!(ts.size_of(ts.lookup[&TypeKind::Ptr]), 8);
        let i32t = ts.int(32);
        assert_eq!(ts.size_of(i32t), 4);
        let i1 = ts.int(1);
        assert_eq!(ts.size_of(i1), 1);
        let arr = ts.array(i32t, 10);
        assert_eq!(ts.size_of(arr), 40);
        let st = ts.strukt(vec![i32t, arr]);
        assert_eq!(ts.size_of(st), 44);
    }

    #[test]
    fn first_class_classification() {
        let mut ts = TypeStore::new();
        let v = ts.void();
        let f = ts.func(vec![], v);
        let i32t = ts.int(32);
        let ptr = ts.ptr();
        assert!(!ts.is_first_class(v));
        assert!(!ts.is_first_class(f));
        assert!(ts.is_first_class(i32t));
        assert!(ts.is_first_class(ptr));
    }

    #[test]
    #[should_panic]
    fn zero_width_int_rejected() {
        TypeStore::new().int(0);
    }

    #[test]
    fn encoding_numbers_nonzero() {
        let mut ts = TypeStore::new();
        let ids = [ts.void(), ts.int(1), ts.int(64), ts.ptr()];
        for id in ids {
            assert!(id.encoding_number() >= 3);
        }
    }
}
