//! SSA values.
//!
//! A [`Value`] is anything that can appear as an instruction operand:
//! function arguments, instruction results, constants, `undef`, and
//! references to module-level entities (functions, globals). Values are
//! stored in a per-function arena; constants are deduplicated per function.

use crate::ids::{FuncId, GlobalId, InstId};
use crate::types::TypeId;

/// What a value is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueKind {
    /// The `i`-th formal parameter of the enclosing function.
    Arg(u32),
    /// The result of an instruction.
    Inst(InstId),
    /// Integer constant. The payload is the two's-complement bit pattern
    /// truncated to the type's width; stored sign-extended to 64 bits.
    ConstInt(i64),
    /// Floating-point constant, stored as the IEEE-754 bit pattern of the
    /// `f64` value (also used for `f32` constants, converted on use).
    ConstFloat(u64),
    /// An undefined value of the given type.
    Undef,
    /// Address of a function in the enclosing module.
    FuncRef(FuncId),
    /// Address of a global variable in the enclosing module.
    GlobalRef(GlobalId),
}

/// A value in a function's value arena.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Value {
    /// Structure of the value.
    pub kind: ValueKind,
    /// Type of the value.
    pub ty: TypeId,
}

impl Value {
    /// True if this value is a constant, `undef`, or a module-entity
    /// reference — i.e. anything that does not depend on control flow and
    /// can be freely rematerialized in a merged function.
    pub fn is_constant_like(&self) -> bool {
        matches!(
            self.kind,
            ValueKind::ConstInt(_)
                | ValueKind::ConstFloat(_)
                | ValueKind::Undef
                | ValueKind::FuncRef(_)
                | ValueKind::GlobalRef(_)
        )
    }

    /// True if this value is the result of an instruction.
    pub fn is_inst(&self) -> bool {
        matches!(self.kind, ValueKind::Inst(_))
    }

    /// The defining instruction, if any.
    pub fn def_inst(&self) -> Option<InstId> {
        match self.kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }
}

/// Key used to deduplicate constant values within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstKey {
    /// Integer constant of a type.
    Int(TypeId, i64),
    /// Float constant of a type (bit pattern).
    Float(TypeId, u64),
    /// `undef` of a type.
    Undef(TypeId),
    /// Function reference.
    Func(FuncId),
    /// Global reference.
    Global(GlobalId),
}

impl ConstKey {
    /// Builds the dedup key for a constant-like value, or `None` if the
    /// value is not constant-like.
    pub fn of(v: &Value) -> Option<ConstKey> {
        Some(match v.kind {
            ValueKind::ConstInt(x) => ConstKey::Int(v.ty, x),
            ValueKind::ConstFloat(b) => ConstKey::Float(v.ty, b),
            ValueKind::Undef => ConstKey::Undef(v.ty),
            ValueKind::FuncRef(f) => ConstKey::Func(f),
            ValueKind::GlobalRef(g) => ConstKey::Global(g),
            _ => return None,
        })
    }
}

/// Truncates a 64-bit pattern to `bits` and sign-extends back; the canonical
/// representation used for [`ValueKind::ConstInt`] payloads.
pub fn normalize_int(value: i64, bits: u32) -> i64 {
    if bits >= 64 {
        return value;
    }
    let shift = 64 - bits;
    (value << shift) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ValueId;

    #[test]
    fn normalize_int_wraps_to_width() {
        assert_eq!(normalize_int(255, 8), -1);
        assert_eq!(normalize_int(127, 8), 127);
        assert_eq!(normalize_int(128, 8), -128);
        assert_eq!(normalize_int(1, 1), -1);
        assert_eq!(normalize_int(0, 1), 0);
        assert_eq!(normalize_int(i64::MAX, 64), i64::MAX);
    }

    #[test]
    fn constant_likeness() {
        let ty = TypeId(4);
        let c = Value { kind: ValueKind::ConstInt(3), ty };
        assert!(c.is_constant_like());
        assert!(!c.is_inst());
        let a = Value { kind: ValueKind::Arg(0), ty };
        assert!(!a.is_constant_like());
        let i = Value { kind: ValueKind::Inst(InstId::from_index(0)), ty };
        assert!(i.is_inst());
        assert_eq!(i.def_inst(), Some(InstId::from_index(0)));
    }

    #[test]
    fn const_keys_distinguish_types() {
        let a = Value { kind: ValueKind::ConstInt(1), ty: TypeId(4) };
        let b = Value { kind: ValueKind::ConstInt(1), ty: TypeId(5) };
        assert_ne!(ConstKey::of(&a), ConstKey::of(&b));
        let arg = Value { kind: ValueKind::Arg(0), ty: TypeId(4) };
        assert_eq!(ConstKey::of(&arg), None);
        let _ = ValueId::from_index(0);
    }
}
