//! # f3m-ir — SSA intermediate representation substrate
//!
//! A compact, LLVM-flavoured SSA IR built for the [F3M function-merging
//! reproduction](https://github.com/f3m-rs/f3m). It provides exactly what
//! the merging pipeline needs:
//!
//! - a [type interner](types::TypeStore) and ~45 [opcodes](inst::Opcode)
//!   mirroring the LLVM instructions used by the paper's workloads,
//! - [functions](function::Function) with explicit basic blocks and
//!   phi-nodes, owned by a [module](module::Module),
//! - an [IR builder](builder::FunctionBuilder),
//! - a [textual printer](printer) and a [`parser`] that round-trip,
//! - [CFG](cfg::Cfg) and [dominator-tree](dom::DomTree) analyses,
//! - a strict [verifier](verify) (structure, types, SSA dominance),
//! - a [code-size model](size) standing in for object-file sizes.
//!
//! # Examples
//!
//! ```
//! use f3m_ir::prelude::*;
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.int(32);
//! let mut f = Function::new("square", vec![i32t], i32t);
//! {
//!     let mut b = FunctionBuilder::new(&mut m.types, &mut f);
//!     let entry = b.create_block("entry");
//!     b.position_at_end(entry);
//!     let x = b.func().arg(0);
//!     let sq = b.mul(x, x);
//!     b.ret(Some(sq));
//! }
//! m.add_function(f);
//! f3m_ir::verify::verify_module(&m).unwrap();
//! let text = f3m_ir::printer::print_module(&m);
//! let reparsed = f3m_ir::parser::parse_module(&text).unwrap();
//! assert_eq!(reparsed.num_functions(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod ids;
pub mod inst;
pub mod function;
pub mod module;
pub mod parser;
pub mod printer;
pub mod size;
pub mod types;
pub mod value;
pub mod verify;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::builder::FunctionBuilder;
    pub use crate::cfg::Cfg;
    pub use crate::dom::DomTree;
    pub use crate::ids::{BlockId, FuncId, GlobalId, InstId, ValueId};
    pub use crate::inst::{FloatPredicate, Instruction, IntPredicate, Opcode, Predicate};
    pub use crate::function::{Function, Linkage};
    pub use crate::module::{Global, Module};
    pub use crate::types::{TypeId, TypeKind, TypeStore};
    pub use crate::value::{Value, ValueKind};
}
