//! Code-size model.
//!
//! The paper measures *linked object file size*. We do not lower to machine
//! code, so we estimate the encoded size of each IR instruction with
//! per-opcode byte weights calibrated to x86-64, plus a fixed per-function
//! overhead for prologue/epilogue and alignment padding. Only *relative*
//! sizes matter for the evaluation (reductions are reported as
//! percentages), so any consistent linear model preserves the paper's
//! comparisons.

use crate::inst::{Instruction, Opcode};
use crate::function::Function;
use crate::module::Module;

/// Fixed per-function overhead in bytes (prologue, epilogue, padding).
pub const FUNCTION_OVERHEAD: u64 = 12;

/// Estimated encoded size of one instruction in bytes.
pub fn inst_size(inst: &Instruction) -> u64 {
    match inst.op {
        // Phis become register moves on edges; most are coalesced away.
        Opcode::Phi => 1,
        Opcode::Ret => 1,
        Opcode::Unreachable => 1,
        Opcode::Br => 2,
        Opcode::CondBr => 4, // test + jcc
        Opcode::Invoke => 9, // call + landing metadata
        Opcode::Call => 5,
        Opcode::Select => 4, // cmov + setup
        Opcode::ICmp | Opcode::FCmp => 3,
        Opcode::Alloca => 4,
        Opcode::Load | Opcode::Store => 4,
        Opcode::Gep => 4, // lea
        Opcode::FNeg => 3,
        op if op.is_float_binary() => 4,
        op if op.is_int_binary() => 3,
        op if op.is_cast() => 3,
        _ => 3,
    }
}

/// Estimated size of a function definition in bytes (0 for declarations).
pub fn function_size(f: &Function) -> u64 {
    if f.is_declaration {
        return 0;
    }
    FUNCTION_OVERHEAD
        + f.linked_insts().map(|(_, i)| inst_size(i)).sum::<u64>()
}

/// Estimated size of the whole module's text section in bytes.
pub fn module_size(m: &Module) -> u64 {
    m.functions().map(|(_, f)| function_size(f)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::module::Module;

    #[test]
    fn declarations_are_free() {
        let mut m = Module::new("t");
        let v = m.types.void();
        m.add_function(Function::new_declaration("ext", vec![], v));
        assert_eq!(module_size(&m), 0);
    }

    #[test]
    fn size_grows_with_instructions() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut small = Function::new("small", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut small);
            let e = b.create_block("entry");
            b.position_at_end(e);
            let a = b.func().arg(0);
            b.ret(Some(a));
        }
        let mut big = Function::new("big", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut big);
            let e = b.create_block("entry");
            b.position_at_end(e);
            let mut acc = b.func().arg(0);
            for _ in 0..10 {
                acc = b.add(acc, acc);
            }
            b.ret(Some(acc));
        }
        assert!(function_size(&big) > function_size(&small));
        let s = m.add_function(small);
        let before = module_size(&m);
        m.add_function(big);
        assert!(module_size(&m) > before);
        let _ = s;
    }

    #[test]
    fn every_opcode_has_positive_size() {
        use crate::ids::BlockId;
        for op in Opcode::iter() {
            let inst = Instruction {
                op,
                ty: crate::types::TypeStore::new().void(),
                operands: vec![],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: BlockId::from_index(0),
                result: None,
            };
            assert!(inst_size(&inst) > 0, "{op:?}");
        }
    }
}
