//! Dominator analysis.
//!
//! Implements the Cooper–Harvey–Kennedy "simple, fast dominance algorithm".
//! The merging code generator uses [`DomTree::dominates_inst`] to detect SSA
//! dominance violations introduced by cross-function code reuse, which it
//! then repairs with phi-nodes or stack demotion (paper Section III-E).

use crate::cfg::Cfg;
use crate::ids::{BlockId, InstId};
use crate::function::Function;

/// Dominator tree for one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b] = immediate dominator` (entry maps to itself);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree from a CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.block_arena_len();
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        // Iterate to fixpoint over the reverse post-order.
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, cfg, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.index()] != Some(ni) {
                        idom[bb.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
        let rpo = |x: BlockId| cfg.rpo_index(x).expect("reachable");
        while a != b {
            while rpo(a) > rpo(b) {
                a = idom[a.index()].expect("processed");
            }
            while rpo(b) > rpo(a) {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    }

    /// Immediate dominator of `bb` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        if bb == self.entry {
            return None;
        }
        self.idom[bb.index()]
    }

    /// Whether block `a` dominates block `b`. A block dominates itself.
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable chain");
        }
    }

    /// Whether the *definition* `def` dominates the *use site*
    /// `(use_inst, operand position irrelevant)`; both must be linked into
    /// blocks of `f`. Uses in phi-nodes are considered to occur at the end
    /// of the corresponding incoming block, as in LLVM's verifier.
    pub fn dominates_inst(&self, f: &Function, def: InstId, use_inst: InstId) -> bool {
        let db = f.inst(def).parent;
        let ub = f.inst(use_inst).parent;
        if db != ub {
            return self.dominates(db, ub);
        }
        // Same block: compare positions; a definition does not dominate
        // itself as a use.
        let block = f.block(db);
        let dpos = block.insts.iter().position(|&i| i == def);
        let upos = block.insts.iter().position(|&i| i == use_inst);
        match (dpos, upos) {
            (Some(d), Some(u)) => d < u,
            _ => false,
        }
    }

    /// Dominance check for a phi use: the definition must dominate the end
    /// of the incoming block `incoming`.
    pub fn dominates_phi_use(&self, f: &Function, def: InstId, incoming: BlockId) -> bool {
        let db = f.inst(def).parent;
        if db == incoming {
            // Defined inside the incoming block: dominates its end as long
            // as the def is linked in the block.
            return f.block(db).insts.contains(&def);
        }
        self.dominates(db, incoming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::inst::IntPredicate;
    use crate::types::TypeStore;

    /// entry -> {a, b}; a -> c; b -> c; c -> {d(loop back to c? no)}.
    fn build() -> (Function, Vec<BlockId>) {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let mut f = Function::new("g", vec![i32t, i32t], i32t);
        let mut b = FunctionBuilder::new(&mut ts, &mut f);
        let entry = b.create_block("entry");
        let ba = b.create_block("a");
        let bb = b.create_block("b");
        let bc = b.create_block("c");
        b.position_at_end(entry);
        let c = b.icmp(IntPredicate::Eq, b.func().arg(0), b.func().arg(1));
        b.cond_br(c, ba, bb);
        b.position_at_end(ba);
        let x = b.add(b.func().arg(0), b.func().arg(1));
        b.br(bc);
        b.position_at_end(bb);
        let y = b.mul(b.func().arg(0), b.func().arg(1));
        b.br(bc);
        b.position_at_end(bc);
        let p = b.phi(i32t, &[(x, ba), (y, bb)]);
        b.ret(Some(p));
        (f, vec![entry, ba, bb, bc])
    }

    #[test]
    fn idoms_of_diamond() {
        let (f, bs) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let (entry, a, b, c) = (bs[0], bs[1], bs[2], bs[3]);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(a), Some(entry));
        assert_eq!(dt.idom(b), Some(entry));
        assert_eq!(dt.idom(c), Some(entry));
    }

    #[test]
    fn dominates_is_reflexive_and_respects_tree() {
        let (f, bs) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let (entry, a, _b, c) = (bs[0], bs[1], bs[2], bs[3]);
        assert!(dt.dominates(entry, c));
        assert!(dt.dominates(a, a));
        assert!(!dt.dominates(a, c), "a does not dominate the join");
        assert!(!dt.dominates(c, entry));
    }

    #[test]
    fn same_block_instruction_order() {
        let (f, bs) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let entry = bs[0];
        let insts: Vec<_> = f.block(entry).insts.clone();
        assert!(dt.dominates_inst(&f, insts[0], insts[1]));
        assert!(!dt.dominates_inst(&f, insts[1], insts[0]));
        assert!(!dt.dominates_inst(&f, insts[0], insts[0]));
    }

    #[test]
    fn cross_block_dominance() {
        let (f, bs) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let (entry, a, _, c) = (bs[0], bs[1], bs[2], bs[3]);
        let cmp = f.block(entry).insts[0];
        let phi = f.block(c).insts[0];
        assert!(dt.dominates_inst(&f, cmp, phi));
        let add = f.block(a).insts[0];
        assert!(!dt.dominates_inst(&f, phi, add));
    }

    #[test]
    fn phi_uses_checked_at_incoming_block_end() {
        let (f, bs) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let (_, a, b, _) = (bs[0], bs[1], bs[2], bs[3]);
        let add_in_a = f.block(a).insts[0];
        assert!(dt.dominates_phi_use(&f, add_in_a, a));
        assert!(!dt.dominates_phi_use(&f, add_in_a, b));
    }

    #[test]
    fn loop_idoms() {
        // entry -> header; header -> {body, exit}; body -> header.
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let mut f = Function::new("l", vec![i32t], i32t);
        let mut bld = FunctionBuilder::new(&mut ts, &mut f);
        let entry = bld.create_block("entry");
        let header = bld.create_block("header");
        let body = bld.create_block("body");
        let exit = bld.create_block("exit");
        bld.position_at_end(entry);
        bld.br(header);
        bld.position_at_end(header);
        let zero = bld.const_int(i32t, 0);
        let c = bld.icmp(IntPredicate::Sgt, bld.func().arg(0), zero);
        bld.cond_br(c, body, exit);
        bld.position_at_end(body);
        bld.br(header);
        bld.position_at_end(exit);
        let r = bld.const_int(i32t, 0);
        bld.ret(Some(r));
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(header), Some(entry));
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        assert!(dt.dominates(header, body));
        assert!(!dt.dominates(body, exit));
    }
}
