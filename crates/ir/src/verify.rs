//! IR verifier: structural, type and SSA-dominance checks.
//!
//! The verifier is the safety net for the merged-function code generator.
//! The paper (Section III-E) describes how HyFM's dominance repair had two
//! bugs that produced invalid SSA and silently broke binaries; in this
//! reproduction, every merged function is verified, so such bugs surface as
//! [`VerifyError::DominanceViolation`] instead of miscompiles.

use std::fmt;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, FuncId, InstId, ValueId};
use crate::inst::{Opcode, Predicate};
use crate::function::Function;
use crate::module::Module;
use crate::types::TypeKind;
use crate::value::ValueKind;

/// A single verification failure.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// A function definition has no blocks.
    EmptyFunction { func: String },
    /// A block has no terminator, or has one before its end.
    BadTerminator { func: String, block: BlockId, detail: String },
    /// A phi is not in the leading phi group of its block.
    MisplacedPhi { func: String, inst: InstId },
    /// Phi incoming blocks disagree with the CFG predecessors.
    PhiIncomingMismatch { func: String, inst: InstId, detail: String },
    /// An operand's definition does not dominate its use.
    DominanceViolation { func: String, inst: InstId, operand: ValueId },
    /// An instruction is badly typed.
    TypeError { func: String, inst: InstId, detail: String },
    /// Malformed operand/target counts for an opcode.
    Malformed { func: String, inst: InstId, detail: String },
    /// The entry block has predecessors.
    EntryHasPreds { func: String },
    /// A call or invoke references a callee with a mismatched signature.
    SignatureMismatch { func: String, inst: InstId, detail: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyFunction { func } => write!(f, "{func}: definition has no blocks"),
            VerifyError::BadTerminator { func, block, detail } => {
                write!(f, "{func}/{block:?}: bad terminator: {detail}")
            }
            VerifyError::MisplacedPhi { func, inst } => {
                write!(f, "{func}/{inst:?}: phi after non-phi instruction")
            }
            VerifyError::PhiIncomingMismatch { func, inst, detail } => {
                write!(f, "{func}/{inst:?}: phi incoming mismatch: {detail}")
            }
            VerifyError::DominanceViolation { func, inst, operand } => {
                write!(f, "{func}/{inst:?}: operand {operand:?} does not dominate use")
            }
            VerifyError::TypeError { func, inst, detail } => {
                write!(f, "{func}/{inst:?}: type error: {detail}")
            }
            VerifyError::Malformed { func, inst, detail } => {
                write!(f, "{func}/{inst:?}: malformed: {detail}")
            }
            VerifyError::EntryHasPreds { func } => {
                write!(f, "{func}: entry block has predecessors")
            }
            VerifyError::SignatureMismatch { func, inst, detail } => {
                write!(f, "{func}/{inst:?}: signature mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns every problem found across all function definitions.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for (id, f) in m.functions() {
        if f.is_declaration {
            continue;
        }
        if let Err(mut e) = verify_function(m, id) {
            errs.append(&mut e);
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verifies one function definition.
///
/// # Errors
///
/// Returns every problem found. An empty function body is reported as a
/// single [`VerifyError::EmptyFunction`].
pub fn verify_function(m: &Module, id: FuncId) -> Result<(), Vec<VerifyError>> {
    let f = m.function(id);
    let fname = f.name.clone();
    let mut errs: Vec<VerifyError> = Vec::new();

    if f.block_order.is_empty() {
        return Err(vec![VerifyError::EmptyFunction { func: fname }]);
    }

    // Structural checks per block.
    for &bb in &f.block_order {
        let insts = &f.block(bb).insts;
        if insts.is_empty() {
            errs.push(VerifyError::BadTerminator {
                func: fname.clone(),
                block: bb,
                detail: "empty block".into(),
            });
            continue;
        }
        for (pos, &i) in insts.iter().enumerate() {
            let inst = f.inst(i);
            let last = pos + 1 == insts.len();
            if inst.is_terminator() && !last {
                errs.push(VerifyError::BadTerminator {
                    func: fname.clone(),
                    block: bb,
                    detail: format!("terminator {:?} not at block end", inst.op),
                });
            }
            if last && !inst.is_terminator() {
                errs.push(VerifyError::BadTerminator {
                    func: fname.clone(),
                    block: bb,
                    detail: format!("block ends with non-terminator {:?}", inst.op),
                });
            }
        }
        // Phi grouping.
        let first_non_phi = f.first_non_phi(bb);
        for &i in &insts[first_non_phi..] {
            if f.inst(i).op == Opcode::Phi {
                errs.push(VerifyError::MisplacedPhi { func: fname.clone(), inst: i });
            }
        }
    }

    if !errs.is_empty() {
        // CFG-derived checks below assume structural sanity.
        return Err(errs);
    }

    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    if !cfg.preds(f.entry()).is_empty() {
        errs.push(VerifyError::EntryHasPreds { func: fname.clone() });
    }

    for &bb in &f.block_order {
        if !cfg.is_reachable(bb) {
            continue; // unreachable code is tolerated, like in LLVM
        }
        for (iid, inst) in f.block_insts(bb) {
            check_shape(m, f, &fname, iid, inst, &mut errs);
            check_types(m, f, &fname, iid, inst, &mut errs);
            if inst.op == Opcode::Phi {
                check_phi(f, &cfg, &dt, &fname, iid, bb, &mut errs);
            } else {
                // Dominance for ordinary uses.
                for &op in &inst.operands {
                    if let ValueKind::Inst(def) = f.value(op).kind {
                        if !dt.dominates_inst(f, def, iid) {
                            errs.push(VerifyError::DominanceViolation {
                                func: fname.clone(),
                                inst: iid,
                                operand: op,
                            });
                        }
                    }
                }
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_phi(
    f: &Function,
    cfg: &Cfg,
    dt: &DomTree,
    fname: &str,
    iid: InstId,
    bb: BlockId,
    errs: &mut Vec<VerifyError>,
) {
    let inst = f.inst(iid);
    if inst.operands.len() != inst.blocks.len() {
        errs.push(VerifyError::PhiIncomingMismatch {
            func: fname.to_string(),
            inst: iid,
            detail: format!(
                "{} values vs {} blocks",
                inst.operands.len(),
                inst.blocks.len()
            ),
        });
        return;
    }
    // One incoming entry per distinct predecessor (duplicate edges from a
    // conditional branch with identical targets count once).
    let mut preds: Vec<BlockId> = cfg.preds(bb).to_vec();
    preds.sort();
    preds.dedup();
    let mut incoming: Vec<BlockId> = inst.blocks.clone();
    incoming.sort();
    incoming.dedup();
    if preds != incoming {
        errs.push(VerifyError::PhiIncomingMismatch {
            func: fname.to_string(),
            inst: iid,
            detail: format!("incoming blocks {incoming:?} != preds {preds:?}"),
        });
    }
    // Dominance of each incoming value at the end of its incoming block.
    for (block, val) in inst.phi_incomings() {
        if let ValueKind::Inst(def) = f.value(val).kind {
            if !dt.dominates_phi_use(f, def, block) {
                errs.push(VerifyError::DominanceViolation {
                    func: fname.to_string(),
                    inst: iid,
                    operand: val,
                });
            }
        }
    }
}

fn check_shape(
    m: &Module,
    f: &Function,
    fname: &str,
    iid: InstId,
    inst: &crate::inst::Instruction,
    errs: &mut Vec<VerifyError>,
) {
    let mut bad = |detail: String| {
        errs.push(VerifyError::Malformed { func: fname.to_string(), inst: iid, detail });
    };
    let nops = inst.operands.len();
    let nblocks = inst.blocks.len();
    match inst.op {
        Opcode::Ret
            if (nops > 1 || nblocks != 0) => {
                bad(format!("ret with {nops} operands / {nblocks} targets"));
            }
        Opcode::Br
            if (nops != 0 || nblocks != 1) => {
                bad(format!("br with {nops} operands / {nblocks} targets"));
            }
        Opcode::CondBr
            if (nops != 1 || nblocks != 2) => {
                bad(format!("condbr with {nops} operands / {nblocks} targets"));
            }
        Opcode::Invoke
            if (nops < 1 || nblocks != 2) => {
                bad(format!("invoke with {nops} operands / {nblocks} targets"));
            }
        Opcode::Unreachable
            if (nops != 0 || nblocks != 0) => {
                bad("unreachable with operands".into());
            }
        Opcode::Alloca
            if (nops != 0 || inst.aux_ty.is_none()) => {
                bad("alloca needs zero operands and an allocated type".into());
            }
        Opcode::Load
            if nops != 1 => {
                bad(format!("load with {nops} operands"));
            }
        Opcode::Store
            if nops != 2 => {
                bad(format!("store with {nops} operands"));
            }
        Opcode::Gep
            if (nops != 2 || inst.aux_ty.is_none()) => {
                bad("gep needs [ptr, index] and an element type".into());
            }
        Opcode::ICmp | Opcode::FCmp => {
            if nops != 2 || inst.pred.is_none() {
                bad("cmp needs two operands and a predicate".into());
            }
            match (inst.op, inst.pred) {
                (Opcode::ICmp, Some(Predicate::Float(_))) => {
                    bad("icmp with float predicate".into())
                }
                (Opcode::FCmp, Some(Predicate::Int(_))) => bad("fcmp with int predicate".into()),
                _ => {}
            }
        }
        Opcode::Select
            if nops != 3 => {
                bad(format!("select with {nops} operands"));
            }
        Opcode::Call
            if nops < 1 => {
                bad("call without callee".into());
            }
        Opcode::Phi
            if nops == 0 => {
                bad("phi with no incomings".into());
            }
        Opcode::FNeg
            if nops != 1 => {
                bad(format!("fneg with {nops} operands"));
            }
        op if op.is_binary()
            && nops != 2 => {
                bad(format!("{op:?} with {nops} operands"));
            }
        op if op.is_cast()
            && nops != 1 => {
                bad(format!("{op:?} with {nops} operands"));
            }
        _ => {}
    }
    // Call/invoke signature checks against direct callees.
    if matches!(inst.op, Opcode::Call | Opcode::Invoke) && !inst.operands.is_empty() {
        if let ValueKind::FuncRef(callee) = f.value(inst.operands[0]).kind {
            let callee_f = m.function(callee);
            let args = &inst.operands[1..];
            if args.len() != callee_f.params.len() {
                errs.push(VerifyError::SignatureMismatch {
                    func: fname.to_string(),
                    inst: iid,
                    detail: format!(
                        "{} args to @{} expecting {}",
                        args.len(),
                        callee_f.name,
                        callee_f.params.len()
                    ),
                });
            } else {
                for (k, (&a, &p)) in args.iter().zip(callee_f.params.iter()).enumerate() {
                    if f.value(a).ty != p {
                        errs.push(VerifyError::SignatureMismatch {
                            func: fname.to_string(),
                            inst: iid,
                            detail: format!("arg {k} type mismatch calling @{}", callee_f.name),
                        });
                    }
                }
                if inst.ty != callee_f.ret_ty {
                    errs.push(VerifyError::SignatureMismatch {
                        func: fname.to_string(),
                        inst: iid,
                        detail: format!("return type mismatch calling @{}", callee_f.name),
                    });
                }
            }
        }
    }
}

fn check_types(
    m: &Module,
    f: &Function,
    fname: &str,
    iid: InstId,
    inst: &crate::inst::Instruction,
    errs: &mut Vec<VerifyError>,
) {
    let ts = &m.types;
    let mut bad = |detail: String| {
        errs.push(VerifyError::TypeError { func: fname.to_string(), inst: iid, detail });
    };
    let vty = |v: ValueId| f.value(v).ty;
    match inst.op {
        op if op.is_int_binary()
            && inst.operands.len() == 2 => {
                let (a, b) = (vty(inst.operands[0]), vty(inst.operands[1]));
                if a != b || a != inst.ty {
                    bad("int binary operand/result types differ".into());
                } else if !ts.is_int(a) {
                    bad("int binary on non-integer type".into());
                }
            }
        op if op.is_float_binary()
            && inst.operands.len() == 2 => {
                let (a, b) = (vty(inst.operands[0]), vty(inst.operands[1]));
                if a != b || a != inst.ty {
                    bad("float binary operand/result types differ".into());
                } else if !ts.is_float(a) {
                    bad("float binary on non-float type".into());
                }
            }
        Opcode::FNeg
            if inst.operands.len() == 1 => {
                let a = vty(inst.operands[0]);
                if a != inst.ty || !ts.is_float(a) {
                    bad("fneg type mismatch".into());
                }
            }
        Opcode::ICmp
            if inst.operands.len() == 2 => {
                let (a, b) = (vty(inst.operands[0]), vty(inst.operands[1]));
                if a != b {
                    bad("icmp operand types differ".into());
                } else if !(ts.is_int(a) || ts.is_ptr(a)) {
                    bad("icmp on non-integer/pointer type".into());
                }
                if !ts.is_bool(inst.ty) {
                    bad("icmp result must be i1".into());
                }
            }
        Opcode::FCmp
            if inst.operands.len() == 2 => {
                let (a, b) = (vty(inst.operands[0]), vty(inst.operands[1]));
                if a != b || !ts.is_float(a) {
                    bad("fcmp operand types invalid".into());
                }
                if !ts.is_bool(inst.ty) {
                    bad("fcmp result must be i1".into());
                }
            }
        Opcode::Select
            if inst.operands.len() == 3 => {
                if !ts.is_bool(vty(inst.operands[0])) {
                    bad("select condition must be i1".into());
                }
                let (t, e) = (vty(inst.operands[1]), vty(inst.operands[2]));
                if t != e || t != inst.ty {
                    bad("select arm/result types differ".into());
                }
            }
        Opcode::CondBr
            if inst.operands.len() == 1 && !ts.is_bool(vty(inst.operands[0])) => {
                bad("condbr condition must be i1".into());
            }
        Opcode::Ret => {
            let want_void = ts.is_void(f.ret_ty);
            match (inst.operands.first(), want_void) {
                (None, true) => {}
                (None, false) => bad("ret void in non-void function".into()),
                (Some(_), true) => bad("ret value in void function".into()),
                (Some(&v), false) => {
                    if vty(v) != f.ret_ty {
                        bad("ret value type != function return type".into());
                    }
                }
            }
        }
        Opcode::Load
            if inst.operands.len() == 1 && !ts.is_ptr(vty(inst.operands[0])) => {
                bad("load address must be ptr".into());
            }
        Opcode::Store
            if inst.operands.len() == 2 && !ts.is_ptr(vty(inst.operands[1])) => {
                bad("store address must be ptr".into());
            }
        Opcode::Gep
            if inst.operands.len() == 2 => {
                if !ts.is_ptr(vty(inst.operands[0])) {
                    bad("gep base must be ptr".into());
                }
                if !ts.is_int(vty(inst.operands[1])) {
                    bad("gep index must be an integer".into());
                }
            }
        Opcode::Phi => {
            for &v in &inst.operands {
                if vty(v) != inst.ty {
                    bad("phi incoming value type mismatch".into());
                    break;
                }
            }
        }
        op if op.is_cast()
            && inst.operands.len() == 1 => {
                let from = vty(inst.operands[0]);
                let to = inst.ty;
                let valid = match op {
                    Opcode::Trunc => int_widths(ts, from, to).is_some_and(|(a, b)| a > b),
                    Opcode::ZExt | Opcode::SExt => {
                        int_widths(ts, from, to).is_some_and(|(a, b)| a < b)
                    }
                    Opcode::FPTrunc | Opcode::FPExt => {
                        ts.is_float(from) && ts.is_float(to) && from != to
                    }
                    Opcode::FPToUI | Opcode::FPToSI => ts.is_float(from) && ts.is_int(to),
                    Opcode::UIToFP | Opcode::SIToFP => ts.is_int(from) && ts.is_float(to),
                    Opcode::PtrToInt => ts.is_ptr(from) && ts.is_int(to),
                    Opcode::IntToPtr => ts.is_int(from) && ts.is_ptr(to),
                    Opcode::BitCast => ts.size_of(from) == ts.size_of(to) && from != to,
                    _ => true,
                };
                if !valid {
                    bad(format!(
                        "invalid {} from {} to {}",
                        op.mnemonic(),
                        ts.display(from),
                        ts.display(to)
                    ));
                }
            }
        _ => {}
    }
    let _ = m;
}

fn int_widths(
    ts: &crate::types::TypeStore,
    from: crate::types::TypeId,
    to: crate::types::TypeId,
) -> Option<(u32, u32)> {
    match (ts.kind(from), ts.kind(to)) {
        (TypeKind::Int(a), TypeKind::Int(b)) => Some((*a, *b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::inst::{Instruction, IntPredicate};
    use crate::module::Module;

    fn simple_module() -> Module {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut f = Function::new("ok", vec![i32t, i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let s = b.add(b.func().arg(0), b.func().arg(1));
            b.ret(Some(s));
        }
        m.add_function(f);
        m
    }

    #[test]
    fn accepts_valid_function() {
        let m = simple_module();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut f = Function::new("bad", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            b.add(b.func().arg(0), b.func().arg(0));
            // no ret
        }
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::BadTerminator { .. })), "{errs:?}");
    }

    #[test]
    fn rejects_type_mismatch_in_ret() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let i64t = m.types.int(64);
        let mut f = Function::new("bad", vec![i64t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            let a = b.func().arg(0);
            b.ret(Some(a));
        }
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::TypeError { .. })), "{errs:?}");
    }

    #[test]
    fn rejects_dominance_violation() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let void = m.types.void();
        let mut f = Function::new("bad", vec![i32t], i32t);
        let entry = f.add_block("entry");
        let other = f.add_block("other");
        // entry: ret uses a value defined in `other`, which does not
        // dominate entry.
        let arg = f.arg(0);
        let (_, late) = f.append_inst(
            &m.types,
            other,
            Instruction {
                op: Opcode::Add,
                ty: i32t,
                operands: vec![arg, arg],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: other,
                result: None,
            },
        );
        // Make `other` reachable: entry condbr -> other / exit path.
        f.append_inst(
            &m.types,
            entry,
            Instruction {
                op: Opcode::Ret,
                ty: void,
                operands: vec![late.unwrap()],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: entry,
                result: None,
            },
        );
        f.append_inst(
            &m.types,
            other,
            Instruction {
                op: Opcode::Unreachable,
                ty: void,
                operands: vec![],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: other,
                result: None,
            },
        );
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(e, VerifyError::DominanceViolation { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_phi_incoming_mismatch() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let mut f = Function::new("bad", vec![i32t], i32t);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            let next = b.create_block("next");
            b.position_at_end(entry);
            b.br(next);
            b.position_at_end(next);
            // Phi claims an incoming from `next` itself, but the only pred
            // is `entry`.
            let a = b.func().arg(0);
            let p = b.phi(i32t, &[(a, next)]);
            b.ret(Some(p));
        }
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(e, VerifyError::PhiIncomingMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_misplaced_phi() {
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let void = m.types.void();
        let mut f = Function::new("bad", vec![i32t], i32t);
        let entry = f.add_block("entry");
        let arg = f.arg(0);
        let mk = |op, ty, operands: Vec<ValueId>, blocks: Vec<BlockId>| Instruction {
            op,
            ty,
            operands,
            blocks,
            pred: None,
            aux_ty: None,
            parent: entry,
            result: None,
        };
        let (_, add) = f.append_inst(&m.types, entry, mk(Opcode::Add, i32t, vec![arg, arg], vec![]));
        // Phi after a non-phi; also give it a bogus incoming to keep shape valid.
        f.append_inst(&m.types, entry, mk(Opcode::Phi, i32t, vec![arg], vec![entry]));
        f.append_inst(&m.types, entry, mk(Opcode::Ret, void, vec![add.unwrap()], vec![]));
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::MisplacedPhi { .. })), "{errs:?}");
    }

    #[test]
    fn rejects_signature_mismatch() {
        let mut m = simple_module();
        let i32t = m.types.int(32);
        let i64t = m.types.int(64);
        let ptr = m.types.ptr();
        let callee = m.lookup_function("ok").unwrap();
        let mut f = Function::new("caller", vec![i64t], i32t);
        let fr = f.func_ref(callee, ptr);
        {
            let mut b = FunctionBuilder::new(&mut m.types, &mut f);
            let entry = b.create_block("entry");
            b.position_at_end(entry);
            // Pass an i64 where `ok` expects two i32 params: both an arity
            // and a type mismatch.
            let v = b.func().arg(0);
            let _ = b.call(fr, &[v], i32t);
            let z = b.const_int(i32t, 0);
            b.ret(Some(z));
        }
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(e, VerifyError::SignatureMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn icmp_result_must_be_bool() {
        // Constructed via the builder, icmp is always well-typed; build a raw
        // one to check the verifier path.
        let mut m = Module::new("t");
        let i32t = m.types.int(32);
        let void = m.types.void();
        let mut f = Function::new("bad", vec![i32t], i32t);
        let entry = f.add_block("entry");
        let arg = f.arg(0);
        let (_, c) = f.append_inst(
            &m.types,
            entry,
            Instruction {
                op: Opcode::ICmp,
                ty: i32t, // should be i1
                operands: vec![arg, arg],
                blocks: vec![],
                pred: Some(Predicate::Int(IntPredicate::Eq)),
                aux_ty: None,
                parent: entry,
                result: None,
            },
        );
        f.append_inst(
            &m.types,
            entry,
            Instruction {
                op: Opcode::Ret,
                ty: void,
                operands: vec![c.unwrap()],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: entry,
                result: None,
            },
        );
        let id = m.add_function(f);
        let errs = verify_function(&m, id).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::TypeError { .. })), "{errs:?}");
    }
}
