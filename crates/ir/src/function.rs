//! Functions and basic blocks.
//!
//! A [`Function`] owns three arenas — values, instructions and blocks — plus
//! the ordered list of its blocks (entry first). All mutation goes through
//! methods that keep the auxiliary indices (constant dedup map, result
//! links) consistent.

use std::collections::HashMap;

use crate::ids::{BlockId, FuncId, GlobalId, InstId, ValueId};
use crate::inst::{Instruction, Opcode};
use crate::types::{TypeId, TypeStore};
use crate::value::{normalize_int, ConstKey, Value, ValueKind};

/// Linkage of a function, which decides whether the merging pass may delete
/// or rewrite it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Visible outside the module; body may be replaced by a thunk but the
    /// symbol must survive.
    #[default]
    External,
    /// Module-private; may be removed entirely once unused.
    Internal,
}

/// A basic block: a label plus an ordered list of instructions, the last of
/// which is a terminator (once the function is complete).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Name used by the printer (`bb0`, `entry.merged`, ...). Not
    /// semantically meaningful; uniqueness is by [`BlockId`].
    pub name: String,
    /// Instructions in execution order.
    pub insts: Vec<InstId>,
}

/// A function definition or declaration.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Parameter types.
    pub params: Vec<TypeId>,
    /// Return type (`void` allowed).
    pub ret_ty: TypeId,
    /// Linkage.
    pub linkage: Linkage,
    /// `true` if the function has no body (external declaration).
    pub is_declaration: bool,
    /// Ordered blocks; the first is the entry block.
    pub block_order: Vec<BlockId>,
    values: Vec<Value>,
    insts: Vec<Instruction>,
    blocks: Vec<Block>,
    arg_values: Vec<ValueId>,
    const_map: HashMap<ConstKey, ValueId>,
}

impl Function {
    /// Creates an empty function definition with one value per parameter.
    pub fn new(name: impl Into<String>, params: Vec<TypeId>, ret_ty: TypeId) -> Self {
        let mut f = Function {
            name: name.into(),
            params: params.clone(),
            ret_ty,
            linkage: Linkage::External,
            is_declaration: false,
            block_order: Vec::new(),
            values: Vec::new(),
            insts: Vec::new(),
            blocks: Vec::new(),
            arg_values: Vec::new(),
            const_map: HashMap::new(),
        };
        for (i, &ty) in params.iter().enumerate() {
            let v = f.push_value(Value { kind: ValueKind::Arg(i as u32), ty });
            f.arg_values.push(v);
        }
        f
    }

    /// Creates an external declaration (no body).
    pub fn new_declaration(name: impl Into<String>, params: Vec<TypeId>, ret_ty: TypeId) -> Self {
        let mut f = Function::new(name, params, ret_ty);
        f.is_declaration = true;
        f
    }

    // ---- values ---------------------------------------------------------

    fn push_value(&mut self, v: Value) -> ValueId {
        let id = ValueId::from_index(self.values.len());
        self.values.push(v);
        id
    }

    /// The value representing the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> ValueId {
        self.arg_values[i]
    }

    /// Number of parameters.
    pub fn num_args(&self) -> usize {
        self.arg_values.len()
    }

    /// Looks up a value.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of values in the arena (including dead ones).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(id, value)` pairs.
    pub fn values(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values.iter().enumerate().map(|(i, v)| (ValueId::from_index(i), v))
    }

    /// Interns an integer constant of type `ty` (an integer or pointer
    /// type), normalizing the payload to the type's width.
    pub fn const_int(&mut self, ts: &TypeStore, ty: TypeId, value: i64) -> ValueId {
        let value = match ts.int_bits(ty) {
            Some(bits) => normalize_int(value, bits),
            None => value,
        };
        self.intern_const(Value { kind: ValueKind::ConstInt(value), ty })
    }

    /// Interns a floating-point constant of type `ty`.
    pub fn const_float(&mut self, ty: TypeId, value: f64) -> ValueId {
        self.intern_const(Value { kind: ValueKind::ConstFloat(value.to_bits()), ty })
    }

    /// Interns `undef` of type `ty`.
    pub fn undef(&mut self, ty: TypeId) -> ValueId {
        self.intern_const(Value { kind: ValueKind::Undef, ty })
    }

    /// Interns a reference to a function (always of pointer type `ptr_ty`).
    pub fn func_ref(&mut self, f: FuncId, ptr_ty: TypeId) -> ValueId {
        self.intern_const(Value { kind: ValueKind::FuncRef(f), ty: ptr_ty })
    }

    /// Interns a reference to a global (always of pointer type `ptr_ty`).
    pub fn global_ref(&mut self, g: GlobalId, ptr_ty: TypeId) -> ValueId {
        self.intern_const(Value { kind: ValueKind::GlobalRef(g), ty: ptr_ty })
    }

    /// Interns an arbitrary constant-like value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not constant-like.
    pub fn intern_const(&mut self, v: Value) -> ValueId {
        let key = ConstKey::of(&v).expect("intern_const on non-constant value");
        if let Some(&id) = self.const_map.get(&key) {
            return id;
        }
        let id = self.push_value(v);
        self.const_map.insert(key, id);
        id
    }

    // ---- blocks -----------------------------------------------------------

    /// Appends a new empty block at the end of the block order.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block { name: name.into(), insts: Vec::new() });
        self.block_order.push(id);
        id
    }

    /// Looks up a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable block access. Callers must keep instruction parents in sync.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (a declaration).
    pub fn entry(&self) -> BlockId {
        self.block_order[0]
    }

    /// Number of blocks linked into the function (the executable ones).
    pub fn num_blocks(&self) -> usize {
        self.block_order.len()
    }

    /// Size of the block arena, including blocks that were unlinked (e.g.
    /// by unreachable-block pruning). Analyses that index tables by
    /// [`BlockId`] must size them with this, not [`Function::num_blocks`].
    pub fn block_arena_len(&self) -> usize {
        self.blocks.len()
    }

    // ---- instructions ----------------------------------------------------

    /// Appends `inst` to block `bb`, creating a result value if the result
    /// type is first-class. Returns the result value (or `None`).
    pub fn append_inst(
        &mut self,
        ts: &TypeStore,
        bb: BlockId,
        mut inst: Instruction,
    ) -> (InstId, Option<ValueId>) {
        inst.parent = bb;
        let id = InstId::from_index(self.insts.len());
        let result = if ts.is_first_class(inst.ty) && inst.op != Opcode::Store {
            Some(self.push_value(Value { kind: ValueKind::Inst(id), ty: inst.ty }))
        } else {
            None
        };
        inst.result = result;
        self.insts.push(inst);
        self.blocks[bb.index()].insts.push(id);
        (id, result)
    }

    /// Inserts `inst` into block `bb` at position `pos` (0 = front).
    /// Used by the dominance-repair machinery of the merged code generator.
    pub fn insert_inst(
        &mut self,
        ts: &TypeStore,
        bb: BlockId,
        pos: usize,
        mut inst: Instruction,
    ) -> (InstId, Option<ValueId>) {
        inst.parent = bb;
        let id = InstId::from_index(self.insts.len());
        let result = if ts.is_first_class(inst.ty) && inst.op != Opcode::Store {
            Some(self.push_value(Value { kind: ValueKind::Inst(id), ty: inst.ty }))
        } else {
            None
        };
        inst.result = result;
        self.insts.push(inst);
        self.blocks[bb.index()].insts.insert(pos, id);
        (id, result)
    }

    /// Looks up an instruction.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.index()]
    }

    /// Mutable instruction access.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.index()]
    }

    /// Total number of instructions in the arena (including any that were
    /// unlinked from their blocks).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently linked into blocks — the size used
    /// for fingerprints and the paper's "number of instructions" counts.
    pub fn num_linked_insts(&self) -> usize {
        self.block_order.iter().map(|&b| self.block(b).insts.len()).sum()
    }

    /// Iterates over instructions of a block in order.
    pub fn block_insts(&self, bb: BlockId) -> impl Iterator<Item = (InstId, &Instruction)> {
        self.blocks[bb.index()].insts.iter().map(move |&i| (i, self.inst(i)))
    }

    /// Iterates over all instructions in block order.
    pub fn linked_insts(&self) -> impl Iterator<Item = (InstId, &Instruction)> {
        self.block_order.iter().flat_map(move |&b| self.block_insts(b))
    }

    /// The terminator of `bb`, if the block is non-empty and ends in one.
    pub fn terminator(&self, bb: BlockId) -> Option<(InstId, &Instruction)> {
        let last = *self.block(bb).insts.last()?;
        let inst = self.inst(last);
        inst.is_terminator().then_some((last, inst))
    }

    /// Position of the first non-phi instruction in `bb` — the "first legal
    /// point after the definition" for phi-defined values (Section III-E
    /// bug fix #1).
    pub fn first_non_phi(&self, bb: BlockId) -> usize {
        self.block(bb)
            .insts
            .iter()
            .position(|&i| self.inst(i).op != Opcode::Phi)
            .unwrap_or(self.block(bb).insts.len())
    }

    /// Removes `id` from its parent block's instruction list. The arena
    /// entry remains (handles stay valid) but the instruction no longer
    /// executes and is no longer printed. The caller must first redirect
    /// any uses of its result, e.g. via [`Function::replace_all_uses`].
    pub fn unlink_inst(&mut self, id: InstId) {
        let parent = self.insts[id.index()].parent;
        self.blocks[parent.index()].insts.retain(|&i| i != id);
    }

    /// Splits `bb` at instruction position `pos`: instructions from `pos`
    /// onward (including the terminator) move to a new block appended at
    /// the end of the block order, and `bb` is re-terminated with an
    /// unconditional branch to it. Phi incoming entries anywhere in the
    /// function that named `bb` are retargeted to the new block, since
    /// every edge the old terminator carried now leaves from the tail.
    ///
    /// `void_ty` must be the interned `void` type (needed for the new
    /// branch; this method only holds a shared [`TypeStore`] borrow).
    /// Returns the new block.
    ///
    /// # Panics
    ///
    /// Panics if `pos` falls inside the leading phi group or past the last
    /// instruction (the split must leave a terminator to move).
    pub fn split_block(
        &mut self,
        ts: &TypeStore,
        void_ty: TypeId,
        bb: BlockId,
        pos: usize,
    ) -> BlockId {
        assert!(pos >= self.first_non_phi(bb), "cannot split inside the phi group");
        assert!(pos < self.block(bb).insts.len(), "split must leave a terminator to move");
        let tail = self.blocks[bb.index()].insts.split_off(pos);
        let name = format!("{}.split", self.blocks[bb.index()].name);
        let new_bb = self.add_block(name);
        for &i in &tail {
            self.insts[i.index()].parent = new_bb;
        }
        self.blocks[new_bb.index()].insts = tail;
        // The moved terminator's edges now originate from `new_bb`; phis in
        // its successors (including `bb` itself, for self-loops) track that.
        // `new_bb` holds no phis (the phi group stayed behind), so a global
        // rewrite of incoming-block entries is exact.
        for inst in &mut self.insts {
            if inst.op == Opcode::Phi {
                for b in &mut inst.blocks {
                    if *b == bb {
                        *b = new_bb;
                    }
                }
            }
        }
        self.append_inst(
            ts,
            bb,
            Instruction {
                op: Opcode::Br,
                ty: void_ty,
                operands: vec![],
                blocks: vec![new_bb],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        new_bb
    }

    /// Replaces every use of `from` with `to` across all instructions.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for inst in &mut self.insts {
            for op in &mut inst.operands {
                if *op == from {
                    *op = to;
                }
            }
        }
    }

    /// The linear instruction stream of the function, in block order — the
    /// representation fingerprints and whole-function alignment work on.
    pub fn linearize(&self) -> Vec<InstId> {
        self.linked_insts().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TypeStore, Function) {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let f = Function::new("test", vec![i32t, i32t], i32t);
        (ts, f)
    }

    #[test]
    fn args_have_values() {
        let (_, f) = setup();
        assert_eq!(f.num_args(), 2);
        let a0 = f.value(f.arg(0));
        assert_eq!(a0.kind, ValueKind::Arg(0));
    }

    #[test]
    fn const_interning_dedups() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let a = f.const_int(&ts, i32t, 7);
        let b = f.const_int(&ts, i32t, 7);
        assert_eq!(a, b);
        let c = f.const_int(&ts, i32t, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn const_int_normalizes_to_width() {
        let mut ts = TypeStore::new();
        let i8t = ts.int(8);
        let mut f = Function::new("t", vec![], i8t);
        let a = f.const_int(&ts, i8t, 255);
        let b = f.const_int(&ts, i8t, -1);
        assert_eq!(a, b, "255 and -1 are the same i8 pattern");
    }

    #[test]
    fn append_creates_results_for_first_class_types() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let void = ts.void();
        let bb = f.add_block("entry");
        let (a, b) = (f.arg(0), f.arg(1));
        let (_, res) = f.append_inst(
            &ts,
            bb,
            Instruction {
                op: Opcode::Add,
                ty: i32t,
                operands: vec![a, b],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        assert!(res.is_some());
        let (_, no_res) = f.append_inst(
            &ts,
            bb,
            Instruction {
                op: Opcode::Ret,
                ty: void,
                operands: vec![res.unwrap()],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        assert!(no_res.is_none());
        assert_eq!(f.num_linked_insts(), 2);
        assert!(f.terminator(bb).is_some());
    }

    #[test]
    fn first_non_phi_skips_leading_phis() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let bb = f.add_block("bb");
        let a = f.arg(0);
        let mk = |op: Opcode, ty: TypeId, bb: BlockId| Instruction {
            op,
            ty,
            operands: vec![a, a],
            blocks: if op == Opcode::Phi { vec![bb, bb] } else { vec![] },
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        };
        f.append_inst(&ts, bb, mk(Opcode::Phi, i32t, bb));
        f.append_inst(&ts, bb, mk(Opcode::Phi, i32t, bb));
        f.append_inst(&ts, bb, mk(Opcode::Add, i32t, bb));
        assert_eq!(f.first_non_phi(bb), 2);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let bb = f.add_block("entry");
        let (a, b) = (f.arg(0), f.arg(1));
        let (i, res) = f.append_inst(
            &ts,
            bb,
            Instruction {
                op: Opcode::Add,
                ty: i32t,
                operands: vec![a, a],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        f.replace_all_uses(a, b);
        assert_eq!(f.inst(i).operands, vec![b, b]);
        let _ = res;
    }

    #[test]
    fn unlink_inst_removes_from_block_only() {
        let (mut ts, mut f) = setup();
        let i32t = ts.int(32);
        let bb = f.add_block("entry");
        let a = f.arg(0);
        let mk = || Instruction {
            op: Opcode::Add,
            ty: i32t,
            operands: vec![a, a],
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        };
        let (i0, _) = f.append_inst(&ts, bb, mk());
        let (i1, _) = f.append_inst(&ts, bb, mk());
        f.unlink_inst(i0);
        assert_eq!(f.block(bb).insts, vec![i1]);
        assert_eq!(f.num_insts(), 2, "arena entry survives unlinking");
    }

    #[test]
    fn split_block_moves_tail_and_rewires_phis() {
        // bb0: v = add; condbr -> bb1 / bb0 (self loop).
        // bb1 has a phi with incoming from bb0; after splitting bb0 past
        // the add, the edge into bb1 (and the self-loop edge) must come
        // from the new tail block.
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let boolt = ts.bool();
        let void = ts.void();
        let mut f = Function::new("t", vec![i32t], i32t);
        let bb0 = f.add_block("bb0");
        let bb1 = f.add_block("bb1");
        let a = f.arg(0);
        let (_, add) = f.append_inst(
            &ts,
            bb0,
            Instruction {
                op: Opcode::Add,
                ty: i32t,
                operands: vec![a, a],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb0,
                result: None,
            },
        );
        let (_, cond) = f.append_inst(
            &ts,
            bb0,
            Instruction {
                op: Opcode::ICmp,
                ty: boolt,
                operands: vec![a, add.unwrap()],
                blocks: vec![],
                pred: Some(crate::inst::Predicate::Int(crate::inst::IntPredicate::Slt)),
                aux_ty: None,
                parent: bb0,
                result: None,
            },
        );
        f.append_inst(
            &ts,
            bb0,
            Instruction {
                op: Opcode::CondBr,
                ty: void,
                operands: vec![cond.unwrap()],
                blocks: vec![bb1, bb0],
                pred: None,
                aux_ty: None,
                parent: bb0,
                result: None,
            },
        );
        let (_, phi) = f.insert_inst(
            &ts,
            bb1,
            0,
            Instruction {
                op: Opcode::Phi,
                ty: i32t,
                operands: vec![add.unwrap()],
                blocks: vec![bb0],
                pred: None,
                aux_ty: None,
                parent: bb1,
                result: None,
            },
        );
        f.append_inst(
            &ts,
            bb1,
            Instruction {
                op: Opcode::Ret,
                ty: void,
                operands: vec![phi.unwrap()],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb1,
                result: None,
            },
        );
        let new_bb = f.split_block(&ts, void, bb0, 1);
        // bb0 keeps [add, br new_bb]; new_bb holds [icmp, condbr].
        assert_eq!(f.block(bb0).insts.len(), 2);
        assert_eq!(f.terminator(bb0).unwrap().1.blocks, vec![new_bb]);
        assert_eq!(f.block(new_bb).insts.len(), 2);
        for (_, inst) in f.block_insts(new_bb) {
            assert_eq!(inst.parent, new_bb);
        }
        // The condbr's self-loop edge still points at bb0...
        assert_eq!(f.terminator(new_bb).unwrap().1.blocks, vec![bb1, bb0]);
        // ...and the phi in bb1 now names new_bb as its incoming.
        let (_, phi_inst) = f.block_insts(bb1).next().unwrap();
        assert_eq!(phi_inst.blocks, vec![new_bb]);
    }

    #[test]
    #[should_panic(expected = "phi group")]
    fn split_block_rejects_phi_group_positions() {
        let mut ts = TypeStore::new();
        let i32t = ts.int(32);
        let void = ts.void();
        let mut f = Function::new("t", vec![i32t], i32t);
        let bb = f.add_block("bb");
        let a = f.arg(0);
        f.append_inst(
            &ts,
            bb,
            Instruction {
                op: Opcode::Phi,
                ty: i32t,
                operands: vec![a],
                blocks: vec![bb],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        f.append_inst(
            &ts,
            bb,
            Instruction {
                op: Opcode::Ret,
                ty: void,
                operands: vec![a],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        f.split_block(&ts, void, bb, 0);
    }

    #[test]
    fn linearize_follows_block_order() {
        let (mut ts, mut f) = setup();
        let void = ts.void();
        let bb0 = f.add_block("a");
        let bb1 = f.add_block("b");
        let mk_br = |target: BlockId| Instruction {
            op: Opcode::Br,
            ty: void,
            operands: vec![],
            blocks: vec![target],
            pred: None,
            aux_ty: None,
            parent: bb0,
            result: None,
        };
        let (i0, _) = f.append_inst(&ts, bb0, mk_br(bb1));
        let (i1, _) = f.append_inst(
            &ts,
            bb1,
            Instruction {
                op: Opcode::Unreachable,
                ty: void,
                operands: vec![],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb1,
                result: None,
            },
        );
        assert_eq!(f.linearize(), vec![i0, i1]);
    }
}
