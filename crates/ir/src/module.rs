//! Modules: the unit the merging pass operates on.

use std::collections::HashMap;

use crate::ids::{FuncId, GlobalId};
use crate::function::Function;
use crate::types::{TypeId, TypeStore};

/// A module-level global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Type of the value stored in the global.
    pub ty: TypeId,
    /// Initial value interpreted as raw little-endian bytes of the type
    /// (zero-filled if shorter than the type size).
    pub init: Vec<u8>,
}

/// A whole program: types, globals, and functions.
///
/// # Examples
///
/// ```
/// use f3m_ir::module::Module;
/// use f3m_ir::function::Function;
///
/// let mut m = Module::new("demo");
/// let i32t = m.types.int(32);
/// let f = Function::new("id", vec![i32t], i32t);
/// let fid = m.add_function(f);
/// assert_eq!(m.function(fid).name, "id");
/// assert_eq!(m.lookup_function("id"), Some(fid));
/// ```
#[derive(Clone, Debug)]
pub struct Module {
    /// Module identifier (used in diagnostics only).
    pub name: String,
    /// The type interner shared by all functions of the module.
    pub types: TypeStore,
    funcs: Vec<Function>,
    globals: Vec<Global>,
    func_names: HashMap<String, FuncId>,
    global_names: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            types: TypeStore::new(),
            funcs: Vec::new(),
            globals: Vec::new(),
            func_names: HashMap::new(),
            global_names: HashMap::new(),
        }
    }

    /// Adds a function, registering its name.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        assert!(
            !self.func_names.contains_key(&f.name),
            "duplicate function name {}",
            f.name
        );
        let id = FuncId::from_index(self.funcs.len());
        self.func_names.insert(f.name.clone(), id);
        self.funcs.push(f);
        id
    }

    /// Adds a global variable.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        assert!(
            !self.global_names.contains_key(&g.name),
            "duplicate global name {}",
            g.name
        );
        let id = GlobalId::from_index(self.globals.len());
        self.global_names.insert(g.name.clone(), id);
        self.globals.push(g);
        id
    }

    /// Looks up a function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable function access.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Splits the borrow: mutable access to one function together with
    /// shared access to the type store. Needed by code that appends typed
    /// instructions to a function owned by this module.
    pub fn func_mut_and_types(&mut self, id: FuncId) -> (&mut Function, &TypeStore) {
        let Module { funcs, types, .. } = self;
        (&mut funcs[id.index()], &*types)
    }

    /// Replaces the function at `id` wholesale (used when a body is
    /// replaced by a thunk). The new function must keep the same name.
    ///
    /// # Panics
    ///
    /// Panics if the replacement's name differs from the original's.
    pub fn replace_function(&mut self, id: FuncId, f: Function) {
        assert_eq!(self.funcs[id.index()].name, f.name, "replace_function must keep the name");
        self.funcs[id.index()] = f;
    }

    /// Renames the function at `id`, keeping the name registry in sync.
    /// Safe for any function: call sites reference callees through
    /// [`FuncId`]s, never by name, so no body rewriting is needed. Used to
    /// namespace symbols when modules from different origins are combined
    /// into one corpus.
    ///
    /// # Panics
    ///
    /// Panics if `new_name` is already taken by a different function.
    pub fn rename_function(&mut self, id: FuncId, new_name: impl Into<String>) {
        let new_name = new_name.into();
        let old = self.funcs[id.index()].name.clone();
        if old == new_name {
            return;
        }
        assert!(
            !self.func_names.contains_key(&new_name),
            "rename target {new_name} already exists"
        );
        self.func_names.remove(&old);
        self.func_names.insert(new_name.clone(), id);
        self.funcs[id.index()].name = new_name;
    }

    /// Removes the most recently added function. Used by the merging pass
    /// to discard a freshly built merged function that turned out to be
    /// unprofitable, before anything can reference it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the last function in the module.
    pub fn remove_last_function(&mut self, id: FuncId) {
        assert_eq!(
            id.index() + 1,
            self.funcs.len(),
            "remove_last_function on a non-last function"
        );
        let f = self.funcs.pop().expect("non-empty function list");
        self.func_names.remove(&f.name);
    }

    /// Looks up a global by id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Resolves a function name.
    pub fn lookup_function(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// Resolves a global name.
    pub fn lookup_global(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// Number of functions (definitions + declarations).
    pub fn num_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Iterates over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Iterates over `(id, global)` pairs.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals.iter().enumerate().map(|(i, g)| (GlobalId::from_index(i), g))
    }

    /// Ids of all function *definitions* (bodies the merger may touch).
    pub fn defined_functions(&self) -> Vec<FuncId> {
        self.functions()
            .filter(|(_, f)| !f.is_declaration)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total number of linked instructions across all definitions.
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().filter(|f| !f.is_declaration).map(|f| f.num_linked_insts()).sum()
    }

    /// Splits a block of function `fid` at instruction position `pos`,
    /// interning the `void` type on the caller's behalf. See
    /// [`Function::split_block`] for the exact semantics.
    pub fn split_block(
        &mut self,
        fid: FuncId,
        bb: crate::ids::BlockId,
        pos: usize,
    ) -> crate::ids::BlockId {
        let void = self.types.void();
        let Module { funcs, types, .. } = self;
        funcs[fid.index()].split_block(types, void, bb, pos)
    }

    /// Generates a fresh function name with the given prefix that does not
    /// collide with any existing symbol.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut i = self.funcs.len();
        loop {
            let candidate = format!("{prefix}.{i}");
            if !self.func_names.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("m");
        let i32t = m.types.int(32);
        let id = m.add_function(Function::new("f", vec![i32t], i32t));
        assert_eq!(m.lookup_function("f"), Some(id));
        assert_eq!(m.lookup_function("g"), None);
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_panics() {
        let mut m = Module::new("m");
        let v = m.types.void();
        m.add_function(Function::new("f", vec![], v));
        m.add_function(Function::new("f", vec![], v));
    }

    #[test]
    fn globals_round_trip() {
        let mut m = Module::new("m");
        let i64t = m.types.int(64);
        let g = m.add_global(Global { name: "g0".into(), ty: i64t, init: vec![1, 0, 0, 0, 0, 0, 0, 0] });
        assert_eq!(m.global(g).name, "g0");
        assert_eq!(m.lookup_global("g0"), Some(g));
        assert_eq!(m.num_globals(), 1);
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut m = Module::new("m");
        let v = m.types.void();
        m.add_function(Function::new("merged.0", vec![], v));
        let name = m.fresh_name("merged");
        assert_ne!(name, "merged.0");
        assert!(m.lookup_function(&name).is_none());
    }

    #[test]
    fn rename_function_updates_registry() {
        let mut m = Module::new("m");
        let v = m.types.void();
        let id = m.add_function(Function::new("f", vec![], v));
        m.rename_function(id, "ns.f");
        assert_eq!(m.function(id).name, "ns.f");
        assert_eq!(m.lookup_function("ns.f"), Some(id));
        assert_eq!(m.lookup_function("f"), None);
        // Renaming to the current name is a no-op.
        m.rename_function(id, "ns.f");
        assert_eq!(m.lookup_function("ns.f"), Some(id));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn rename_to_taken_name_panics() {
        let mut m = Module::new("m");
        let v = m.types.void();
        let id = m.add_function(Function::new("f", vec![], v));
        m.add_function(Function::new("g", vec![], v));
        m.rename_function(id, "g");
    }

    #[test]
    fn defined_functions_excludes_declarations() {
        let mut m = Module::new("m");
        let v = m.types.void();
        m.add_function(Function::new_declaration("ext", vec![], v));
        let d = m.add_function(Function::new("def", vec![], v));
        assert_eq!(m.defined_functions(), vec![d]);
    }
}
