//! Instructions and opcodes.
//!
//! The opcode set mirrors the LLVM instructions that occur in the programs
//! the F3M paper evaluates on. Each instruction has a result type (possibly
//! `void`), a flat operand list, an optional list of target blocks (for
//! terminators and for phi incoming blocks), an optional comparison
//! predicate and an optional auxiliary type (`alloca`'s allocated type,
//! `load`'s loaded type, `gep`'s element type, casts' source type is implied
//! by the operand).

use crate::ids::{BlockId, InstId, ValueId};
use crate::types::TypeId;

/// Instruction opcodes.
///
/// The discriminant doubles as the "integer LLVM associates with each
/// opcode" in the paper's instruction-encoding scheme (Section III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Opcode {
    // Terminators.
    Ret = 1,
    Br,
    CondBr,
    Invoke,
    Unreachable,
    // Integer arithmetic.
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    // Bitwise.
    Shl,
    LShr,
    AShr,
    And,
    Or,
    Xor,
    // Floating point arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
    FNeg,
    // Memory.
    Alloca,
    Load,
    Store,
    Gep,
    // Casts.
    Trunc,
    ZExt,
    SExt,
    FPTrunc,
    FPExt,
    FPToUI,
    FPToSI,
    UIToFP,
    SIToFP,
    PtrToInt,
    IntToPtr,
    BitCast,
    // Other.
    ICmp,
    FCmp,
    Phi,
    Select,
    Call,
}

impl Opcode {
    /// Numeric code used by the fingerprint encoding.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Number of distinct opcodes (the dimensionality of the opcode
    /// frequency fingerprint used by HyFM).
    pub const COUNT: usize = 45;

    /// True for instructions that must terminate a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Ret | Opcode::Br | Opcode::CondBr | Opcode::Invoke | Opcode::Unreachable
        )
    }

    /// True for two-operand integer arithmetic/bitwise operations.
    pub fn is_int_binary(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::UDiv
                | Opcode::SDiv
                | Opcode::URem
                | Opcode::SRem
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
        )
    }

    /// True for two-operand floating-point operations.
    pub fn is_float_binary(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FRem
        )
    }

    /// True for any two-operand arithmetic/bitwise operation.
    pub fn is_binary(self) -> bool {
        self.is_int_binary() || self.is_float_binary()
    }

    /// True for cast operations (single operand, result type differs).
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::Trunc
                | Opcode::ZExt
                | Opcode::SExt
                | Opcode::FPTrunc
                | Opcode::FPExt
                | Opcode::FPToUI
                | Opcode::FPToSI
                | Opcode::UIToFP
                | Opcode::SIToFP
                | Opcode::PtrToInt
                | Opcode::IntToPtr
                | Opcode::BitCast
        )
    }

    /// True if the instruction may access memory.
    pub fn touches_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store | Opcode::Alloca)
    }

    /// Textual mnemonic as used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Ret => "ret",
            Opcode::Br => "br",
            Opcode::CondBr => "condbr",
            Opcode::Invoke => "invoke",
            Opcode::Unreachable => "unreachable",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::UDiv => "udiv",
            Opcode::SDiv => "sdiv",
            Opcode::URem => "urem",
            Opcode::SRem => "srem",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FRem => "frem",
            Opcode::FNeg => "fneg",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "gep",
            Opcode::Trunc => "trunc",
            Opcode::ZExt => "zext",
            Opcode::SExt => "sext",
            Opcode::FPTrunc => "fptrunc",
            Opcode::FPExt => "fpext",
            Opcode::FPToUI => "fptoui",
            Opcode::FPToSI => "fptosi",
            Opcode::UIToFP => "uitofp",
            Opcode::SIToFP => "sitofp",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::BitCast => "bitcast",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::Phi => "phi",
            Opcode::Select => "select",
            Opcode::Call => "call",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::iter().find(|op| op.mnemonic() == s)
    }

    /// Iterates over every opcode.
    pub fn iter() -> impl Iterator<Item = Opcode> {
        [
            Opcode::Ret,
            Opcode::Br,
            Opcode::CondBr,
            Opcode::Invoke,
            Opcode::Unreachable,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::UDiv,
            Opcode::SDiv,
            Opcode::URem,
            Opcode::SRem,
            Opcode::Shl,
            Opcode::LShr,
            Opcode::AShr,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::FAdd,
            Opcode::FSub,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::FRem,
            Opcode::FNeg,
            Opcode::Alloca,
            Opcode::Load,
            Opcode::Store,
            Opcode::Gep,
            Opcode::Trunc,
            Opcode::ZExt,
            Opcode::SExt,
            Opcode::FPTrunc,
            Opcode::FPExt,
            Opcode::FPToUI,
            Opcode::FPToSI,
            Opcode::UIToFP,
            Opcode::SIToFP,
            Opcode::PtrToInt,
            Opcode::IntToPtr,
            Opcode::BitCast,
            Opcode::ICmp,
            Opcode::FCmp,
            Opcode::Phi,
            Opcode::Select,
            Opcode::Call,
        ]
        .into_iter()
    }
}

/// Integer comparison predicates (subset of LLVM's `icmp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntPredicate {
    Eq,
    Ne,
    Ugt,
    Uge,
    Ult,
    Ule,
    Sgt,
    Sge,
    Slt,
    Sle,
}

impl IntPredicate {
    /// Textual form (`eq`, `slt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntPredicate::Eq => "eq",
            IntPredicate::Ne => "ne",
            IntPredicate::Ugt => "ugt",
            IntPredicate::Uge => "uge",
            IntPredicate::Ult => "ult",
            IntPredicate::Ule => "ule",
            IntPredicate::Sgt => "sgt",
            IntPredicate::Sge => "sge",
            IntPredicate::Slt => "slt",
            IntPredicate::Sle => "sle",
        }
    }

    /// Parses a predicate mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => IntPredicate::Eq,
            "ne" => IntPredicate::Ne,
            "ugt" => IntPredicate::Ugt,
            "uge" => IntPredicate::Uge,
            "ult" => IntPredicate::Ult,
            "ule" => IntPredicate::Ule,
            "sgt" => IntPredicate::Sgt,
            "sge" => IntPredicate::Sge,
            "slt" => IntPredicate::Slt,
            "sle" => IntPredicate::Sle,
            _ => return None,
        })
    }

    /// Small integer used by the fingerprint encoding to distinguish
    /// predicates.
    pub fn code(self) -> u32 {
        self as u32 + 1
    }
}

/// Floating-point comparison predicates (ordered subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatPredicate {
    Oeq,
    One,
    Ogt,
    Oge,
    Olt,
    Ole,
}

impl FloatPredicate {
    /// Textual form (`oeq`, `olt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatPredicate::Oeq => "oeq",
            FloatPredicate::One => "one",
            FloatPredicate::Ogt => "ogt",
            FloatPredicate::Oge => "oge",
            FloatPredicate::Olt => "olt",
            FloatPredicate::Ole => "ole",
        }
    }

    /// Parses a predicate mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "oeq" => FloatPredicate::Oeq,
            "one" => FloatPredicate::One,
            "ogt" => FloatPredicate::Ogt,
            "oge" => FloatPredicate::Oge,
            "olt" => FloatPredicate::Olt,
            "ole" => FloatPredicate::Ole,
            _ => return None,
        })
    }

    /// Small integer used by the fingerprint encoding.
    pub fn code(self) -> u32 {
        self as u32 + 1
    }
}

/// Comparison predicate attached to `icmp`/`fcmp` instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Integer predicate for [`Opcode::ICmp`].
    Int(IntPredicate),
    /// Float predicate for [`Opcode::FCmp`].
    Float(FloatPredicate),
}

impl Predicate {
    /// Small integer used by the fingerprint encoding.
    pub fn code(self) -> u32 {
        match self {
            Predicate::Int(p) => p.code(),
            Predicate::Float(p) => 16 + p.code(),
        }
    }
}

/// A single IR instruction.
///
/// Operand conventions by opcode:
///
/// | opcode      | operands                                   | blocks                      |
/// |-------------|--------------------------------------------|-----------------------------|
/// | `ret`       | `[]` (void) or `[value]`                   | —                           |
/// | `br`        | `[]`                                       | `[target]`                  |
/// | `condbr`    | `[cond]`                                   | `[then, else]`              |
/// | `invoke`    | `[callee, args...]`                        | `[normal, unwind]`          |
/// | binary ops  | `[lhs, rhs]`                               | —                           |
/// | `fneg`      | `[x]`                                      | —                           |
/// | `alloca`    | `[]` (`aux_ty` = allocated type)           | —                           |
/// | `load`      | `[ptr]`                                    | —                           |
/// | `store`     | `[value, ptr]`                             | —                           |
/// | `gep`       | `[ptr, index]` (`aux_ty` = element type)   | —                           |
/// | casts       | `[x]`                                      | —                           |
/// | `icmp/fcmp` | `[lhs, rhs]` + `pred`                      | —                           |
/// | `phi`       | `[v0, v1, ...]`                            | `[bb0, bb1, ...]` (parallel)|
/// | `select`    | `[cond, if_true, if_false]`                | —                           |
/// | `call`      | `[callee, args...]`                        | —                           |
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// What the instruction does.
    pub op: Opcode,
    /// Result type (`void` for `store`, `br`, etc.).
    pub ty: TypeId,
    /// Value operands (see table above).
    pub operands: Vec<ValueId>,
    /// Block operands: branch targets, or phi incoming blocks.
    pub blocks: Vec<BlockId>,
    /// Comparison predicate for `icmp`/`fcmp`.
    pub pred: Option<Predicate>,
    /// Auxiliary type: allocated type for `alloca`, element type for `gep`.
    pub aux_ty: Option<TypeId>,
    /// Block that contains this instruction.
    pub parent: BlockId,
    /// The SSA value holding this instruction's result, if it produces one.
    pub result: Option<ValueId>,
}

impl Instruction {
    /// True if this instruction ends its block.
    pub fn is_terminator(&self) -> bool {
        self.op.is_terminator()
    }

    /// Successor blocks if this is a terminator (empty for `ret` and
    /// `unreachable`). Phi incoming blocks are *not* successors.
    pub fn successors(&self) -> &[BlockId] {
        if self.is_terminator() {
            &self.blocks
        } else {
            &[]
        }
    }

    /// For `phi` instructions, the `(incoming block, incoming value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a phi.
    pub fn phi_incomings(&self) -> impl Iterator<Item = (BlockId, ValueId)> + '_ {
        assert_eq!(self.op, Opcode::Phi, "phi_incomings on non-phi");
        self.blocks.iter().copied().zip(self.operands.iter().copied())
    }
}

/// An instruction paired with its id; convenient return type for iteration.
#[derive(Clone, Copy, Debug)]
pub struct InstRef<'a> {
    /// Handle of the instruction.
    pub id: InstId,
    /// The instruction itself.
    pub inst: &'a Instruction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trip_all_opcodes() {
        for op in Opcode::iter() {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn opcode_codes_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::iter() {
            assert!(seen.insert(op.code()), "duplicate code for {op:?}");
        }
        assert_eq!(seen.len(), 45);
    }

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Ret.is_terminator());
        assert!(Opcode::CondBr.is_terminator());
        assert!(Opcode::Invoke.is_terminator());
        assert!(!Opcode::Call.is_terminator());
        assert!(!Opcode::Phi.is_terminator());
    }

    #[test]
    fn binary_classification() {
        assert!(Opcode::Add.is_int_binary());
        assert!(Opcode::FMul.is_float_binary());
        assert!(Opcode::Add.is_binary());
        assert!(!Opcode::FNeg.is_binary());
        assert!(!Opcode::ICmp.is_binary());
    }

    #[test]
    fn predicate_mnemonics_round_trip() {
        for p in [
            IntPredicate::Eq,
            IntPredicate::Ne,
            IntPredicate::Ugt,
            IntPredicate::Uge,
            IntPredicate::Ult,
            IntPredicate::Ule,
            IntPredicate::Sgt,
            IntPredicate::Sge,
            IntPredicate::Slt,
            IntPredicate::Sle,
        ] {
            assert_eq!(IntPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
        for p in [
            FloatPredicate::Oeq,
            FloatPredicate::One,
            FloatPredicate::Ogt,
            FloatPredicate::Oge,
            FloatPredicate::Olt,
            FloatPredicate::Ole,
        ] {
            assert_eq!(FloatPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
    }

    #[test]
    fn predicate_codes_distinct_between_int_and_float() {
        let i = Predicate::Int(IntPredicate::Eq).code();
        let f = Predicate::Float(FloatPredicate::Oeq).code();
        assert_ne!(i, f);
    }
}
