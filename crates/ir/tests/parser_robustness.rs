//! Robustness tests: the parser must never panic, only return errors, no
//! matter how mangled its input is. Driven by `f3m-prng` seeded sweeps
//! (the workspace builds offline, so no proptest).

use f3m_ir::parser::parse_module;
use f3m_prng::SmallRng;

const VALID: &str = r#"
module "t" {
declare @ext(i32) -> i32
define @f(i32 %0, i32 %1) -> i32 {
bb0:
  %2 = add i32 %0, %1
  %3 = icmp slt i32 %2, 10
  condbr %3, bb1, bb2
bb1:
  %4 = call i32 @ext(i32 %2)
  ret i32 %4
bb2:
  %5 = phi i32 [ %2, bb0 ]
  ret i32 %5
}
}
"#;

/// Random printable-ASCII string (space..tilde plus newline), length 0..max.
fn random_ascii(rng: &mut SmallRng, max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| {
            // 1-in-16 newline, otherwise a printable byte.
            if rng.gen_bool(1.0 / 16.0) {
                '\n'
            } else {
                rng.gen_range(0x20..=0x7Eu8) as char
            }
        })
        .collect()
}

#[test]
fn arbitrary_ascii_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x1D0);
    for _ in 0..256 {
        let input = random_ascii(&mut rng, 200);
        let _ = parse_module(&input);
    }
}

#[test]
fn truncated_valid_module_never_panics() {
    // VALID is ASCII, so every byte offset is a char boundary; sweep all
    // prefixes exhaustively rather than sampling.
    for cut in 0..=VALID.len() {
        let _ = parse_module(&VALID[..cut]);
    }
}

#[test]
fn single_token_mutations_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x1D1);
    for _ in 0..256 {
        let pos = rng.gen_range(0..VALID.len());
        let replacement = random_ascii(&mut rng, 3);
        let mut s = String::with_capacity(VALID.len() + 3);
        s.push_str(&VALID[..pos]);
        s.push_str(&replacement);
        if pos + 1 < VALID.len() {
            s.push_str(&VALID[pos + 1..]);
        }
        let _ = parse_module(&s);
    }
}

#[test]
fn line_deletions_never_panic() {
    let lines: Vec<&str> = VALID.lines().collect();
    for skip in 0..lines.len() {
        let mutated: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| *l)
            .collect();
        let _ = parse_module(&mutated.join("\n"));
    }
}

#[test]
fn helpful_errors_for_common_mistakes() {
    let cases = [
        ("module \"t\" { define @f() -> void {\nbb0:\n  retx\n}\n}", "unknown mnemonic"),
        ("module \"t\" { define @f() -> void {\nbb0:\n  %1 = add i99999 1, 2\n  ret\n}\n}", "bad int width"),
        ("module \"t\" { define @f() -> void {\nbb0:\n  br nowhere\n  ret\n}\n}", "unknown label"),
        ("module \"t\" { define @f(i32 %0) -> i32 {\nbb0:\n  ret i32 %7\n}\n}", "undefined value"),
    ];
    for (src, needle) in cases {
        let err = parse_module(src).unwrap_err();
        assert!(
            err.msg.contains(needle),
            "expected `{needle}` in error for {src:?}, got: {err}"
        );
    }
}

#[test]
fn deeply_nested_types_do_not_overflow() {
    // [1 x [1 x [1 x ... i32]]] — recursion in the type parser should be
    // fine at reasonable depths.
    let mut ty = String::from("i32");
    for _ in 0..64 {
        ty = format!("[1 x {ty}]");
    }
    let src = format!(
        "module \"t\" {{\ndefine @f() -> i32 {{\nbb0:\n  %1 = alloca {ty}\n  %2 = load i32, %1\n  ret i32 %2\n}}\n}}"
    );
    assert!(parse_module(&src).is_ok());
}
