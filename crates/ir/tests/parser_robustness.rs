//! Robustness tests: the parser must never panic, only return errors, no
//! matter how mangled its input is.

use proptest::prelude::*;

use f3m_ir::parser::parse_module;

const VALID: &str = r#"
module "t" {
declare @ext(i32) -> i32
define @f(i32 %0, i32 %1) -> i32 {
bb0:
  %2 = add i32 %0, %1
  %3 = icmp slt i32 %2, 10
  condbr %3, bb1, bb2
bb1:
  %4 = call i32 @ext(i32 %2)
  ret i32 %4
bb2:
  %5 = phi i32 [ %2, bb0 ]
  ret i32 %5
}
}
"#;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_ascii_never_panics(input in "[ -~\n]{0,200}") {
        let _ = parse_module(&input);
    }

    #[test]
    fn truncated_valid_module_never_panics(cut in 0usize..400) {
        let cut = cut.min(VALID.len());
        // Cut at a char boundary.
        let mut c = cut;
        while !VALID.is_char_boundary(c) {
            c -= 1;
        }
        let _ = parse_module(&VALID[..c]);
    }

    #[test]
    fn single_token_mutations_never_panic(pos in 0usize..400, replacement in "[ -~]{1,3}") {
        let pos = pos.min(VALID.len().saturating_sub(1));
        let mut s = String::with_capacity(VALID.len() + 3);
        let mut p = pos;
        while !VALID.is_char_boundary(p) {
            p -= 1;
        }
        s.push_str(&VALID[..p]);
        s.push_str(&replacement);
        let mut q = p + 1;
        while q < VALID.len() && !VALID.is_char_boundary(q) {
            q += 1;
        }
        if q < VALID.len() {
            s.push_str(&VALID[q..]);
        }
        let _ = parse_module(&s);
    }

    #[test]
    fn line_deletions_never_panic(skip in 0usize..24) {
        let lines: Vec<&str> = VALID.lines().collect();
        let skip = skip.min(lines.len().saturating_sub(1));
        let mutated: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| *l)
            .collect();
        let _ = parse_module(&mutated.join("\n"));
    }
}

#[test]
fn helpful_errors_for_common_mistakes() {
    let cases = [
        ("module \"t\" { define @f() -> void {\nbb0:\n  retx\n}\n}", "unknown mnemonic"),
        ("module \"t\" { define @f() -> void {\nbb0:\n  %1 = add i99999 1, 2\n  ret\n}\n}", "bad int width"),
        ("module \"t\" { define @f() -> void {\nbb0:\n  br nowhere\n  ret\n}\n}", "unknown label"),
        ("module \"t\" { define @f(i32 %0) -> i32 {\nbb0:\n  ret i32 %7\n}\n}", "undefined value"),
    ];
    for (src, needle) in cases {
        let err = parse_module(src).unwrap_err();
        assert!(
            err.msg.contains(needle),
            "expected `{needle}` in error for {src:?}, got: {err}"
        );
    }
}

#[test]
fn deeply_nested_types_do_not_overflow() {
    // [1 x [1 x [1 x ... i32]]] — recursion in the type parser should be
    // fine at reasonable depths.
    let mut ty = String::from("i32");
    for _ in 0..64 {
        ty = format!("[1 x {ty}]");
    }
    let src = format!(
        "module \"t\" {{\ndefine @f() -> i32 {{\nbb0:\n  %1 = alloca {ty}\n  %2 = load i32, %1\n  ret i32 %2\n}}\n}}"
    );
    assert!(parse_module(&src).is_ok());
}
