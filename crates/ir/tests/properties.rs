//! Randomized property tests of the IR substrate.
//!
//! Random programs are built through the public builder API from seeded
//! "recipes", then checked against the core invariants: the verifier
//! accepts them, the printer/parser round-trips them, and the analyses
//! agree with first-principles definitions. Driven by `f3m-prng` (the
//! workspace builds offline, so no proptest — each test sweeps a fixed
//! number of deterministic random cases).

use f3m_ir::builder::FunctionBuilder;
use f3m_ir::cfg::Cfg;
use f3m_ir::dom::DomTree;
use f3m_ir::ids::ValueId;
use f3m_ir::inst::{IntPredicate, Opcode};
use f3m_ir::function::Function;
use f3m_ir::module::Module;
use f3m_ir::printer::print_module;
use f3m_ir::parser::parse_module;
use f3m_ir::value::normalize_int;
use f3m_ir::verify::verify_module;
use f3m_prng::SmallRng;

/// One step of a straight-line function recipe.
#[derive(Clone, Debug)]
enum Step {
    Binary(u8, u8, u8),   // opcode selector, lhs pick, rhs pick
    Cmp(u8, u8, u8),      // predicate selector, lhs, rhs
    Const(i64),
    MemRoundTrip(u8, u8), // index, value pick
    Diamond(u8, u8),      // cond picks
}

fn random_step(rng: &mut SmallRng) -> Step {
    let b = |rng: &mut SmallRng| rng.gen_range(0..=255u8);
    match rng.gen_range(0..5u32) {
        0 => Step::Binary(b(rng), b(rng), b(rng)),
        1 => Step::Cmp(b(rng), b(rng), b(rng)),
        2 => Step::Const(rng.next_u64() as i64),
        3 => Step::MemRoundTrip(b(rng), b(rng)),
        _ => Step::Diamond(b(rng), b(rng)),
    }
}

fn random_recipe(rng: &mut SmallRng, max_len: usize) -> Vec<Step> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| random_step(rng)).collect()
}

const BIN_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
];

const PREDS: [IntPredicate; 4] =
    [IntPredicate::Slt, IntPredicate::Sgt, IntPredicate::Eq, IntPredicate::Ule];

/// Builds a verifier-clean module from a recipe.
fn build_from_recipe(steps: &[Step]) -> Module {
    let mut m = Module::new("prop");
    let i32t = m.types.int(32);
    let mut f = Function::new("f", vec![i32t, i32t], i32t);
    {
        let mut b = FunctionBuilder::new(&mut m.types, &mut f);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        let arr_ty = b.types().array(i32t, 4);
        let scratch = b.alloca(arr_ty);
        let mut pool: Vec<ValueId> = vec![b.func().arg(0), b.func().arg(1)];
        let pick = |pool: &[ValueId], sel: u8| pool[sel as usize % pool.len()];
        for step in steps {
            match *step {
                Step::Binary(op, l, r) => {
                    let lhs = pick(&pool, l);
                    let rhs = pick(&pool, r);
                    let v = b.binary(BIN_OPS[op as usize % BIN_OPS.len()], lhs, rhs);
                    pool.push(v);
                }
                Step::Cmp(p, l, r) => {
                    let lhs = pick(&pool, l);
                    let rhs = pick(&pool, r);
                    let c = b.icmp(PREDS[p as usize % PREDS.len()], lhs, rhs);
                    let v = b.select(c, lhs, rhs);
                    pool.push(v);
                }
                Step::Const(x) => {
                    let v = b.const_int(i32t, x);
                    pool.push(v);
                }
                Step::MemRoundTrip(idx, val) => {
                    let iv = b.const_int(i32t, (idx % 4) as i64);
                    let p = b.gep(i32t, scratch, iv);
                    let v = pick(&pool, val);
                    b.store(v, p);
                    let l = b.load(i32t, p);
                    pool.push(l);
                }
                Step::Diamond(c1, c2) => {
                    let x = pick(&pool, c1);
                    let y = pick(&pool, c2);
                    let cond = b.icmp(IntPredicate::Slt, x, y);
                    let then_bb = b.create_block("t");
                    let else_bb = b.create_block("e");
                    let join = b.create_block("j");
                    b.cond_br(cond, then_bb, else_bb);
                    b.position_at_end(then_bb);
                    let tv = b.add(x, y);
                    b.br(join);
                    b.position_at_end(else_bb);
                    let ev = b.sub(x, y);
                    b.br(join);
                    b.position_at_end(join);
                    let phi = b.phi(i32t, &[(tv, then_bb), (ev, else_bb)]);
                    pool.push(phi);
                }
            }
        }
        let ret = *pool.last().expect("non-empty pool");
        b.ret(Some(ret));
    }
    m.add_function(f);
    m
}

#[test]
fn built_modules_always_verify() {
    let mut rng = SmallRng::seed_from_u64(10);
    for _ in 0..64 {
        let steps = random_recipe(&mut rng, 40);
        let m = build_from_recipe(&steps);
        assert!(verify_module(&m).is_ok(), "{steps:?}");
    }
}

#[test]
fn print_parse_print_is_a_fixpoint() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..64 {
        let steps = random_recipe(&mut rng, 40);
        let m = build_from_recipe(&steps);
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("reparse");
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
    }
}

#[test]
fn reparsed_module_has_same_shape() {
    let mut rng = SmallRng::seed_from_u64(12);
    for _ in 0..64 {
        let steps = random_recipe(&mut rng, 40);
        let m = build_from_recipe(&steps);
        let m2 = parse_module(&print_module(&m)).unwrap();
        let f1 = m.function(m.lookup_function("f").unwrap());
        let f2 = m2.function(m2.lookup_function("f").unwrap());
        assert_eq!(f1.num_blocks(), f2.num_blocks());
        assert_eq!(f1.num_linked_insts(), f2.num_linked_insts());
        assert_eq!(
            f3m_ir::size::function_size(f1),
            f3m_ir::size::function_size(f2),
            "size model stable across round trip"
        );
    }
}

#[test]
fn dominator_tree_matches_first_principles() {
    // First-principles dominance: A dominates B iff removing A from
    // the graph disconnects B from the entry.
    let mut rng = SmallRng::seed_from_u64(13);
    for _ in 0..48 {
        let steps = random_recipe(&mut rng, 25);
        let m = build_from_recipe(&steps);
        let f = m.function(m.lookup_function("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let blocks: Vec<_> = f.block_order.clone();
        for &a in &blocks {
            for &b in &blocks {
                if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                    continue;
                }
                // BFS from entry avoiding `a`.
                let mut reach = std::collections::HashSet::new();
                let mut queue = std::collections::VecDeque::new();
                if f.entry() != a {
                    queue.push_back(f.entry());
                    reach.insert(f.entry());
                }
                while let Some(x) = queue.pop_front() {
                    for &s in cfg.succs(x) {
                        if s != a && reach.insert(s) {
                            queue.push_back(s);
                        }
                    }
                }
                let expected = a == b || !reach.contains(&b);
                assert_eq!(dt.dominates(a, b), expected, "dominates({a:?}, {b:?})");
            }
        }
    }
}

#[test]
fn normalize_int_is_idempotent_and_bounded() {
    let mut rng = SmallRng::seed_from_u64(14);
    for _ in 0..512 {
        let x = rng.next_u64() as i64;
        let bits = rng.gen_range(1..=64u32);
        let once = normalize_int(x, bits);
        assert_eq!(normalize_int(once, bits), once, "idempotent");
        if bits < 64 {
            let bound = 1i64 << (bits - 1);
            assert!(once >= -bound && once < bound, "{once} not in i{bits} range");
        }
    }
}

#[test]
fn rpo_is_a_valid_topological_like_order() {
    // Every block except the entry has at least one predecessor that
    // appears earlier in RPO (true for reducible graphs, which the
    // builder produces).
    let mut rng = SmallRng::seed_from_u64(15);
    for _ in 0..64 {
        let steps = random_recipe(&mut rng, 25);
        let m = build_from_recipe(&steps);
        let f = m.function(m.lookup_function("f").unwrap());
        let cfg = Cfg::compute(f);
        for &bb in cfg.rpo.iter().skip(1) {
            let my_idx = cfg.rpo_index(bb).unwrap();
            let has_earlier_pred = cfg
                .preds(bb)
                .iter()
                .any(|&p| cfg.rpo_index(p).is_some_and(|pi| pi < my_idx));
            assert!(has_earlier_pred, "{bb:?} has no earlier pred in RPO");
        }
    }
}

#[test]
fn interpreter_agrees_across_round_trip() {
    let mut rng = SmallRng::seed_from_u64(16);
    for _ in 0..48 {
        let steps = random_recipe(&mut rng, 30);
        let a = rng.gen_range(-100..100i64);
        let b = rng.gen_range(-100..100i64);
        // The parsed-back module must behave identically (uses the
        // interpreter crate through the dev-dependency).
        let m = build_from_recipe(&steps);
        let m2 = parse_module(&print_module(&m)).unwrap();
        let run = |m: &Module| {
            let mut i = f3m_interp::Interpreter::with_limits(
                m,
                f3m_interp::Limits { fuel: 100_000, memory: 1 << 16, max_depth: 8 },
            );
            i.call_by_name("f", &[f3m_interp::Val::Int(a), f3m_interp::Val::Int(b)])
                .map(|o| o.ret)
        };
        assert_eq!(run(&m), run(&m2));
    }
}
