//! Property-based tests of the IR substrate.
//!
//! Random programs are built through the public builder API from proptest-
//! generated "recipes", then checked against the core invariants: the
//! verifier accepts them, the printer/parser round-trips them, and the
//! analyses agree with first-principles definitions.

use proptest::prelude::*;

use f3m_ir::builder::FunctionBuilder;
use f3m_ir::cfg::Cfg;
use f3m_ir::dom::DomTree;
use f3m_ir::ids::ValueId;
use f3m_ir::inst::{IntPredicate, Opcode};
use f3m_ir::function::Function;
use f3m_ir::module::Module;
use f3m_ir::printer::print_module;
use f3m_ir::parser::parse_module;
use f3m_ir::value::normalize_int;
use f3m_ir::verify::verify_module;

/// One step of a straight-line function recipe.
#[derive(Clone, Debug)]
enum Step {
    Binary(u8, u8, u8),   // opcode selector, lhs pick, rhs pick
    Cmp(u8, u8, u8),      // predicate selector, lhs, rhs
    Const(i64),
    MemRoundTrip(u8, u8), // index, value pick
    Diamond(u8, u8),      // cond picks
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Step::Binary(a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Step::Cmp(a, b, c)),
        any::<i64>().prop_map(Step::Const),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::MemRoundTrip(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Diamond(a, b)),
    ]
}

const BIN_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
];

const PREDS: [IntPredicate; 4] =
    [IntPredicate::Slt, IntPredicate::Sgt, IntPredicate::Eq, IntPredicate::Ule];

/// Builds a verifier-clean module from a recipe.
fn build_from_recipe(steps: &[Step]) -> Module {
    let mut m = Module::new("prop");
    let i32t = m.types.int(32);
    let mut f = Function::new("f", vec![i32t, i32t], i32t);
    {
        let mut b = FunctionBuilder::new(&mut m.types, &mut f);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        let arr_ty = b.types().array(i32t, 4);
        let scratch = b.alloca(arr_ty);
        let mut pool: Vec<ValueId> = vec![b.func().arg(0), b.func().arg(1)];
        let pick = |pool: &[ValueId], sel: u8| pool[sel as usize % pool.len()];
        for step in steps {
            match *step {
                Step::Binary(op, l, r) => {
                    let lhs = pick(&pool, l);
                    let rhs = pick(&pool, r);
                    let v = b.binary(BIN_OPS[op as usize % BIN_OPS.len()], lhs, rhs);
                    pool.push(v);
                }
                Step::Cmp(p, l, r) => {
                    let lhs = pick(&pool, l);
                    let rhs = pick(&pool, r);
                    let c = b.icmp(PREDS[p as usize % PREDS.len()], lhs, rhs);
                    let v = b.select(c, lhs, rhs);
                    pool.push(v);
                }
                Step::Const(x) => {
                    let v = b.const_int(i32t, x);
                    pool.push(v);
                }
                Step::MemRoundTrip(idx, val) => {
                    let iv = b.const_int(i32t, (idx % 4) as i64);
                    let p = b.gep(i32t, scratch, iv);
                    let v = pick(&pool, val);
                    b.store(v, p);
                    let l = b.load(i32t, p);
                    pool.push(l);
                }
                Step::Diamond(c1, c2) => {
                    let x = pick(&pool, c1);
                    let y = pick(&pool, c2);
                    let cond = b.icmp(IntPredicate::Slt, x, y);
                    let then_bb = b.create_block("t");
                    let else_bb = b.create_block("e");
                    let join = b.create_block("j");
                    b.cond_br(cond, then_bb, else_bb);
                    b.position_at_end(then_bb);
                    let tv = b.add(x, y);
                    b.br(join);
                    b.position_at_end(else_bb);
                    let ev = b.sub(x, y);
                    b.br(join);
                    b.position_at_end(join);
                    let phi = b.phi(i32t, &[(tv, then_bb), (ev, else_bb)]);
                    pool.push(phi);
                }
            }
        }
        let ret = *pool.last().expect("non-empty pool");
        b.ret(Some(ret));
    }
    m.add_function(f);
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn built_modules_always_verify(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let m = build_from_recipe(&steps);
        prop_assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn print_parse_print_is_a_fixpoint(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let m = build_from_recipe(&steps);
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("reparse");
        let p2 = print_module(&m2);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn reparsed_module_has_same_shape(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let m = build_from_recipe(&steps);
        let m2 = parse_module(&print_module(&m)).unwrap();
        let f1 = m.function(m.lookup_function("f").unwrap());
        let f2 = m2.function(m2.lookup_function("f").unwrap());
        prop_assert_eq!(f1.num_blocks(), f2.num_blocks());
        prop_assert_eq!(f1.num_linked_insts(), f2.num_linked_insts());
        prop_assert_eq!(
            f3m_ir::size::function_size(f1),
            f3m_ir::size::function_size(f2),
            "size model stable across round trip"
        );
    }

    #[test]
    fn dominator_tree_matches_first_principles(
        steps in prop::collection::vec(step_strategy(), 1..25)
    ) {
        // First-principles dominance: A dominates B iff removing A from
        // the graph disconnects B from the entry.
        let m = build_from_recipe(&steps);
        let f = m.function(m.lookup_function("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let blocks: Vec<_> = f.block_order.clone();
        for &a in &blocks {
            for &b in &blocks {
                if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                    continue;
                }
                // BFS from entry avoiding `a`.
                let mut reach = std::collections::HashSet::new();
                let mut queue = std::collections::VecDeque::new();
                if f.entry() != a {
                    queue.push_back(f.entry());
                    reach.insert(f.entry());
                }
                while let Some(x) = queue.pop_front() {
                    for &s in cfg.succs(x) {
                        if s != a && reach.insert(s) {
                            queue.push_back(s);
                        }
                    }
                }
                let expected = a == b || !reach.contains(&b);
                prop_assert_eq!(
                    dt.dominates(a, b),
                    expected,
                    "dominates({:?}, {:?})", a, b
                );
            }
        }
    }

    #[test]
    fn normalize_int_is_idempotent_and_bounded(x in any::<i64>(), bits in 1u32..=64) {
        let once = normalize_int(x, bits);
        prop_assert_eq!(normalize_int(once, bits), once, "idempotent");
        if bits < 64 {
            let bound = 1i64 << (bits - 1);
            prop_assert!(once >= -bound && once < bound, "{} not in i{} range", once, bits);
        }
    }

    #[test]
    fn rpo_is_a_valid_topological_like_order(
        steps in prop::collection::vec(step_strategy(), 1..25)
    ) {
        // Every block except the entry has at least one predecessor that
        // appears earlier in RPO (true for reducible graphs, which the
        // builder produces).
        let m = build_from_recipe(&steps);
        let f = m.function(m.lookup_function("f").unwrap());
        let cfg = Cfg::compute(f);
        for &bb in cfg.rpo.iter().skip(1) {
            let my_idx = cfg.rpo_index(bb).unwrap();
            let has_earlier_pred = cfg
                .preds(bb)
                .iter()
                .any(|&p| cfg.rpo_index(p).is_some_and(|pi| pi < my_idx));
            prop_assert!(has_earlier_pred, "{:?} has no earlier pred in RPO", bb);
        }
    }

    #[test]
    fn interpreter_agrees_across_round_trip(
        steps in prop::collection::vec(step_strategy(), 1..30),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        // The parsed-back module must behave identically (uses the
        // interpreter crate through the dev-dependency).
        let m = build_from_recipe(&steps);
        let m2 = parse_module(&print_module(&m)).unwrap();
        let run = |m: &Module| {
            let mut i = f3m_interp::Interpreter::with_limits(
                m,
                f3m_interp::Limits { fuel: 100_000, memory: 1 << 16, max_depth: 8 },
            );
            i.call_by_name("f", &[f3m_interp::Val::Int(a), f3m_interp::Val::Int(b)])
                .map(|o| o.ret)
        };
        prop_assert_eq!(run(&m), run(&m2));
    }
}
