//! Structured trace events and the Chrome `trace_event` exporter.
//!
//! The event model is deliberately small: *complete spans* (a name, a
//! category, a start timestamp and a duration), *instants* (a point in
//! time) and *counter samples* (a point in time carrying numeric series
//! values). Every event lives on a logical track (`tid`); track 0 is the
//! serial driver thread, other tracks are documented by their emitters
//! (the pass lays per-pair rank/align durations end-to-end on track 1,
//! since the real work ran concurrently on a worker pool).
//!
//! Events are recorded behind a mutex; recording is cheap (one lock, one
//! `Vec` push) and entirely absent when no tracer is installed — the
//! instrumented code paths take `Option<&Tracer>` and skip everything on
//! `None`, keeping the no-observability configuration at its pre-tracing
//! cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};

/// What kind of trace event a [`TraceEvent`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: work that started at `ts_ns` and took `dur_ns`.
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A counter sample; the series values live in
    /// [`TraceEvent::args`].
    Counter,
}

/// One structured trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (span/instant/counter series name).
    pub name: String,
    /// Category, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Logical track the event renders on.
    pub tid: u32,
    /// Start timestamp in nanoseconds (tracer-clock origin).
    pub ts_ns: u64,
    /// Span, instant or counter.
    pub kind: EventKind,
    /// Numeric arguments (counter values, sizes, indices).
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// The span duration, if this event is a span.
    pub fn dur_ns(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_ns } => Some(dur_ns),
            _ => None,
        }
    }

    /// Looks up a numeric argument by name.
    pub fn arg(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }
}

/// Thread-safe structured-event collector.
///
/// Construct one per observed run ([`Tracer::new`] for wall-clock timing,
/// [`Tracer::with_clock`] to inject a [`FakeClock`](crate::FakeClock) in
/// tests), hand `Option<&Tracer>` to the instrumented code, then export
/// with [`Tracer::to_chrome_json`].
pub struct Tracer {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

/// Hard ceiling on buffered events so a runaway campaign cannot exhaust
/// memory; overflow increments [`Tracer::dropped_events`] instead.
const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer over a fresh [`MonotonicClock`].
    pub fn new() -> Tracer {
        Tracer::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A tracer over an injected clock (tests use
    /// [`FakeClock`](crate::FakeClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Tracer {
        Tracer {
            clock,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// The tracer clock's current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Starts a span; it is recorded when the guard drops (or on
    /// [`SpanGuard::finish`]).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            tracer: Some(self),
            cat,
            name: name.into(),
            tid: 0,
            start_ns: self.now_ns(),
            args: Vec::new(),
        }
    }

    /// Records a complete span with explicit timing, for work measured
    /// elsewhere (e.g. durations captured on worker threads).
    pub fn complete(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            tid,
            ts_ns,
            kind: EventKind::Span { dur_ns },
            args,
        });
    }

    /// Records an instant marker at the current time.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>, args: Vec<(&'static str, u64)>) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            tid: 0,
            ts_ns: self.now_ns(),
            kind: EventKind::Instant,
            args,
        });
    }

    /// Records a counter sample at the current time. Chrome renders each
    /// arg as one series of a stacked counter track.
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, args: Vec<(&'static str, u64)>) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            tid: 0,
            ts_ns: self.now_ns(),
            kind: EventKind::Counter,
            args,
        });
    }

    fn push(&self, e: TraceEvent) {
        let mut events = self.events.lock().expect("tracer poisoned");
        if events.len() >= self.capacity {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(e);
    }

    /// Number of events dropped on buffer overflow.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A snapshot of all recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("tracer poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("tracer poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports all events as Chrome `trace_event` JSON (the object form
    /// with a `traceEvents` array), loadable in `chrome://tracing` and
    /// Perfetto. Timestamps and durations are microseconds with
    /// nanosecond precision, as the format specifies.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().expect("tracer poisoned");
        let mut out = String::with_capacity(256 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"f3m\"}}",
        );
        for e in events.iter() {
            out.push(',');
            let (ph, extra) = match e.kind {
                EventKind::Span { dur_ns } => ("X", format!(",\"dur\":{}", fmt_us(dur_ns))),
                EventKind::Instant => ("i", ",\"s\":\"t\"".to_string()),
                EventKind::Counter => ("C", String::new()),
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\
                 \"tid\":{},\"ts\":{}{extra},\"args\":{{",
                escape(&e.name),
                escape(e.cat),
                e.tid,
                fmt_us(e.ts_ns),
            ));
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", escape(k)));
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Nanoseconds rendered as fractional microseconds (`123.456`).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An in-progress span; records a complete event when dropped.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    cat: &'static str,
    name: String,
    tid: u32,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// Attaches a numeric argument to the span.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        self.args.push((key, value));
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer.take() {
            let end = t.now_ns();
            t.complete(
                self.cat,
                std::mem::take(&mut self.name),
                self.tid,
                self.start_ns,
                end.saturating_sub(self.start_ns),
                std::mem::take(&mut self.args),
            );
        }
    }
}

/// Starts a span on `tracer` if one is installed; the returned guard is
/// inert on `None`. This is the one-liner instrumented code uses:
///
/// ```
/// # use f3m_trace::{tracer::span_on, Tracer};
/// let tracer = Tracer::new();
/// let mut s = span_on(Some(&tracer), "pass", "preprocess");
/// s.arg("functions", 42);
/// drop(s);
/// assert_eq!(tracer.events()[0].arg("functions"), Some(42));
/// ```
pub fn span_on<'a>(
    tracer: Option<&'a Tracer>,
    cat: &'static str,
    name: impl Into<String>,
) -> SpanGuard<'a> {
    match tracer {
        Some(t) => t.span(cat, name),
        None => SpanGuard {
            tracer: None,
            cat,
            name: String::new(),
            tid: 0,
            start_ns: 0,
            args: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    fn fake_tracer() -> (Arc<FakeClock>, Tracer) {
        let clock = Arc::new(FakeClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        (clock, tracer)
    }

    #[test]
    fn span_guard_measures_with_injected_clock() {
        let (clock, tracer) = fake_tracer();
        clock.set(1_000);
        {
            let mut s = tracer.span("cat", "work");
            s.arg("n", 7);
            clock.advance(250);
        }
        let e = &tracer.events()[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.ts_ns, 1_000);
        assert_eq!(e.dur_ns(), Some(250));
        assert_eq!(e.arg("n"), Some(7));
        assert_eq!(e.arg("missing"), None);
    }

    #[test]
    fn span_on_none_records_nothing() {
        let mut s = span_on(None, "cat", "ghost");
        s.arg("n", 1);
        drop(s);
        // No tracer, nothing observable — this must simply not panic.
    }

    #[test]
    fn chrome_json_shape_is_loadable() {
        let (clock, tracer) = fake_tracer();
        {
            let _s = tracer.span("pass", "rank");
            clock.advance(1_234);
        }
        tracer.instant("pass", "marker", vec![("wave", 3)]);
        tracer.counter("pass", "counters", vec![("hits", 10), ("misses", 2)]);
        let json = tracer.to_chrome_json();
        for needle in [
            "\"traceEvents\":[",
            "\"ph\":\"M\"",
            "\"ph\":\"X\"",
            "\"dur\":1.234",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"hits\":10",
            "\"displayTimeUnit\":\"ms\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn complete_records_external_timing() {
        let (_clock, tracer) = fake_tracer();
        tracer.complete("pass", "align", 1, 500, 200, vec![("cells", 42)]);
        let e = &tracer.events()[0];
        assert_eq!((e.tid, e.ts_ns, e.dur_ns()), (1, 500, Some(200)));
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let (_clock, tracer) = fake_tracer();
        tracer.instant("cat", "we \"quote\" here", vec![]);
        assert!(tracer.to_chrome_json().contains("we \\\"quote\\\" here"));
    }

    #[test]
    fn capacity_overflow_drops_instead_of_growing() {
        let (_clock, tracer) = fake_tracer();
        let small = Tracer { capacity: 2, ..tracer };
        small.instant("c", "a", vec![]);
        small.instant("c", "b", vec![]);
        small.instant("c", "c", vec![]);
        assert_eq!(small.len(), 2);
        assert_eq!(small.dropped_events(), 1);
    }
}
