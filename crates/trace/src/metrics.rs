//! A typed metrics registry with deterministic serialization.
//!
//! Metrics are registered once, up front, and the registry preserves
//! registration order — so the flat-JSON dump ([`MetricsRegistry::to_json`])
//! is byte-stable across runs with the same values, diffable in review and
//! parseable by the regression gate ([`crate::baseline`]).
//!
//! Each metric is tagged `deterministic: true` when its value is a pure
//! work count (fingerprint comparisons, DP cells, bucket evictions …) that
//! must not vary run-to-run for a fixed workload, or `false` for
//! wall-clock readings. The perf-regression gate compares only the
//! deterministic subset; everything is exported for humans and dashboards.

/// Metric families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulated `u64`.
    Counter,
    /// A point-in-time `f64` reading.
    Gauge,
    /// A bucketed distribution of `u64` observations.
    Histogram,
}

impl MetricKind {
    /// Lower-case name used in the JSON dump (`counter` / `gauge` /
    /// `histogram`).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistogramId(usize);

#[derive(Clone, Debug)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Upper bounds of the first `bounds.len()` buckets (inclusive);
        /// one implicit overflow bucket follows.
        bounds: Vec<u64>,
        /// `bounds.len() + 1` observation counts.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

#[derive(Clone, Debug)]
struct Entry {
    name: String,
    unit: &'static str,
    deterministic: bool,
    value: Value,
}

/// A flattened, order-preserving view of one metric — what the exporters
/// and the baseline comparison operate on.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted metric name (`gate.429.mcf.f3m.fingerprint_comparisons`).
    pub name: String,
    /// Metric family.
    pub kind: MetricKind,
    /// Unit label (`comparisons`, `bytes`, `ns` …).
    pub unit: String,
    /// Whether the value is a deterministic work count.
    pub deterministic: bool,
    /// Counter/gauge value; for histograms, the sum of observations.
    pub value: f64,
    /// Histogram payload `(bounds, counts, count)`; `None` otherwise.
    pub histogram: Option<(Vec<u64>, Vec<u64>, u64)>,
}

/// Typed metrics registry. See the module docs for the model.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<Entry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, unit: &'static str, deterministic: bool, value: Value) -> usize {
        assert!(
            !self.entries.iter().any(|e| e.name == name),
            "duplicate metric `{name}`"
        );
        self.entries.push(Entry { name: name.to_string(), unit, deterministic, value });
        self.entries.len() - 1
    }

    /// Registers a counter starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (all register methods do).
    pub fn counter(&mut self, name: &str, unit: &'static str, deterministic: bool) -> CounterId {
        CounterId(self.register(name, unit, deterministic, Value::Counter(0)))
    }

    /// Registers a gauge starting at `0.0`.
    pub fn gauge(&mut self, name: &str, unit: &'static str, deterministic: bool) -> GaugeId {
        GaugeId(self.register(name, unit, deterministic, Value::Gauge(0.0)))
    }

    /// Registers a histogram over `bounds` (ascending inclusive upper
    /// bounds; an overflow bucket is added automatically).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or non-ascending bounds.
    pub fn histogram(
        &mut self,
        name: &str,
        unit: &'static str,
        deterministic: bool,
        bounds: &[u64],
    ) -> HistogramId {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let value = Value::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        };
        HistogramId(self.register(name, unit, deterministic, value))
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        match &mut self.entries[id.0].value {
            Value::Counter(v) => *v += delta,
            _ => unreachable!("CounterId always points at a counter"),
        }
    }

    /// Sets a counter to an absolute value.
    pub fn set(&mut self, id: CounterId, value: u64) {
        match &mut self.entries[id.0].value {
            Value::Counter(v) => *v = value,
            _ => unreachable!("CounterId always points at a counter"),
        }
    }

    /// Sets a gauge reading.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        match &mut self.entries[id.0].value {
            Value::Gauge(v) => *v = value,
            _ => unreachable!("GaugeId always points at a gauge"),
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        match &mut self.entries[id.0].value {
            Value::Histogram { bounds, counts, count, sum } => {
                let slot = bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(bounds.len());
                counts[slot] += 1;
                *count += 1;
                *sum += value;
            }
            _ => unreachable!("HistogramId always points at a histogram"),
        }
    }

    /// Records many observations into a histogram.
    pub fn observe_many(&mut self, id: HistogramId, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.observe(id, v);
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All metrics in registration order.
    pub fn snapshots(&self) -> Vec<MetricSnapshot> {
        self.entries
            .iter()
            .map(|e| match &e.value {
                Value::Counter(v) => MetricSnapshot {
                    name: e.name.clone(),
                    kind: MetricKind::Counter,
                    unit: e.unit.to_string(),
                    deterministic: e.deterministic,
                    value: *v as f64,
                    histogram: None,
                },
                Value::Gauge(v) => MetricSnapshot {
                    name: e.name.clone(),
                    kind: MetricKind::Gauge,
                    unit: e.unit.to_string(),
                    deterministic: e.deterministic,
                    value: *v,
                    histogram: None,
                },
                Value::Histogram { bounds, counts, count, sum } => MetricSnapshot {
                    name: e.name.clone(),
                    kind: MetricKind::Histogram,
                    unit: e.unit.to_string(),
                    deterministic: e.deterministic,
                    value: *sum as f64,
                    histogram: Some((bounds.clone(), counts.clone(), *count)),
                },
            })
            .collect()
    }

    /// The flat-JSON metrics dump (the `--metrics <path>` artefact),
    /// rendered via [`crate::baseline::render_metrics`] in registration
    /// order.
    pub fn to_json(&self) -> String {
        crate::baseline::render_metrics(&self.snapshots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("pass.comparisons", "comparisons", true);
        reg.add(c, 3);
        reg.add(c, 4);
        assert_eq!(reg.snapshots()[0].value, 7.0);
        reg.set(c, 100);
        assert_eq!(reg.snapshots()[0].value, 100.0);
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lsh.occupancy", "functions", true, &[1, 2, 4]);
        reg.observe_many(h, [1, 1, 2, 3, 4, 100]);
        let snap = &reg.snapshots()[0];
        let (bounds, counts, count) = snap.histogram.clone().unwrap();
        assert_eq!(bounds, vec![1, 2, 4]);
        assert_eq!(counts, vec![2, 1, 2, 1], "overflow bucket catches 100");
        assert_eq!(count, 6);
        assert_eq!(snap.value, 111.0, "sum of observations");
    }

    #[test]
    fn serialization_preserves_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("zzz.last-name-first", "n", true);
        reg.counter("aaa.first-name-last", "n", true);
        let json = reg.to_json();
        let z = json.find("zzz.last-name-first").unwrap();
        let a = json.find("aaa.first-name-last").unwrap();
        assert!(z < a, "registration order, not lexical order");
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_names_are_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x", "n", true);
        reg.gauge("x", "n", false);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn histogram_bounds_must_ascend() {
        MetricsRegistry::new().histogram("h", "n", true, &[4, 2]);
    }
}
