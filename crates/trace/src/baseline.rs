//! Metric snapshots on disk: the flat-JSON dump format, a minimal parser
//! for it, and the tolerance-band comparison behind the perf-regression
//! gate.
//!
//! The dump format is one object per metric, in registration order:
//!
//! ```json
//! {"schema":"f3m-metrics-v1","metrics":[
//!   {"name":"pass.fingerprint_comparisons","kind":"counter",
//!    "unit":"comparisons","deterministic":true,"value":1234},
//!   {"name":"pass.lsh_bucket_occupancy","kind":"histogram",
//!    "unit":"functions","deterministic":true,
//!    "bounds":[1,2,4],"counts":[5,3,2,1],"count":11,"sum":37}
//! ]}
//! ```
//!
//! [`parse_metrics`] reads the dump back through the shared
//! [`crate::json`] reader (no dependencies), accepting any whitespace
//! layout so hand-edited baselines stay parseable.

use crate::json::{self, escape, fmt_f64, Json};
use crate::metrics::{MetricKind, MetricSnapshot};

/// Schema tag embedded in every dump.
pub const SCHEMA: &str = "f3m-metrics-v1";

/// Renders snapshots as the flat-JSON dump (see module docs).
pub fn render_metrics(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::with_capacity(64 + snaps.len() * 96);
    out.push_str(&format!("{{\"schema\":\"{SCHEMA}\",\"metrics\":[\n"));
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            " {{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"deterministic\":{}",
            escape(&s.name),
            s.kind.as_str(),
            escape(&s.unit),
            s.deterministic,
        ));
        match &s.histogram {
            None => out.push_str(&format!(",\"value\":{}}}", fmt_f64(s.value))),
            Some((bounds, counts, count)) => out.push_str(&format!(
                ",\"bounds\":[{}],\"counts\":[{}],\"count\":{count},\"sum\":{}}}",
                join_u64(bounds),
                join_u64(counts),
                s.value as u64,
            )),
        }
    }
    out.push_str("\n]}\n");
    out
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}

/// Parses a flat-JSON metrics dump back into snapshots.
///
/// # Errors
///
/// Returns a message describing the first syntax or schema problem.
pub fn parse_metrics(dump: &str) -> Result<Vec<MetricSnapshot>, String> {
    let root = json::parse(dump)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
    }
    let metrics = match root.get("metrics") {
        Some(Json::Array(items)) => items,
        _ => return Err("missing `metrics` array".to_string()),
    };
    metrics
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("metric {i}: missing name"))?
                .to_string();
            let kind = match m.get("kind").and_then(Json::as_str) {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => return Err(format!("metric `{name}`: bad kind {other:?}")),
            };
            let unit = m
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let deterministic =
                m.get("deterministic").and_then(Json::as_bool).unwrap_or(false);
            let (value, histogram) = if kind == MetricKind::Histogram {
                let bounds = m
                    .get("bounds")
                    .and_then(Json::as_u64_array)
                    .ok_or(format!("metric `{name}`: missing bounds"))?;
                let counts = m
                    .get("counts")
                    .and_then(Json::as_u64_array)
                    .ok_or(format!("metric `{name}`: missing counts"))?;
                let count = m.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let sum = m.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
                (sum, Some((bounds, counts, count)))
            } else {
                let v = m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or(format!("metric `{name}`: missing value"))?;
                (v, None)
            };
            Ok(MetricSnapshot { name, kind, unit, deterministic, value, histogram })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tolerance-band comparison.

/// Allowed drift for one metric: the larger of a relative band around the
/// baseline value and an absolute slack (so tiny baselines aren't pinned
/// to exact equality by a relative band alone).
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Relative band (`0.10` = ±10 % of the baseline value).
    pub rel: f64,
    /// Absolute slack in metric units.
    pub abs: f64,
}

impl Tolerance {
    /// Exact equality.
    pub fn exact() -> Tolerance {
        Tolerance { rel: 0.0, abs: 0.0 }
    }

    /// Whether `current` is within band of `baseline`.
    pub fn allows(&self, baseline: f64, current: f64) -> bool {
        let band = (baseline.abs() * self.rel).max(self.abs);
        (current - baseline).abs() <= band + 1e-9
    }
}

/// Compares the *deterministic* metrics of `current` against `baseline`,
/// returning one human-readable violation per out-of-band, missing or new
/// metric (empty = gate passes). `tol_for` maps a metric name to its band.
///
/// Histograms compare their observation count and sum; the bucket vector
/// is checked for shape (bounds must match exactly — changing bucket
/// layout is a schema change that warrants a baseline refresh).
pub fn compare(
    current: &[MetricSnapshot],
    baseline: &[MetricSnapshot],
    tol_for: impl Fn(&str) -> Tolerance,
) -> Vec<String> {
    let mut violations = Vec::new();
    for cur in current.iter().filter(|s| s.deterministic) {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            violations.push(format!(
                "`{}`: not in baseline (new metric? refresh with F3M_UPDATE_BASELINE=1)",
                cur.name
            ));
            continue;
        };
        let tol = tol_for(&cur.name);
        if !tol.allows(base.value, cur.value) {
            violations.push(format!(
                "`{}`: {} drifted from baseline {} (tolerance ±max({}%, {}))",
                cur.name,
                fmt_f64(cur.value),
                fmt_f64(base.value),
                tol.rel * 100.0,
                fmt_f64(tol.abs),
            ));
        }
        if let (Some((cb, _, ccount)), Some((bb, _, bcount))) =
            (&cur.histogram, &base.histogram)
        {
            if cb != bb {
                violations.push(format!(
                    "`{}`: histogram bounds changed {bb:?} -> {cb:?} (refresh baseline)",
                    cur.name
                ));
            } else if !tol.allows(*bcount as f64, *ccount as f64) {
                violations.push(format!(
                    "`{}`: observation count {ccount} drifted from baseline {bcount}",
                    cur.name
                ));
            }
        }
    }
    for base in baseline.iter().filter(|s| s.deterministic) {
        if !current.iter().any(|c| c.name == base.name) {
            violations.push(format!(
                "`{}`: in baseline but not measured (metric removed? refresh with \
                 F3M_UPDATE_BASELINE=1)",
                base.name
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("pass.comparisons", "comparisons", true);
        reg.set(c, 1234);
        let g = reg.gauge("pass.size_reduction", "fraction", true);
        reg.set_gauge(g, 0.25);
        let t = reg.counter("pass.total_ns", "ns", false);
        reg.set(t, 987654);
        let h = reg.histogram("lsh.occupancy", "functions", true, &[1, 2, 4]);
        reg.observe_many(h, [1, 2, 3, 9]);
        reg
    }

    #[test]
    fn render_parse_round_trip() {
        let reg = sample_registry();
        let json = reg.to_json();
        let parsed = parse_metrics(&json).unwrap();
        assert_eq!(parsed, reg.snapshots());
    }

    #[test]
    fn parse_accepts_reformatted_json() {
        let json = r#"
        { "schema" : "f3m-metrics-v1",
          "metrics" : [
            { "name" : "a.b", "kind" : "counter", "unit" : "n",
              "deterministic" : true, "value" : 7 }
          ] }
        "#;
        let parsed = parse_metrics(json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].value, 7.0);
        assert!(parsed[0].deterministic);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(parse_metrics("{\"schema\":\"v999\",\"metrics\":[]}")
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(parse_metrics("not json").is_err());
    }

    #[test]
    fn compare_passes_identical_snapshots() {
        let snaps = sample_registry().snapshots();
        assert!(compare(&snaps, &snaps, |_| Tolerance::exact()).is_empty());
    }

    #[test]
    fn compare_flags_drift_beyond_band_only() {
        let base = sample_registry().snapshots();
        // Rebuild with a 5 % drift on the counter.
        let mut cur = base.clone();
        cur[0].value = 1234.0 * 1.05;
        let within = compare(&cur, &base, |_| Tolerance { rel: 0.10, abs: 0.0 });
        assert!(within.is_empty(), "{within:?}");
        let beyond = compare(&cur, &base, |_| Tolerance { rel: 0.01, abs: 0.0 });
        assert_eq!(beyond.len(), 1);
        assert!(beyond[0].contains("pass.comparisons"), "{beyond:?}");
    }

    #[test]
    fn compare_ignores_wall_clock_metrics() {
        let base = sample_registry().snapshots();
        let mut cur = base.clone();
        let ns = cur.iter_mut().find(|s| s.name == "pass.total_ns").unwrap();
        ns.value *= 50.0;
        assert!(compare(&cur, &base, |_| Tolerance::exact()).is_empty());
    }

    #[test]
    fn compare_flags_missing_and_new_metrics() {
        let base = sample_registry().snapshots();
        let mut cur = base.clone();
        cur[0].name = "pass.renamed".to_string();
        let v = compare(&cur, &base, |_| Tolerance::exact());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("not in baseline")));
        assert!(v.iter().any(|m| m.contains("not measured")));
    }

    #[test]
    fn compare_flags_histogram_shape_changes() {
        let base = sample_registry().snapshots();
        let mut cur = base.clone();
        let slot = cur.iter_mut().find(|s| s.name == "lsh.occupancy").unwrap();
        slot.histogram = Some((vec![1, 2, 8], vec![2, 1, 1, 0], 4));
        let v = compare(&cur, &base, |_| Tolerance { rel: 0.5, abs: 10.0 });
        assert!(v.iter().any(|m| m.contains("bounds changed")), "{v:?}");
    }

    #[test]
    fn tolerance_absolute_slack_dominates_small_baselines() {
        let t = Tolerance { rel: 0.10, abs: 2.0 };
        assert!(t.allows(3.0, 5.0), "abs slack of 2 covers 3 -> 5");
        assert!(!t.allows(3.0, 6.0));
        assert!(Tolerance::exact().allows(7.0, 7.0));
        assert!(!Tolerance::exact().allows(7.0, 8.0));
    }
}
