//! Monotonic time behind a trait, so span timing is injectable in tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations must never go backwards;
/// the absolute origin is arbitrary (trace timestamps are relative).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-based, origin at construction time so
/// trace timestamps start near zero.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is *now*.
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds wraps after ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually-advanced clock for deterministic span-timer tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock at time zero.
    pub fn new() -> FakeClock {
        FakeClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `ns` would move the clock backwards.
    pub fn set(&self, ns: u64) {
        let prev = self.now.swap(ns, Ordering::SeqCst);
        assert!(ns >= prev, "FakeClock must stay monotonic ({prev} -> {ns})");
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_and_sets() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn fake_clock_rejects_time_travel() {
        let c = FakeClock::new();
        c.set(10);
        c.set(5);
    }
}
