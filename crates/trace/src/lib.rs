//! # f3m-trace — pipeline observability with zero dependencies
//!
//! Three small, composable layers:
//!
//! - [`clock`]: a monotonic [`Clock`](clock::Clock) trait with a real
//!   implementation ([`MonotonicClock`](clock::MonotonicClock)) and a
//!   manually-advanced [`FakeClock`](clock::FakeClock) so span timing is
//!   testable without sleeping,
//! - [`tracer`]: a thread-safe structured-event collector ([`Tracer`])
//!   recording complete spans, instants and counter samples, exported as
//!   Chrome `trace_event` JSON (loadable in `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev)),
//! - [`metrics`]: a typed [`MetricsRegistry`] (counters, gauges,
//!   histograms) with **fixed registration order**, so its flat-JSON dump
//!   is deterministic and diffable,
//! - [`baseline`]: (de)serialization and tolerance-band comparison of
//!   metric snapshots — the machinery behind `tests/regression_gate.rs`
//!   and the checked-in `results/BASELINE_metrics.json`,
//! - [`json`]: the shared minimal JSON reader + escape/format helpers
//!   used by the metrics dump and the `f3m-serve` wire protocol.
//!
//! The crate deliberately depends on nothing (not even `f3m-ir`): every
//! other crate in the workspace can instrument itself against it.
//!
//! # Example
//!
//! ```
//! use f3m_trace::clock::FakeClock;
//! use f3m_trace::Tracer;
//! use std::sync::Arc;
//!
//! let clock = Arc::new(FakeClock::new());
//! let tracer = Tracer::with_clock(clock.clone());
//! {
//!     let _span = tracer.span("pass", "rank");
//!     clock.advance(1_500); // ns
//! }
//! let events = tracer.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "rank");
//! assert_eq!(events[0].dur_ns(), Some(1_500));
//! assert!(tracer.to_chrome_json().contains("\"traceEvents\""));
//! ```

pub mod baseline;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use baseline::{compare, parse_metrics, render_metrics, Tolerance};
pub use json::Json;
pub use clock::{Clock, FakeClock, MonotonicClock};
pub use metrics::{
    CounterId, GaugeId, HistogramId, MetricKind, MetricSnapshot, MetricsRegistry,
};
pub use tracer::{span_on, EventKind, SpanGuard, TraceEvent, Tracer};

use std::io;
use std::path::Path;

/// Writes `contents` to `path`, creating the parent directory chain first.
///
/// Every artefact writer in the workspace (trace/metrics exporters, the
/// bench harness, the regression-gate baseline) goes through this so a
/// fresh clone without a `results/` directory never errors.
pub fn write_with_dirs(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_with_dirs_creates_missing_parents() {
        let base = std::env::temp_dir().join(format!(
            "f3m-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let deep = base.join("a/b/c/out.json");
        write_with_dirs(&deep, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&deep).unwrap(), "{}");
        std::fs::remove_dir_all(&base).unwrap();
    }
}
