//! Minimal JSON support shared across the workspace: a recursive-descent
//! reader (objects, arrays, strings, numbers, booleans, null), plus the
//! string-escape and float-formatting helpers every hand-rolled renderer
//! uses.
//!
//! This started life inside [`crate::baseline`] as the metrics-dump
//! parser; the serve daemon's wire protocol decodes through the same
//! reader so the workspace carries exactly one JSON implementation.
//!
//! Parsed values keep object fields in document order (`Vec`, not a map),
//! which makes round-trip tests and deterministic re-rendering easy.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    /// Looks up `key` in an object (first match, document order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64`; rejects negatives and fractional values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 1.9e19 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_u64_array(&self) -> Option<Vec<u64>> {
        match self {
            Json::Array(items) => items.iter().map(|i| i.as_f64().map(|f| f as u64)).collect(),
            _ => None,
        }
    }
}

/// Parses one JSON value from `s`, requiring nothing but trailing
/// whitespace after it.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax problem.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut r = Reader::new(s);
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing data after value"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity; integral floats print without a fraction so
/// counters round-trip exactly.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 9e15 {
        return format!("{}", x as i64);
    }
    format!("{x}")
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Reader<'a> {
        Reader { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2,3],"b":{"c":"x","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64_array(), Some(vec![1, 2, 3]));
        assert_eq!(v.get("a").unwrap().as_array().map(<[Json]>::len), Some(3));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nline2\t\"quoted\" \\slash\\ \u{1}unicode: déjà";
        let doc = format!("{{\"s\":\"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn fmt_f64_prints_integers_exactly() {
        assert_eq!(fmt_f64(1234.0), "1234");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "0");
    }
}
