//! Streamed workload generation for corpora too large to materialize.
//!
//! [`build_module`](crate::build_module) holds every generated function in
//! one [`Module`], which is fine up to `chrome-scale` (120k functions) but
//! not at the paper's real Chrome scale (1.2M). [`FunctionStream`] keeps
//! only a module *shell* (type store + external declarations) resident and
//! yields one [`EncodedFunction`] per `next()`: the IR function is
//! generated, encoded to the 32-bit instruction stream the fingerprint
//! backends consume, and dropped. Peak memory is one function, regardless
//! of corpus size.
//!
//! The stream replays `build_module`'s RNG draws exactly, so for any spec
//! the emitted encodings are byte-identical to encoding the functions of
//! `build_module(spec)` in definition order (tested below). On top of
//! that it exposes *planted-family ground truth*: members expected to be
//! near-duplicates under a sequence-sensitive fingerprint carry
//! `family: Some(id)`, giving benches a recall denominator that does not
//! require an O(n²) similarity scan.

use f3m_fingerprint::encode::encode_function;
use f3m_prng::SmallRng;

use f3m_ir::function::Linkage;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;

use crate::gen::{declare_externals, generate_function, MutationProfile, ShapeParams};
use crate::suite::{sample_size, SizeClass, WorkloadSpec};

/// The paper's full-size Chrome corpus: 1.2M functions. Only usable
/// through [`FunctionStream`] — materializing this as a [`Module`] is
/// exactly what the streamed path exists to avoid.
pub fn chrome_full() -> WorkloadSpec {
    WorkloadSpec {
        name: "chrome-full",
        functions: 1_200_000,
        mean_insts: 20,
        family_fraction: 0.65,
        mean_family_size: 4,
        external_fraction: 0.15,
        seed: 124,
        class: SizeClass::Large,
    }
}

/// One streamed function: its dense id (position in the stream), its
/// planted-family tag (if any) and the encoded instruction stream.
#[derive(Clone, Debug)]
pub struct EncodedFunction {
    /// Dense id: the 0-based position of this function in the stream.
    pub id: u64,
    /// Generated name (`f<family>_<member>`), matching `build_module`.
    pub name: String,
    /// Ground-truth clone-family tag. `Some(fid)` only for members whose
    /// mutation profile keeps them plausibly retrievable (identical or
    /// light drift, not retyped, not shuffled) *and* whose family has at
    /// least two such members — i.e. every tagged function has at least
    /// one tagged sibling a recall measurement can expect to find.
    pub family: Option<u32>,
    /// The function encoded as 32-bit instruction words (the input to
    /// every fingerprint backend).
    pub encoded: Vec<u32>,
}

/// A member the stream has planned but not yet generated.
struct PlannedMember {
    profile: MutationProfile,
    linkage: Linkage,
    tagged: bool,
}

/// Streaming generator over a [`WorkloadSpec`]: bounded memory, one
/// function per `next()`.
pub struct FunctionStream {
    spec: WorkloadSpec,
    /// Module shell: owns the type store and external declarations that
    /// `generate_function` needs; never accumulates generated functions.
    shell: Module,
    externals: Vec<FuncId>,
    rng: SmallRng,
    produced: usize,
    family_idx: usize,
    /// Remaining members of the current family, front first.
    plan: std::collections::VecDeque<PlannedMember>,
    member: usize,
    shape: ShapeParams,
    struct_seed: u64,
}

impl FunctionStream {
    /// Creates a stream over `spec`. The spec is cloned; the stream is
    /// self-contained and deterministic in `spec.seed`.
    pub fn new(spec: &WorkloadSpec) -> FunctionStream {
        let mut shell = Module::new(spec.name);
        let externals = declare_externals(&mut shell);
        FunctionStream {
            spec: spec.clone(),
            shell,
            externals,
            rng: SmallRng::seed_from_u64(spec.seed),
            produced: 0,
            family_idx: 0,
            plan: std::collections::VecDeque::new(),
            member: 0,
            shape: ShapeParams::default(),
            struct_seed: 0,
        }
    }

    /// Number of functions this stream will yield in total.
    pub fn total(&self) -> usize {
        self.spec.functions
    }

    /// Samples the next family, replicating `build_module`'s draw order
    /// exactly (family roll, size, shape, base profile, then per-member
    /// retype/shuffle/linkage rolls).
    fn start_family(&mut self) {
        let spec = &self.spec;
        let rng = &mut self.rng;
        let in_family = rng.gen_bool(spec.family_fraction);
        let members = if in_family {
            let geometric = 2 + rng.gen_range(0..spec.mean_family_size * 2);
            geometric.min(spec.functions - self.produced).max(1)
        } else {
            1
        };
        self.struct_seed = spec.seed ^ (self.family_idx as u64).wrapping_mul(0x9E37_79B9);
        self.shape = ShapeParams {
            target_insts: sample_size(rng, spec.mean_insts),
            int_bits: *[16u32, 32, 32, 32, 64, 64].get(rng.gen_range(0..6usize)).unwrap(),
            int_params: rng.gen_range(1..=3usize),
            float_params: usize::from(rng.gen_bool(0.2)),
            float_mix: if rng.gen_bool(0.25) { 0.4 } else { 0.1 },
            cfg_density: rng.gen_range(0.1..0.4),
            call_density: 0.08,
            mem_density: 0.10,
            allow_invoke: rng.gen_bool(0.15),
        };
        let base_profile = match rng.gen_range(0..10) {
            0..=3 => MutationProfile::identical(),
            4..=6 => MutationProfile::light(),
            7..=8 => MutationProfile::medium(),
            _ => MutationProfile::heavy(),
        };
        // Light drift still lands well above the LSH threshold; medium
        // and heavy may legitimately not collide, so only the former
        // count as retrieval ground truth.
        let light = MutationProfile::light();
        let base_is_tight = base_profile.substitute <= light.substitute;
        let mut plan = Vec::with_capacity(members);
        for member in 0..members {
            let mut profile =
                if member == 0 { MutationProfile::identical() } else { base_profile };
            if member > 0 && rng.gen_bool(0.06) {
                profile.retype = true;
            }
            if member > 0 && rng.gen_bool(0.18) {
                profile.shuffle = true;
            }
            let linkage = if rng.gen_bool(spec.external_fraction) {
                Linkage::External
            } else {
                Linkage::Internal
            };
            let faithful =
                !profile.retype && !profile.shuffle && (member == 0 || base_is_tight);
            plan.push(PlannedMember { profile, linkage, tagged: faithful });
        }
        // Ground truth needs a sibling: a "family" with fewer than two
        // faithful members has nothing a recall probe could find.
        let faithful_count = plan.iter().filter(|p| p.tagged).count();
        if faithful_count < 2 {
            for p in &mut plan {
                p.tagged = false;
            }
        }
        self.plan = plan.into();
        self.member = 0;
    }
}

impl Iterator for FunctionStream {
    type Item = EncodedFunction;

    fn next(&mut self) -> Option<EncodedFunction> {
        if self.produced >= self.spec.functions {
            return None;
        }
        if self.plan.is_empty() {
            self.start_family();
        }
        let planned = self.plan.pop_front().expect("start_family plans >= 1 member");
        let name = format!("f{}_{}", self.family_idx, self.member);
        let member_seed =
            self.struct_seed ^ (self.member as u64 + 1).wrapping_mul(0xA24B_AED4);
        let f = generate_function(
            &mut self.shell.types,
            &self.externals,
            &name,
            &self.shape,
            self.struct_seed,
            member_seed,
            &planned.profile,
            planned.linkage,
        );
        let encoded = encode_function(&self.shell.types, &f);
        let item = EncodedFunction {
            id: self.produced as u64,
            name,
            family: planned.tagged.then_some(self.family_idx as u32),
            encoded,
        };
        self.produced += 1;
        self.member += 1;
        if self.plan.is_empty() {
            self.family_idx += 1;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.functions - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FunctionStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_module;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "stream-tiny",
            functions: 120,
            mean_insts: 18,
            family_fraction: 0.7,
            mean_family_size: 4,
            external_fraction: 0.2,
            seed: 42,
            class: SizeClass::Small,
        }
    }

    /// The load-bearing property: streamed encodings are byte-identical
    /// to encoding `build_module`'s functions in definition order.
    #[test]
    fn stream_matches_build_module_encodings() {
        let spec = tiny_spec();
        let m = build_module(&spec);
        let materialized: Vec<(String, Vec<u32>)> = m
            .defined_functions()
            .into_iter()
            .map(|id| m.function(id))
            .filter(|f| f.name != "__driver")
            .map(|f| (f.name.clone(), encode_function(&m.types, f)))
            .collect();
        let streamed: Vec<EncodedFunction> = FunctionStream::new(&spec).collect();
        assert_eq!(streamed.len(), materialized.len());
        assert_eq!(streamed.len(), spec.functions);
        for (s, (name, enc)) in streamed.iter().zip(&materialized) {
            assert_eq!(&s.name, name);
            assert_eq!(&s.encoded, enc, "encoding mismatch for {name}");
        }
    }

    #[test]
    fn stream_is_deterministic_and_exact_sized() {
        let spec = tiny_spec();
        let mut s = FunctionStream::new(&spec);
        assert_eq!(s.len(), spec.functions);
        s.next();
        assert_eq!(s.len(), spec.functions - 1);

        let a: Vec<EncodedFunction> = FunctionStream::new(&spec).collect();
        let b: Vec<EncodedFunction> = FunctionStream::new(&spec).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.family, y.family);
            assert_eq!(x.encoded, y.encoded);
        }
    }

    /// Every planted tag has at least one tagged sibling, ids are dense,
    /// and a healthy fraction of the corpus carries ground truth.
    #[test]
    fn family_tags_always_have_siblings() {
        use std::collections::HashMap;
        let spec = tiny_spec();
        let mut by_family: HashMap<u32, usize> = HashMap::new();
        let mut tagged = 0usize;
        for (i, f) in FunctionStream::new(&spec).enumerate() {
            assert_eq!(f.id, i as u64, "ids are dense stream positions");
            if let Some(fam) = f.family {
                *by_family.entry(fam).or_default() += 1;
                tagged += 1;
            }
        }
        assert!(!by_family.is_empty(), "some families are planted");
        for (fam, n) in by_family {
            assert!(n >= 2, "family {fam} has a lone tagged member");
        }
        assert!(
            tagged * 4 >= spec.functions,
            "expected >= 25% ground-truth coverage, got {tagged}/{}",
            spec.functions
        );
    }

    #[test]
    fn chrome_full_is_million_scale() {
        let spec = chrome_full();
        assert!(spec.functions >= 1_000_000);
        assert_eq!(spec.name, "chrome-full");
        // The stream over it starts up and yields without materializing
        // anything: grab just the first few functions.
        let head: Vec<EncodedFunction> = FunctionStream::new(&spec).take(8).collect();
        assert_eq!(head.len(), 8);
        assert!(head.iter().all(|f| !f.encoded.is_empty()));
    }
}
