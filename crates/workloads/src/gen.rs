//! Random function generation with controlled mutation.
//!
//! The key trick for producing realistic *function families* (clones that
//! drifted apart, template instantiations, copy-pasted handlers — the
//! redundancy function merging exploits) is to split randomness into two
//! streams:
//!
//! - the **structure stream**, seeded per family, drives every decision
//!   about CFG shape, opcode choice and operand selection;
//! - the **mutation stream**, seeded per member, perturbs individual
//!   decisions (opcode substitutions, constant changes, inserted or
//!   deleted instructions, integer-width retyping) at a configurable rate.
//!
//! Two members of the same family therefore have aligned structure with
//! divergence exactly where mutations hit — mirroring how similar
//! functions differ in real programs (cf. Figure 5 of the paper).

use f3m_prng::SmallRng;

use f3m_ir::builder::FunctionBuilder;
use f3m_ir::ids::{FuncId, ValueId};
use f3m_ir::inst::{FloatPredicate, IntPredicate, Opcode};
use f3m_ir::function::{Function, Linkage};
use f3m_ir::types::{TypeId, TypeStore};


/// Counter-based structural RNG.
///
/// Every draw advances the state by exactly one SplitMix64 step regardless
/// of the requested range, so two generation runs stay in lock-step even
/// when mutation-induced pool-size differences change the *values* being
/// requested. (`rand`'s `gen_range` uses rejection sampling, whose draw
/// count depends on the range — that would let siblings slip out of
/// alignment.)
#[derive(Clone, Debug)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> StreamRng {
        StreamRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (one draw).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i64` in `lo..=hi` (one draw).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform float in `[0, 1)` (one draw).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw (one draw).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Mutation rates applied to one family member.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutationProfile {
    /// Probability that an arithmetic opcode is substituted within its
    /// class.
    pub substitute: f64,
    /// Probability that an extra instruction is inserted after a slot.
    pub insert: f64,
    /// Probability that a non-essential instruction is skipped.
    pub delete: f64,
    /// Probability that a constant operand is perturbed.
    pub const_perturb: f64,
    /// Whether the whole function is retyped to the alternate integer
    /// width (i32 <-> i64) — the "same shape, different types" case.
    pub retype: bool,
    /// Whether straight-line runs are emitted in a member-specific order.
    /// Produces the Figure 5 trap: identical opcode histograms (so HyFM's
    /// fingerprint distance is ~0) with poor sequence alignment.
    pub shuffle: bool,
}

impl MutationProfile {
    /// No mutations: an exact clone.
    pub fn identical() -> Self {
        MutationProfile::default()
    }

    /// A lightly drifted clone (a few constants and opcodes differ).
    pub fn light() -> Self {
        MutationProfile {
            substitute: 0.04,
            insert: 0.03,
            delete: 0.02,
            const_perturb: 0.10,
            retype: false,
            shuffle: false,
        }
    }

    /// Noticeable drift; still profitably mergeable most of the time.
    pub fn medium() -> Self {
        MutationProfile {
            substitute: 0.12,
            insert: 0.08,
            delete: 0.06,
            const_perturb: 0.25,
            retype: false,
            shuffle: false,
        }
    }

    /// Same instruction multiset, different order: confuses frequency
    /// fingerprints but not MinHash.
    pub fn shuffled() -> Self {
        MutationProfile { shuffle: true, ..MutationProfile::identical() }
    }

    /// Heavy drift; alignment should often reject these.
    pub fn heavy() -> Self {
        MutationProfile {
            substitute: 0.30,
            insert: 0.20,
            delete: 0.15,
            const_perturb: 0.50,
            retype: false,
            shuffle: false,
        }
    }
}

/// Structural parameters of one generated function.
#[derive(Clone, Copy, Debug)]
pub struct ShapeParams {
    /// Approximate number of instructions to generate (pre-mutation).
    pub target_insts: usize,
    /// Integer width theme of the function (8/16/32/64). Families with
    /// different widths have disjoint instruction encodings, which keeps
    /// cross-family Jaccard similarity realistically low.
    pub int_bits: u32,
    /// Number of integer parameters.
    pub int_params: usize,
    /// Number of float parameters.
    pub float_params: usize,
    /// Fraction of arithmetic done in floating point.
    pub float_mix: f64,
    /// Probability of a control-flow region (diamond or loop) between
    /// straight-line runs.
    pub cfg_density: f64,
    /// Probability that a slot is a call to an external source.
    pub call_density: f64,
    /// Probability that a slot touches memory (alloca'd scratch).
    pub mem_density: f64,
    /// Whether the function may end a block with `invoke` instead of a
    /// plain call.
    pub allow_invoke: bool,
}

impl Default for ShapeParams {
    fn default() -> Self {
        ShapeParams {
            target_insts: 24,
            int_bits: 32,
            int_params: 2,
            float_params: 0,
            float_mix: 0.15,
            cfg_density: 0.25,
            call_density: 0.08,
            mem_density: 0.10,
            allow_invoke: false,
        }
    }
}

/// External declarations a generated module must contain.
/// `(name, int param?, returns)` — see [`declare_externals`].
pub const EXTERNALS: &[(&str, &str)] = &[
    ("ext_src_i32", "i32->i32"),
    ("ext_src_i64", "i64->i64"),
    ("ext_src_f64", "f64->f64"),
    ("ext_sink_i32", "i32->void"),
    ("ext_sink_i64", "i64->void"),
    ("ext_sink_f64", "f64->void"),
];

/// Adds the standard external declarations to a module and returns their
/// ids in [`EXTERNALS`] order.
pub fn declare_externals(m: &mut f3m_ir::module::Module) -> Vec<FuncId> {
    let i32t = m.types.int(32);
    let i64t = m.types.int(64);
    let f64t = m.types.f64();
    let void = m.types.void();
    let sigs: Vec<(&str, Vec<TypeId>, TypeId)> = vec![
        ("ext_src_i32", vec![i32t], i32t),
        ("ext_src_i64", vec![i64t], i64t),
        ("ext_src_f64", vec![f64t], f64t),
        ("ext_sink_i32", vec![i32t], void),
        ("ext_sink_i64", vec![i64t], void),
        ("ext_sink_f64", vec![f64t], void),
    ];
    sigs.into_iter()
        .map(|(name, params, ret)| {
            m.lookup_function(name).unwrap_or_else(|| {
                m.add_function(Function::new_declaration(name, params, ret))
            })
        })
        .collect()
}

/// Pools of generated values, by type class.
struct Pool {
    ints: Vec<ValueId>,
    floats: Vec<ValueId>,
}

/// Generator state for one function.
struct GenCtx<'a, 'b> {
    b: &'a mut FunctionBuilder<'b>,
    srng: StreamRng,
    mrng: SmallRng,
    profile: MutationProfile,
    pool: Pool,
    int_ty: TypeId,
    f64_ty: TypeId,
    externals: &'a [FuncId],
    scratch: Option<ValueId>,
    emitted: usize,
    unwind_block: Option<f3m_ir::ids::BlockId>,
    /// When set, operand picks only see pool entries below these marks —
    /// used in shuffle mode to keep a run's slots independent so they can
    /// be permuted without breaking SSA.
    pool_cap: Option<(usize, usize)>,
    /// The family's opcode dialect: the subset of [`INT_OPS`] this
    /// function draws from (mutation substitutions still use the full
    /// set, modelling one-off divergence).
    palette: Vec<Opcode>,
    /// The family's comparison-predicate dialect.
    pred_palette: Vec<IntPredicate>,
    /// A secondary integer width the family occasionally computes in,
    /// reached through casts (cast shingles are family-specific because
    /// both widths are encoded).
    sec_ty: TypeId,
    /// Length of the family's scratch array (its type is encoded into
    /// every `alloca` shingle).
    scratch_len: i64,
}

const INT_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
];

const FLOAT_OPS: &[Opcode] = &[Opcode::FAdd, Opcode::FSub, Opcode::FMul];

impl<'a, 'b> GenCtx<'a, 'b> {
    fn pick_int(&mut self) -> ValueId {
        let n = self.pool_cap.map_or(self.pool.ints.len(), |c| c.0);
        let i = self.srng.range(n);
        self.pool.ints[i]
    }

    fn pick_float(&mut self) -> ValueId {
        let n = self.pool_cap.map_or(self.pool.floats.len(), |c| c.1);
        let i = self.srng.range(n);
        self.pool.floats[i]
    }

    fn gen_const_int(&mut self) -> i64 {
        let mut c = self.srng.range_i64(-64, 64);
        if self.mrng.gen_bool(self.profile.const_perturb) {
            c = c.wrapping_add(self.mrng.gen_range(1..=16i64));
        }
        c
    }

    /// Emits one pseudo-random instruction slot.
    ///
    /// Structure-stream draws happen unconditionally so that a *deleted*
    /// slot (a mutation) keeps siblings aligned: only the emission and the
    /// pool push are skipped.
    fn emit_slot(&mut self, shape: &ShapeParams) {
        let deleted = self.mrng.gen_bool(self.profile.delete);
        let roll: f64 = self.srng.unit();
        if roll < shape.call_density {
            // Calls have side effects; deletion does not apply.
            self.emit_call(shape);
        } else if roll < shape.call_density + shape.mem_density {
            self.emit_mem(deleted);
        } else if self.srng.chance(shape.float_mix) {
            self.emit_float_op(deleted);
        } else if self.srng.chance(0.18) {
            self.emit_width_excursion(deleted);
        } else {
            self.emit_int_op(deleted);
        }
        // Mutation: extra inserted instruction drawn from the mutation
        // stream only.
        if self.mrng.gen_bool(self.profile.insert) {
            let limit = self.pool_cap.map_or(self.pool.ints.len(), |c| c.0);
            let a = self.pool.ints[self.mrng.gen_range(0..limit)];
            let c = self.mrng.gen_range(-31..=31i64);
            let cv = self.b.const_int(self.int_ty, c);
            let v = self.b.binary(
                INT_OPS[self.mrng.gen_range(0..INT_OPS.len())],
                a,
                cv,
            );
            // Inserted instructions are mutations: they do not advance the
            // structural slot counter, so siblings stay aligned.
            self.pool.ints.push(v);
        }
    }

    fn substituted(&mut self, ops: &[Opcode], chosen: usize) -> Opcode {
        if self.mrng.gen_bool(self.profile.substitute) {
            ops[self.mrng.gen_range(0..ops.len())]
        } else {
            ops[chosen]
        }
    }

    fn emit_int_op(&mut self, deleted: bool) {
        let chosen = self.srng.range(self.palette.len());
        let op = self.palette[chosen];
        let op = if self.mrng.gen_bool(self.profile.substitute) {
            INT_OPS[self.mrng.gen_range(0..INT_OPS.len())]
        } else {
            op
        };
        let a = self.pick_int();
        // Half the time combine with a constant, half with a pool value.
        let b = if self.srng.chance(0.5) {
            let c = self.gen_const_int();
            self.b.const_int(self.int_ty, c)
        } else {
            self.pick_int()
        };
        if !deleted {
            let v = self.b.binary(op, a, b);
            self.pool.ints.push(v);
        }
        self.emitted += 1;
        // Occasionally derive a comparison + select chain.
        if self.srng.chance(0.15) {
            let x = self.pick_int();
            let y = self.pick_int();
            let p = self.pred_palette[self.srng.range(self.pred_palette.len())];
            if !deleted {
                let c = self.b.icmp(p, x, y);
                let s = self.b.select(c, x, y);
                self.pool.ints.push(s);
            }
            self.emitted += 2;
        }
    }

    /// Computes briefly in the family's secondary integer width and casts
    /// back — cast shingles encode both widths, so they are family-unique.
    fn emit_width_excursion(&mut self, deleted: bool) {
        let chosen = self.srng.range(self.palette.len());
        let op = self.palette[chosen];
        let a = self.pick_int();
        let c = self.gen_const_int();
        self.emitted += 4;
        let _ = (op, a, c);
        if deleted || self.sec_ty == self.int_ty {
            return;
        }
        let prim_bits = self.b.types().int_bits(self.int_ty).expect("int theme");
        let sec_bits = self.b.types().int_bits(self.sec_ty).expect("sec width");
        let widen_op = if sec_bits > prim_bits { Opcode::SExt } else { Opcode::Trunc };
        let back_op = if sec_bits > prim_bits { Opcode::Trunc } else { Opcode::ZExt };
        let sec_ty = self.sec_ty;
        let wa = self.b.cast(widen_op, a, sec_ty);
        let cv = self.b.const_int(sec_ty, c);
        let r = self.b.binary(op, wa, cv);
        let int_ty = self.int_ty;
        let back = self.b.cast(back_op, r, int_ty);
        self.pool.ints.push(back);
    }

    fn emit_float_op(&mut self, deleted: bool) {
        let chosen = self.srng.range(FLOAT_OPS.len());
        let op = self.substituted(FLOAT_OPS, chosen);
        let a = self.pick_float();
        let b = if self.srng.chance(0.5) {
            let mut c: f64 = -8.0 + 16.0 * self.srng.unit();
            if self.mrng.gen_bool(self.profile.const_perturb) {
                c += 0.5;
            }
            self.b.const_float(self.f64_ty, c)
        } else {
            self.pick_float()
        };
        let chain = self.srng.chance(0.1);
        let x = if chain { Some(self.pick_float()) } else { None };
        self.emitted += 1 + if chain { 2 } else { 0 };
        if deleted {
            return;
        }
        let v = self.b.binary(op, a, b);
        self.pool.floats.push(v);
        if let Some(x) = x {
            let c = self.b.fcmp(FloatPredicate::Olt, v, x);
            let s = self.b.select(c, v, x);
            self.pool.floats.push(s);
        }
    }

    fn emit_mem(&mut self, deleted: bool) {
        let idx = self.srng.range_i64(0, self.scratch_len - 1);
        let is_store = self.srng.chance(0.5);
        let v = self.pick_int();
        self.emitted += 2;
        let slot = match self.scratch {
            Some(s) => s,
            None => return, // scratch allocated only in the entry block
        };
        if deleted {
            return;
        }
        let iv = self.b.const_int(self.int_ty, idx);
        let p = self.b.gep(self.int_ty, slot, iv);
        if is_store {
            self.b.store(v, p);
        } else {
            let l = self.b.load(self.int_ty, p);
            self.pool.ints.push(l);
        }
    }

    fn emit_call(&mut self, shape: &ShapeParams) {
        // ext_src of the function's integer width, or f64.
        let use_float = self.srng.chance(shape.float_mix);
        if use_float {
            let arg = self.pick_float();
            let callee_id = self.externals[2];
            let callee = {
                let ptr = self.b.types().ptr();
                let f = self.b.func_mut();
                f.func_ref(callee_id, ptr)
            };
            let v = self.b.call(callee, &[arg], self.f64_ty).expect("f64 src");
            self.pool.floats.push(v);
        } else {
            let raw = self.pick_int();
            let bits = self
                .b
                .types()
                .int_bits(self.int_ty)
                .expect("integer theme");
            // ext_src comes in i32 and i64 flavours; narrower themes cast
            // through i32 (adding realistic cast traffic).
            let (callee_id, call_ty, arg) = if bits == 64 {
                (self.externals[1], self.b.types().int(64), raw)
            } else if bits == 32 {
                (self.externals[0], self.b.types().int(32), raw)
            } else {
                let i32t = self.b.types().int(32);
                let widened = self.b.cast(Opcode::SExt, raw, i32t);
                self.emitted += 1;
                (self.externals[0], i32t, widened)
            };
            let callee = {
                let ptr = self.b.types().ptr();
                let f = self.b.func_mut();
                f.func_ref(callee_id, ptr)
            };
            if shape.allow_invoke && self.srng.chance(0.25) {
                // Invoke: terminator; continue in the normal block.
                let normal = self.b.create_block("inv.norm");
                let unwind = self.unwind_block.expect("unwind block pre-created");
                let v = self
                    .b
                    .invoke(callee, &[arg], call_ty, normal, unwind)
                    .expect("int src");
                self.b.position_at_end(normal);
                self.push_int_result(v, call_ty);
                self.emitted += 1;
                return;
            }
            let v = self.b.call(callee, &[arg], call_ty).expect("int src");
            self.push_int_result(v, call_ty);
        }
        self.emitted += 1;
    }

    /// Pushes a call result into the integer pool, narrowing back to the
    /// function's integer theme when the external was wider.
    fn push_int_result(&mut self, v: ValueId, call_ty: TypeId) {
        if call_ty == self.int_ty {
            self.pool.ints.push(v);
        } else {
            let narrowed = self.b.cast(Opcode::Trunc, v, self.int_ty);
            self.emitted += 1;
            self.pool.ints.push(narrowed);
        }
    }
}

/// Generates one function.
///
/// `struct_seed` fixes the family structure; `member_seed` drives
/// mutations under `profile`. Callers pass the same `struct_seed` for all
/// members of a family.
#[allow(clippy::too_many_arguments)]
pub fn generate_function(
    ts: &mut TypeStore,
    externals: &[FuncId],
    name: &str,
    shape: &ShapeParams,
    struct_seed: u64,
    member_seed: u64,
    profile: &MutationProfile,
    linkage: Linkage,
) -> Function {
    let bits = if profile.retype {
        // The "same shape, different types" clone: one width over.
        match shape.int_bits {
            8 => 16,
            16 => 32,
            32 => 64,
            _ => 32,
        }
    } else {
        shape.int_bits
    };
    let int_ty = ts.int(bits);
    let f64_ty = ts.f64();
    let mut params: Vec<TypeId> = Vec::new();
    for _ in 0..shape.int_params.max(1) {
        params.push(int_ty);
    }
    for _ in 0..shape.float_params {
        params.push(f64_ty);
    }
    let mut f = Function::new(name, params.clone(), int_ty);
    f.linkage = linkage;

    let mut b = FunctionBuilder::new(ts, &mut f);
    let entry = b.create_block("entry");
    b.position_at_end(entry);

    let mut ctx = {
        let mut pool = Pool { ints: Vec::new(), floats: Vec::new() };
        for (i, _) in params.iter().enumerate().take(shape.int_params.max(1)) {
            pool.ints.push(b.func().arg(i));
        }
        for i in 0..shape.float_params {
            pool.floats.push(b.func().arg(shape.int_params.max(1) + i));
        }
        GenCtx {
            b: &mut b,
            srng: StreamRng::new(struct_seed),
            mrng: SmallRng::seed_from_u64(member_seed),
            profile: *profile,
            pool,
            int_ty,
            f64_ty,
            externals,
            scratch: None,
            emitted: 0,
            unwind_block: None,
            pool_cap: None,
            palette: Vec::new(),
            pred_palette: Vec::new(),
            sec_ty: int_ty,
            scratch_len: 8,
        }
    };
    // Draw the family dialect: 4-7 integer opcodes out of the full set,
    // two comparison predicates, a secondary width and a scratch shape.
    {
        let count = 4 + ctx.srng.range(4);
        let mut pool: Vec<Opcode> = INT_OPS.to_vec();
        for _ in 0..count.min(pool.len()) {
            let i = ctx.srng.range(pool.len());
            ctx.palette.push(pool.swap_remove(i));
        }
        const ALL_PREDS: [IntPredicate; 10] = [
            IntPredicate::Eq,
            IntPredicate::Ne,
            IntPredicate::Ugt,
            IntPredicate::Uge,
            IntPredicate::Ult,
            IntPredicate::Ule,
            IntPredicate::Sgt,
            IntPredicate::Sge,
            IntPredicate::Slt,
            IntPredicate::Sle,
        ];
        let p1 = ctx.srng.range(ALL_PREDS.len());
        let p2 = ctx.srng.range(ALL_PREDS.len());
        ctx.pred_palette = vec![ALL_PREDS[p1], ALL_PREDS[p2]];
        let widths = [8u32, 16, 32, 64];
        let w = widths[ctx.srng.range(widths.len())];
        ctx.sec_ty = ctx.b.types().int(w);
        ctx.scratch_len = 3 + ctx.srng.range(21) as i64;
    }

    // Seed the pools with a couple of constants so operand picks always
    // succeed.
    let c1 = ctx.srng.range_i64(1, 9);
    let c1v = ctx.b.const_int(int_ty, c1);
    ctx.pool.ints.push(c1v);
    if shape.float_mix > 0.0 {
        let fc = ctx.b.const_float(f64_ty, 1.5);
        ctx.pool.floats.push(fc);
    }

    // Scratch buffer for memory traffic; its length (hence its array
    // type, hence the alloca shingle) is a family trait.
    if shape.mem_density > 0.0 {
        let arr = {
            let len = ctx.scratch_len as u64;
            let t = ctx.b.types().array(int_ty, len);
            ctx.b.alloca(t)
        };
        ctx.scratch = Some(arr);
        ctx.emitted += 1;
    }
    // Pre-create the unwind sink when invokes are allowed.
    if shape.allow_invoke {
        let uw = ctx.b.create_block("unwind.sink");
        ctx.unwind_block = Some(uw);
    }

    // Main generation loop: straight-line runs interleaved with regions.
    while ctx.emitted < shape.target_insts {
        let run = 2 + ctx.srng.range(4);
        let run_block = ctx.b.current_block();
        let run_start = ctx.b.func().block(run_block).insts.len();
        if profile.shuffle {
            ctx.pool_cap = Some((ctx.pool.ints.len(), ctx.pool.floats.len()));
        }
        let mut groups: Vec<usize> = Vec::with_capacity(run + 1);
        groups.push(run_start);
        for _ in 0..run {
            ctx.emit_slot(shape);
            if ctx.b.current_block() == run_block {
                groups.push(ctx.b.func().block(run_block).insts.len());
            }
        }
        ctx.pool_cap = None;
        // Shuffle mode: permute the slot groups of this run (each group's
        // instructions only read pre-run values, so any order is valid
        // SSA). Skipped when an invoke moved emission to another block.
        if profile.shuffle
            && ctx.b.current_block() == run_block
            && groups.len() > 2
        {
            let slice: Vec<Vec<f3m_ir::ids::InstId>> = groups
                .windows(2)
                .map(|w| ctx.b.func().block(run_block).insts[w[0]..w[1]].to_vec())
                .collect();
            let mut order: Vec<usize> = (0..slice.len()).collect();
            // Fisher–Yates with the member-specific stream.
            for i in (1..order.len()).rev() {
                let j = ctx.mrng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut rebuilt = Vec::new();
            for &g in &order {
                rebuilt.extend_from_slice(&slice[g]);
            }
            let f = ctx.b.func_mut();
            let insts = &mut f.block_mut(run_block).insts;
            insts.truncate(run_start);
            insts.extend(rebuilt);
        }
        if ctx.emitted >= shape.target_insts {
            break;
        }
        if ctx.srng.chance(shape.cfg_density) {
            if ctx.srng.chance(0.35) {
                emit_loop(&mut ctx, shape);
            } else {
                emit_diamond(&mut ctx, shape);
            }
        }
    }

    // Return a value folding several pool entries together, so most of
    // the computation is live (random expression trees otherwise leave a
    // lot of dead code, which would inflate merge savings for free).
    let mut ret = ctx.pick_int();
    for _ in 0..3 {
        let v = ctx.pick_int();
        ret = ctx.b.binary(Opcode::Xor, ret, v);
    }
    if shape.float_mix > 0.0 {
        let fv = ctx.pick_float();
        let as_int = ctx.b.cast(Opcode::FPToSI, fv, int_ty);
        ret = ctx.b.binary(Opcode::Add, ret, as_int);
    }
    ctx.b.ret(Some(ret));

    // Terminate the unwind sink (never executed).
    if let Some(uw) = ctx.unwind_block {
        ctx.b.position_at_end(uw);
        ctx.b.unreachable();
    }

    f
}

/// Emits an if/else diamond with small bodies and a phi join.
fn emit_diamond(ctx: &mut GenCtx<'_, '_>, shape: &ShapeParams) {
    let x = ctx.pick_int();
    let y = ctx.pick_int();
    let p = ctx.pred_palette[ctx.srng.range(ctx.pred_palette.len())];
    let cond = ctx.b.icmp(p, x, y);
    let then_bb = ctx.b.create_block("then");
    let else_bb = ctx.b.create_block("else");
    let join = ctx.b.create_block("join");
    ctx.b.cond_br(cond, then_bb, else_bb);
    ctx.emitted += 2;

    ctx.b.position_at_end(then_bb);
    let n_then = 1 + ctx.srng.range(3);
    let int_mark = ctx.pool.ints.len();
    let float_mark = ctx.pool.floats.len();
    for _ in 0..n_then {
        ctx.emit_slot(shape);
    }
    let tv = ctx.pick_int();
    ctx.b.br(join);
    ctx.emitted += 1;
    let then_end = ctx.b.current_block();

    // Values defined in the then-branch do not dominate the join; restrict
    // the pools to pre-branch values for the else side and afterwards.
    ctx.pool.ints.truncate(int_mark);
    ctx.pool.floats.truncate(float_mark);

    ctx.b.position_at_end(else_bb);
    let n_else = 1 + ctx.srng.range(3);
    for _ in 0..n_else {
        ctx.emit_slot(shape);
    }
    let ev = ctx.pick_int();
    ctx.b.br(join);
    ctx.emitted += 1;
    let else_end = ctx.b.current_block();
    ctx.pool.ints.truncate(int_mark);
    ctx.pool.floats.truncate(float_mark);

    ctx.b.position_at_end(join);
    let phi = ctx.b.phi(ctx.int_ty, &[(tv, then_end), (ev, else_end)]);
    ctx.pool.ints.push(phi);
    ctx.emitted += 1;
}

/// Emits a bounded counting loop whose body folds pool values into an
/// accumulator.
fn emit_loop(ctx: &mut GenCtx<'_, '_>, shape: &ShapeParams) {
    let _ = shape;
    let trip = ctx.srng.range_i64(2, 6);
    let pre = ctx.b.current_block();
    let header = ctx.b.create_block("loop.header");
    let body = ctx.b.create_block("loop.body");
    let exit = ctx.b.create_block("loop.exit");

    let init = ctx.pick_int();
    let zero = ctx.b.const_int(ctx.int_ty, 0);
    let tripv = ctx.b.const_int(ctx.int_ty, trip);
    ctx.b.br(header);

    // header: phi for counter and accumulator.
    ctx.b.position_at_end(header);
    // Placeholder incomings for the back edge are patched after the body.
    let counter = ctx.b.phi(ctx.int_ty, &[(zero, pre), (zero, body)]);
    let acc = ctx.b.phi(ctx.int_ty, &[(init, pre), (init, body)]);
    let cmp = ctx.b.icmp(IntPredicate::Slt, counter, tripv);
    ctx.b.cond_br(cmp, body, exit);
    ctx.emitted += 4;

    // body
    ctx.b.position_at_end(body);
    let step = ctx.pick_int();
    let ops = [Opcode::Add, Opcode::Xor, Opcode::Sub];
    let op = {
        let chosen = ctx.srng.range(ops.len());
        ctx.substituted(&ops, chosen)
    };
    let acc2 = ctx.b.binary(op, acc, step);
    let one = ctx.b.const_int(ctx.int_ty, 1);
    let counter2 = ctx.b.add(counter, one);
    ctx.b.br(header);
    ctx.emitted += 3;

    // Patch the back-edge incomings.
    {
        let f = ctx.b.func_mut();
        let hdr_insts: Vec<_> = f.block(header).insts.clone();
        let counter_phi = hdr_insts[0];
        let acc_phi = hdr_insts[1];
        let inst = f.inst_mut(counter_phi);
        inst.operands[1] = counter2;
        let inst = f.inst_mut(acc_phi);
        inst.operands[1] = acc2;
    }

    ctx.b.position_at_end(exit);
    ctx.pool.ints.push(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::module::Module;
    use f3m_ir::verify::verify_module;

    fn gen_into_module(
        shape: &ShapeParams,
        struct_seed: u64,
        member_seed: u64,
        profile: &MutationProfile,
    ) -> Module {
        let mut m = Module::new("g");
        let ext = declare_externals(&mut m);
        let f = generate_function(
            &mut m.types,
            &ext,
            "gen0",
            shape,
            struct_seed,
            member_seed,
            profile,
            Linkage::External,
        );
        m.add_function(f);
        m
    }

    #[test]
    fn generated_functions_verify() {
        for seed in 0..30u64 {
            let shape = ShapeParams::default();
            let m = gen_into_module(&shape, seed, seed * 7 + 1, &MutationProfile::light());
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn generated_functions_with_heavy_cfg_verify() {
        for seed in 0..20u64 {
            let shape = ShapeParams {
                target_insts: 60,
                cfg_density: 0.6,
                float_mix: 0.3,
                mem_density: 0.2,
                ..ShapeParams::default()
            };
            let m = gen_into_module(&shape, seed, seed, &MutationProfile::medium());
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn invoke_generation_verifies() {
        for seed in 0..20u64 {
            let shape = ShapeParams {
                target_insts: 40,
                call_density: 0.3,
                allow_invoke: true,
                ..ShapeParams::default()
            };
            let m = gen_into_module(&shape, seed, seed, &MutationProfile::identical());
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn same_seeds_generate_identical_functions() {
        let shape = ShapeParams::default();
        let m1 = gen_into_module(&shape, 42, 1, &MutationProfile::identical());
        let m2 = gen_into_module(&shape, 42, 2, &MutationProfile::identical());
        let p1 = f3m_ir::printer::print_module(&m1);
        let p2 = f3m_ir::printer::print_module(&m2);
        assert_eq!(p1, p2, "no mutations => member seed is irrelevant");
    }

    #[test]
    fn mutations_create_divergence() {
        let shape = ShapeParams::default();
        let m1 = gen_into_module(&shape, 42, 1, &MutationProfile::medium());
        let m2 = gen_into_module(&shape, 42, 2, &MutationProfile::medium());
        let p1 = f3m_ir::printer::print_module(&m1);
        let p2 = f3m_ir::printer::print_module(&m2);
        assert_ne!(p1, p2, "different member seeds must diverge");
    }

    #[test]
    fn family_members_are_highly_similar() {
        use f3m_fingerprint::encode::encode_function;
        use f3m_fingerprint::minhash::MinHashFingerprint;
        let shape = ShapeParams { target_insts: 40, ..ShapeParams::default() };
        let m1 = gen_into_module(&shape, 7, 100, &MutationProfile::light());
        let m2 = gen_into_module(&shape, 7, 200, &MutationProfile::light());
        let mx = gen_into_module(&shape, 8, 100, &MutationProfile::light());
        let enc = |m: &Module| {
            let id = m.lookup_function("gen0").unwrap();
            encode_function(&m.types, m.function(id))
        };
        let fp1 = MinHashFingerprint::of_encoded(&enc(&m1), 200);
        let fp2 = MinHashFingerprint::of_encoded(&enc(&m2), 200);
        let fpx = MinHashFingerprint::of_encoded(&enc(&mx), 200);
        let within = fp1.similarity(&fp2);
        let across = fp1.similarity(&fpx);
        assert!(
            within > across,
            "family similarity {within:.3} must exceed cross-family {across:.3}"
        );
        assert!(within > 0.4, "light mutations keep members similar: {within:.3}");
    }

    #[test]
    fn generated_functions_are_executable() {
        use f3m_interp::{Interpreter, Limits, Val};
        for seed in 0..10u64 {
            let shape = ShapeParams { target_insts: 30, cfg_density: 0.4, ..Default::default() };
            let m = gen_into_module(&shape, seed, seed, &MutationProfile::light());
            let mut i = Interpreter::with_limits(
                &m,
                Limits { fuel: 100_000, memory: 1 << 20, max_depth: 32 },
            );
            let out = i.call_by_name("gen0", &[Val::Int(5), Val::Int(-3)]);
            assert!(out.is_ok(), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn retype_flag_switches_integer_width() {
        let shape = ShapeParams::default();
        let profile = MutationProfile { retype: true, ..MutationProfile::identical() };
        let m = gen_into_module(&shape, 3, 3, &profile);
        let f = m.function(m.lookup_function("gen0").unwrap());
        let mut ts = TypeStore::new();
        assert_eq!(f.ret_ty, ts.int(64));
    }
}

#[cfg(test)]
mod shuffle_tests {
    use super::*;
    use f3m_ir::module::Module;
    use f3m_ir::verify::verify_module;
    use f3m_fingerprint::encode::encode_function;
    use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
    use f3m_core::align::needleman_wunsch;

    fn gen_pair(shape: &ShapeParams, profile: &MutationProfile) -> (Module, Vec<u32>, Vec<u32>) {
        let mut m = Module::new("s");
        let ext = declare_externals(&mut m);
        let f1 = generate_function(
            &mut m.types, &ext, "base", shape, 99, 0, &MutationProfile::identical(),
            Linkage::External);
        let f2 = generate_function(
            &mut m.types, &ext, "clone", shape, 99, 7, profile, Linkage::External);
        let e1 = encode_function(&m.types, &f1);
        let e2 = encode_function(&m.types, &f2);
        m.add_function(f1);
        m.add_function(f2);
        (m, e1, e2)
    }

    #[test]
    fn shuffled_clones_verify() {
        for seed in 0..15u64 {
            let mut m = Module::new("s");
            let ext = declare_externals(&mut m);
            let shape = ShapeParams { target_insts: 40, cfg_density: 0.3, ..Default::default() };
            let f = generate_function(
                &mut m.types, &ext, "sh", &shape, seed, seed + 1,
                &MutationProfile::shuffled(), Linkage::External);
            m.add_function(f);
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn shuffled_clones_keep_opcode_histogram_but_lose_alignment() {
        let shape = ShapeParams {
            target_insts: 50,
            cfg_density: 0.0, // pure straight-line maximizes the effect
            call_density: 0.0,
            mem_density: 0.0,
            ..Default::default()
        };
        let (m, e1, e2) = gen_pair(&shape, &MutationProfile::shuffled());
        let ids = m.defined_functions();
        let fp1 = OpcodeFingerprint::of(m.function(ids[0]));
        let fp2 = OpcodeFingerprint::of(m.function(ids[1]));
        assert_eq!(fp1.distance(&fp2), 0, "identical opcode multiset");
        let align = needleman_wunsch(&e1, &e2);
        assert!(
            align.ratio() < 0.9,
            "shuffling must degrade alignment: {:.3}",
            align.ratio()
        );
    }

    #[test]
    fn shuffle_is_member_specific() {
        let shape = ShapeParams { target_insts: 40, cfg_density: 0.0, ..Default::default() };
        let mut m = Module::new("s");
        let ext = declare_externals(&mut m);
        let a = generate_function(&mut m.types, &ext, "a", &shape, 5, 1,
            &MutationProfile::shuffled(), Linkage::External);
        let b = generate_function(&mut m.types, &ext, "b", &shape, 5, 2,
            &MutationProfile::shuffled(), Linkage::External);
        let ea = encode_function(&m.types, &a);
        let eb = encode_function(&m.types, &b);
        assert_ne!(ea, eb, "different member seeds give different orders");
        let mut sa = ea.clone();
        let mut sb = eb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "same multiset regardless of order");
    }
}
