//! Workload specifications mirroring Table I of the paper.
//!
//! The paper evaluates on C/C++ benchmarks from SPEC CPU2006/CPU2017 plus
//! two large real applications (the Linux kernel and Google Chrome). Those
//! codebases are not available here, so each entry is reproduced as a
//! *synthetic* module with a comparable function count and a family
//! structure that produces the same merging phenomenology: most functions
//! belong to families of drifted clones, a tail of singletons does not,
//! and a small fraction of families are same-shape/different-type clones
//! (the `perf_trace_destroy` vs `perf_kprobe_destroy` situation of
//! Figure 5).
//!
//! Chrome's 1.2M functions are scaled to 120k (`chrome-scale`) so the
//! quadratic-vs-linear ranking contrast remains several orders of
//! magnitude while staying runnable; every bench prints the actual counts.

use f3m_prng::SmallRng;

use f3m_ir::builder::FunctionBuilder;
use f3m_ir::inst::Opcode;
use f3m_ir::function::{Function, Linkage};
use f3m_ir::module::Module;

use crate::gen::{
    declare_externals, generate_function, MutationProfile, ShapeParams,
};

/// Specification of one synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Display name (mirrors the paper's benchmark names).
    pub name: &'static str,
    /// Number of function definitions to generate.
    pub functions: usize,
    /// Mean instructions per function.
    pub mean_insts: usize,
    /// Fraction of functions that belong to a clone family.
    pub family_fraction: f64,
    /// Mean family size (geometric-ish).
    pub mean_family_size: usize,
    /// Fraction of generated functions that keep external linkage (must
    /// survive as symbols; the rest are module-private).
    pub external_fraction: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Size class used by figure groupings.
    pub class: SizeClass,
}

/// Paper-style size classes (Figure groupings use these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// 100–1k functions.
    Small,
    /// 1k–10k functions.
    Medium,
    /// 10k+ functions.
    Large,
}

impl WorkloadSpec {
    /// Returns this spec scaled by `factor` (function count only;
    /// everything else is preserved). Used by benches to bound runtime.
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        let mut s = self.clone();
        s.functions = ((s.functions as f64 * factor).round() as usize).max(8);
        s
    }
}

/// The full synthetic suite mirroring Table I (SPEC CPU2006 + CPU2017
/// benchmarks, the Linux kernel, Chromium).
pub fn table1() -> Vec<WorkloadSpec> {
    let mk = |name, functions, mean_insts, seed, class| WorkloadSpec {
        name,
        functions,
        mean_insts,
        family_fraction: 0.65,
        mean_family_size: 4,
        external_fraction: 0.15,
        seed,
        class,
    };
    vec![
        mk("429.mcf", 40, 42, 101, SizeClass::Small),
        mk("462.libquantum", 115, 30, 102, SizeClass::Small),
        mk("401.bzip2", 100, 48, 103, SizeClass::Small),
        mk("458.sjeng", 144, 40, 104, SizeClass::Small),
        mk("470.lbm", 30, 60, 105, SizeClass::Small),
        mk("433.milc", 235, 34, 106, SizeClass::Small),
        mk("444.namd", 100, 80, 107, SizeClass::Small),
        mk("508.namd_r", 120, 80, 108, SizeClass::Small),
        mk("456.hmmer", 538, 36, 109, SizeClass::Small),
        mk("464.h264ref", 590, 46, 110, SizeClass::Small),
        mk("482.sphinx3", 369, 33, 111, SizeClass::Small),
        mk("400.perlbench", 1837, 38, 112, SizeClass::Medium),
        mk("445.gobmk", 2679, 28, 113, SizeClass::Medium),
        mk("447.dealII", 7380, 26, 114, SizeClass::Medium),
        mk("453.povray", 2200, 34, 115, SizeClass::Medium),
        mk("471.omnetpp", 2500, 26, 116, SizeClass::Medium),
        mk("403.gcc", 5577, 36, 117, SizeClass::Medium),
        mk("510.parest_r", 9000, 26, 118, SizeClass::Medium),
        mk("620.omnetpp_s", 9200, 26, 119, SizeClass::Medium),
        mk("623.xalancbmk_s", 13500, 24, 120, SizeClass::Large),
        mk("526.blender_r", 28000, 24, 121, SizeClass::Large),
        mk("linux-scale", 45000, 22, 122, SizeClass::Large),
        mk("chrome-scale", 120000, 20, 123, SizeClass::Large),
    ]
}

/// A small suite for tests and quick demos.
pub fn mini_suite() -> Vec<WorkloadSpec> {
    table1().into_iter().take(4).map(|s| s.scaled(0.5)).collect()
}

/// Builds the synthetic module for a spec, including the external driver
/// function `@__driver(i64) -> i64` that exercises a sample of the
/// generated functions (used by the interpreter-based experiments).
pub fn build_module(spec: &WorkloadSpec) -> Module {
    let mut m = Module::new(spec.name);
    let externals = declare_externals(&mut m);
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    let mut generated: Vec<f3m_ir::ids::FuncId> = Vec::new();
    let mut produced = 0usize;
    let mut family_idx = 0usize;
    while produced < spec.functions {
        let in_family = rng.gen_bool(spec.family_fraction);
        let members = if in_family {
            let geometric = 2 + rng.gen_range(0..spec.mean_family_size * 2);
            geometric.min(spec.functions - produced).max(1)
        } else {
            1
        };
        let struct_seed = spec.seed ^ (family_idx as u64).wrapping_mul(0x9E37_79B9);
        let shape = ShapeParams {
            target_insts: sample_size(&mut rng, spec.mean_insts),
            int_bits: *[16u32, 32, 32, 32, 64, 64].get(rng.gen_range(0..6usize)).unwrap(),
            int_params: rng.gen_range(1..=3usize),
            float_params: usize::from(rng.gen_bool(0.2)),
            float_mix: if rng.gen_bool(0.25) { 0.4 } else { 0.1 },
            cfg_density: rng.gen_range(0.1..0.4),
            call_density: 0.08,
            mem_density: 0.10,
            allow_invoke: rng.gen_bool(0.15),
        };
        // Family mutation intensity varies per family.
        let base_profile = match rng.gen_range(0..10) {
            0..=3 => MutationProfile::identical(),
            4..=6 => MutationProfile::light(),
            7..=8 => MutationProfile::medium(),
            _ => MutationProfile::heavy(),
        };
        for member in 0..members {
            let mut profile = if member == 0 {
                MutationProfile::identical()
            } else {
                base_profile
            };
            // A small fraction of family members are retyped clones: near
            // perfect structural matches that must NOT merge (Figure 5's
            // counterexample, and the "identical fingerprints, no
            // alignment" corner of Figure 10).
            if member > 0 && rng.gen_bool(0.06) {
                profile.retype = true;
            }
            // ...and some are order-shuffled clones: identical opcode
            // histograms (fingerprint distance ~0 for HyFM) with degraded
            // sequence alignment — the other half of the Figure 5 trap.
            if member > 0 && rng.gen_bool(0.18) {
                profile.shuffle = true;
            }
            let linkage = if rng.gen_bool(spec.external_fraction) {
                Linkage::External
            } else {
                Linkage::Internal
            };
            let name = format!("f{family_idx}_{member}");
            let member_seed = struct_seed ^ (member as u64 + 1).wrapping_mul(0xA24B_AED4);
            let f = generate_function(
                &mut m.types,
                &externals,
                &name,
                &shape,
                struct_seed,
                member_seed,
                &profile,
                linkage,
            );
            generated.push(m.add_function(f));
            produced += 1;
            if produced >= spec.functions {
                break;
            }
        }
        family_idx += 1;
    }

    build_driver(&mut m, &generated, spec.seed);
    m
}

pub(crate) fn sample_size(rng: &mut SmallRng, mean: usize) -> usize {
    // Skewed distribution: many small functions, a long tail of large ones.
    let base = rng.gen_range(mean / 2..=mean + mean / 2);
    if rng.gen_bool(0.08) {
        base * 3
    } else {
        base
    }
}

/// Adds `@__driver(i64) -> i64`: calls a deterministic sample of generated
/// functions, sinks their results, and returns a folded value. Gives the
/// interpreter-based experiments a single entry point.
fn build_driver(m: &mut Module, generated: &[f3m_ir::ids::FuncId], seed: u64) {
    let i64t = m.types.int(64);
    let f64t = m.types.f64();
    let ptr = m.types.ptr();
    let void = m.types.void();
    let sink64 = m.lookup_function("ext_sink_i64").expect("externals declared");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1E5_C0DE);
    let sample: Vec<f3m_ir::ids::FuncId> = if generated.len() <= 24 {
        generated.to_vec()
    } else {
        (0..24).map(|_| generated[rng.gen_range(0..generated.len())]).collect()
    };

    // Collect signatures first to avoid borrow conflicts.
    let sigs: Vec<(f3m_ir::ids::FuncId, Vec<f3m_ir::types::TypeId>, f3m_ir::types::TypeId)> =
        sample
            .iter()
            .map(|&id| {
                let f = m.function(id);
                (id, f.params.clone(), f.ret_ty)
            })
            .collect();

    let mut d = Function::new("__driver", vec![i64t], i64t);
    {
        let mut b = FunctionBuilder::new(&mut m.types, &mut d);
        let entry = b.create_block("entry");
        b.position_at_end(entry);
        let x = b.func().arg(0);
        let mut acc = x;
        for (k, (callee, params, ret_ty)) in sigs.iter().enumerate() {
            // Derive per-call arguments from the accumulator.
            let salt = b.const_int(i64t, k as i64 + 1);
            let seed64 = b.binary(Opcode::Xor, acc, salt);
            let args: Vec<_> = params
                .iter()
                .map(|&p| {
                    if p == i64t {
                        seed64
                    } else if p == f64t {
                        b.cast(Opcode::SIToFP, seed64, f64t)
                    } else if b.types().int_bits(p).is_some() {
                        b.cast(Opcode::Trunc, seed64, p)
                    } else {
                        b.func_mut().undef(p)
                    }
                })
                .collect();
            let cref = b.func_mut().func_ref(*callee, ptr);
            let r = b.call(cref, &args, *ret_ty);
            if let Some(r) = r {
                // Fold the result into the accumulator.
                let widened = if *ret_ty == i64t {
                    r
                } else if *ret_ty == f64t {
                    b.cast(Opcode::FPToSI, r, i64t)
                } else if b.types().int_bits(*ret_ty).is_some() {
                    b.cast(Opcode::SExt, r, i64t)
                } else {
                    b.const_int(i64t, 0)
                };
                acc = b.binary(Opcode::Add, acc, widened);
            }
        }
        let sref = b.func_mut().func_ref(sink64, ptr);
        b.call(sref, &[acc], void);
        b.ret(Some(acc));
    }
    m.add_function(d);
}

/// Convenience: the instruction shape of an entire suite, for Table I
/// style reporting.
#[derive(Clone, Debug)]
pub struct WorkloadSummary {
    /// Workload name.
    pub name: &'static str,
    /// Function definitions generated.
    pub functions: usize,
    /// Total linked instructions.
    pub instructions: usize,
    /// Estimated text size in bytes.
    pub size_bytes: u64,
}

/// Builds a module and summarizes it (used by the `table1` bench binary).
pub fn summarize(spec: &WorkloadSpec) -> (Module, WorkloadSummary) {
    let m = build_module(spec);
    let summary = WorkloadSummary {
        name: spec.name,
        functions: m.defined_functions().len(),
        instructions: m.total_insts(),
        size_bytes: f3m_ir::size::module_size(&m),
    };
    (m, summary)
}


#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::verify::verify_module;
    use f3m_interp::{Interpreter, Limits, Val};

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny",
            functions: 40,
            mean_insts: 24,
            family_fraction: 0.7,
            mean_family_size: 4,
            external_fraction: 0.2,
            seed: 7,
            class: SizeClass::Small,
        }
    }

    #[test]
    fn built_modules_verify() {
        let m = build_module(&tiny_spec());
        verify_module(&m).unwrap();
        assert!(m.defined_functions().len() >= 40, "driver included");
    }

    #[test]
    fn module_is_deterministic() {
        let a = f3m_ir::printer::print_module(&build_module(&tiny_spec()));
        let b = f3m_ir::printer::print_module(&build_module(&tiny_spec()));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = tiny_spec();
        s2.seed = 8;
        let a = f3m_ir::printer::print_module(&build_module(&tiny_spec()));
        let b = f3m_ir::printer::print_module(&build_module(&s2));
        assert_ne!(a, b);
    }

    #[test]
    fn driver_runs_to_completion() {
        let m = build_module(&tiny_spec());
        let mut i = Interpreter::with_limits(
            &m,
            Limits { fuel: 10_000_000, memory: 1 << 22, max_depth: 128 },
        );
        let out = i.call_by_name("__driver", &[Val::Int(42)]).unwrap();
        assert!(out.steps > 100, "driver exercised generated code: {}", out.steps);
        // Deterministic.
        let mut i2 = Interpreter::with_limits(
            &m,
            Limits { fuel: 10_000_000, memory: 1 << 22, max_depth: 128 },
        );
        let out2 = i2.call_by_name("__driver", &[Val::Int(42)]).unwrap();
        assert_eq!(out.ret, out2.ret);
        assert_eq!(out.checksum, out2.checksum);
    }

    #[test]
    fn scaled_specs_shrink() {
        let s = table1()[0].scaled(0.25);
        assert_eq!(s.functions, 10);
        let floor = table1()[0].scaled(0.0);
        assert_eq!(floor.functions, 8, "scale floor");
    }

    #[test]
    fn table1_covers_all_size_classes() {
        let t = table1();
        assert!(t.iter().any(|s| s.class == SizeClass::Small));
        assert!(t.iter().any(|s| s.class == SizeClass::Medium));
        assert!(t.iter().any(|s| s.class == SizeClass::Large));
        assert_eq!(t.last().unwrap().name, "chrome-scale");
        assert_eq!(t.last().unwrap().functions, 120_000);
    }

    #[test]
    fn summaries_report_counts() {
        let (_, s) = summarize(&tiny_spec());
        assert_eq!(s.name, "tiny");
        assert!(s.instructions > 40 * 10);
        assert!(s.size_bytes > 0);
    }
}
