//! # f3m-workloads — synthetic benchmark-suite generator
//!
//! Stands in for the paper's Table I evaluation corpus (SPEC CPU2006/2017,
//! the Linux kernel and Chromium, none of which are available to this
//! reproduction). Modules are generated deterministically from seeds, with
//! *function families* — clones drifted by controlled mutation — providing
//! the cross-function redundancy that function merging exploits.
//!
//! See [`gen`] for the two-stream (structure vs mutation) generation
//! scheme and [`suite`] for the Table I specifications, including the
//! scaled `linux-scale` (45k functions) and `chrome-scale` (120k)
//! workloads.

pub mod gen;
pub mod stream;
pub mod suite;

pub use gen::{declare_externals, generate_function, MutationProfile, ShapeParams};
pub use stream::{chrome_full, EncodedFunction, FunctionStream};
pub use suite::{build_module, mini_suite, summarize, table1, SizeClass, WorkloadSpec};
