//! `incremental_recompute`: the economics of the revision-stamped
//! corpus. Ingests a multi-module corpus, then measures the latency
//! cliff the memo layer buys:
//!
//! - **cold query** — first `query_module` sweep over every module,
//!   populating the memoized ranks (every ranking is a miss),
//! - **warm query** — the same sweep again, answered from memo,
//! - **update** — one `update_function` body edit,
//! - **post-update query** — the sweep after the edit, which must
//!   recompute only the changed function plus its band-collision
//!   neighborhood (asserted via the corpus counters, not just timed).
//!
//! Results go to `results/BENCH_incremental.json`; `--smoke` shrinks
//! the corpus for CI, `--full` grows it to paper scale.

use std::time::Instant;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_ir::module::Module;

fn workload(name: &str, seed: u64, functions: usize) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = functions;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

/// Two merge-eligible, signature-identical members of one generated
/// family — update fodder whose swap keeps the module verifying.
fn swap_pair(m: &Module) -> (String, String) {
    let eligible: Vec<String> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .map(|f| m.function(f).name.clone())
        .collect();
    let sig = |name: &str| {
        let f = m.function(m.lookup_function(name).unwrap());
        (f.params.clone(), f.ret_ty)
    };
    for a in &eligible {
        if let Some((fam, "0")) = a.rsplit_once('_') {
            let b = format!("{fam}_1");
            if eligible.contains(&b) && sig(a) == sig(&b) {
                return (a.clone(), b);
            }
        }
    }
    panic!("workload has no swappable family pair");
}

/// IR text of `m` with `dst`'s body replaced by `src`'s.
fn body_swap_patch(m: &Module, dst: &str, src: &str) -> String {
    let mut patched = m.clone();
    let d = patched.lookup_function(dst).unwrap();
    let s = patched.lookup_function(src).unwrap();
    patched.rename_function(d, format!("{dst}__old"));
    patched.rename_function(s, dst.to_string());
    f3m_ir::printer::print_module(&patched)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    let (modules, functions_per_module) = if smoke {
        (4, 200)
    } else if full {
        (24, 5000)
    } else {
        (12, 1000)
    };

    let corpus = Corpus::new(CorpusConfig { jobs: 2, ..CorpusConfig::default() });
    let mods: Vec<Module> = (0..modules)
        .map(|i| workload(&format!("m{i}"), 100 + i as u64, functions_per_module))
        .collect();
    let t0 = Instant::now();
    let mut functions = 0u64;
    for m in mods {
        functions += corpus.ingest(m).expect("ingest").functions as u64;
    }
    let ingest_ns = t0.elapsed().as_nanos();

    let sweep = |k: usize| {
        for i in 0..modules {
            corpus.query_module(&format!("m{i}"), k).expect("query");
        }
    };

    let t0 = Instant::now();
    sweep(5);
    let cold_query_ns = t0.elapsed().as_nanos();
    let cold = corpus.stats();
    assert_eq!(cold.memo_hits, 0, "cold sweep must not hit the memo");

    let t0 = Instant::now();
    sweep(5);
    let warm_query_ns = t0.elapsed().as_nanos();
    let warm = corpus.stats();
    assert_eq!(warm.memo_misses, cold.memo_misses, "warm sweep must not recompute");
    assert_eq!(warm.memo_hits, cold.memo_misses, "warm sweep must be all hits");

    // One function edit: swap m0's first family pair bodies.
    let m0 = f3m_ir::parser::parse_module(&corpus.module_source("m0").unwrap()).unwrap();
    let (dst, src) = swap_pair(&m0);
    let t0 = Instant::now();
    let up = corpus.update_function("m0", &dst, Some(&body_swap_patch(&m0, &dst, &src)))
        .expect("update");
    let update_ns = t0.elapsed().as_nanos();
    assert!(up.changed, "the body swap must register as a change");

    let t0 = Instant::now();
    sweep(5);
    let post_update_query_ns = t0.elapsed().as_nanos();
    let post = corpus.stats();

    // O(changed), by counter: the post-update sweep recomputed exactly
    // the invalidated neighborhood (changed function + band collisions),
    // a small fraction of the corpus — everything else stayed memoized.
    // (`funcs_invalidated` in stats is cumulative and includes ingest-
    // time neighborhood dirtying; the update summary carries the delta.)
    let recomputed = post.memo_misses - warm.memo_misses;
    let invalidated = up.funcs_invalidated;
    assert_eq!(
        recomputed, invalidated,
        "post-update sweep must recompute the dirty set, nothing else"
    );
    assert!(invalidated >= 1, "the updated function itself is always dirty");
    assert!(
        invalidated < functions / 2,
        "neighborhood invalidation must stay O(changed): {invalidated} of {functions}"
    );
    let memo_hit_rate = post.memo_hits as f64 / (post.memo_hits + post.memo_misses) as f64;
    assert!(memo_hit_rate > 0.0, "the memo layer never paid off");

    println!(
        "incremental_recompute/functions={functions} cold {:>9.2} ms  warm {:>9.2} ms  \
         update {:>7.2} ms  post-update {:>9.2} ms  dirty {invalidated}/{functions}",
        cold_query_ns as f64 / 1e6,
        warm_query_ns as f64 / 1e6,
        update_ns as f64 / 1e6,
        post_update_query_ns as f64 / 1e6,
    );

    let json = format!(
        "{{\"smoke\":{smoke},\"functions\":{functions},\"modules\":{modules},\
         \"ingest_ns\":{ingest_ns},\"cold_query_ns\":{cold_query_ns},\
         \"warm_query_ns\":{warm_query_ns},\"update_ns\":{update_ns},\
         \"post_update_query_ns\":{post_update_query_ns},\
         \"memo_hits\":{},\"memo_misses\":{},\"funcs_invalidated\":{},\
         \"memo_hit_rate\":{memo_hit_rate:.6}}}",
        post.memo_hits, post.memo_misses, post.funcs_invalidated,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_incremental.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_incremental.json");
    println!("incremental_recompute: wrote {}", out_path.display());
}
